"""Circuit elements and their MNA stamps.

Each element knows how to stamp itself into the conductance matrix G,
the reactance matrix C (so the system reads ``G x + C dx/dt = b(t)``)
and the source vector.  Inductors, voltage sources and controlled
voltage sources carry an extra branch-current unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import CircuitError


@dataclass
class Element:
    """Base class: a named element between two nodes."""

    name: str
    node1: str
    node2: str

    #: True when the element adds a branch-current unknown to the MNA system.
    has_branch = False

    def __post_init__(self) -> None:
        if not self.name:
            raise CircuitError("element name must be non-empty")
        if self.node1 == self.node2:
            raise CircuitError(f"element {self.name!r} connects a node to itself")


@dataclass
class Resistor(Element):
    """A linear resistor [ohm]."""

    resistance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0.0:
            raise CircuitError(f"resistor {self.name!r} must be positive")

    def stamp(self, stamps: "Stamps") -> None:
        g = 1.0 / self.resistance
        stamps.add_conductance(self.node1, self.node2, g)


@dataclass
class Capacitor(Element):
    """A linear capacitor [F] with optional initial voltage."""

    capacitance: float = 1e-15
    initial_voltage: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0.0:
            raise CircuitError(f"capacitor {self.name!r} must be positive")

    def stamp(self, stamps: "Stamps") -> None:
        stamps.add_capacitance(self.node1, self.node2, self.capacitance)


@dataclass
class Inductor(Element):
    """A linear inductor [H]; couples to others via mutual terms."""

    inductance: float = 1e-12
    initial_current: float = 0.0

    has_branch = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inductance <= 0.0:
            raise CircuitError(f"inductor {self.name!r} must be positive")

    def stamp(self, stamps: "Stamps") -> None:
        k = stamps.branch_index(self.name)
        stamps.add_branch_voltage(k, self.node1, self.node2)
        stamps.add_branch_reactance(k, k, -self.inductance)


@dataclass
class MutualInductance:
    """Mutual coupling M [H] between two named inductors.

    Use :meth:`from_coupling` for the SPICE ``K`` coefficient form
    ``M = k sqrt(L1 L2)``.
    """

    name: str
    inductor1: str
    inductor2: str
    mutual: float

    def __post_init__(self) -> None:
        if self.inductor1 == self.inductor2:
            raise CircuitError(f"mutual {self.name!r} couples an inductor to itself")

    @classmethod
    def from_coupling(
        cls, name: str, l1: Inductor, l2: Inductor, k: float
    ) -> "MutualInductance":
        """Build from a coupling coefficient ``|k| < 1``."""
        if not (-1.0 < k < 1.0):
            raise CircuitError(f"coupling {name!r}: |k| must be < 1, got {k}")
        mutual = k * float(np.sqrt(l1.inductance * l2.inductance))
        return cls(name=name, inductor1=l1.name, inductor2=l2.name, mutual=mutual)

    def stamp(self, stamps: "Stamps") -> None:
        k1 = stamps.branch_index(self.inductor1)
        k2 = stamps.branch_index(self.inductor2)
        stamps.add_branch_reactance(k1, k2, -self.mutual)
        stamps.add_branch_reactance(k2, k1, -self.mutual)


@dataclass
class VoltageSource(Element):
    """An independent voltage source with a time-domain waveform.

    *ac_magnitude* sets the phasor amplitude used by AC analysis.
    """

    waveform: Callable[[float], float] = field(default=lambda t: 0.0)
    ac_magnitude: float = 0.0

    has_branch = True

    def stamp(self, stamps: "Stamps") -> None:
        k = stamps.branch_index(self.name)
        stamps.add_branch_voltage(k, self.node1, self.node2)
        stamps.set_branch_source(k, self.waveform, self.ac_magnitude)


@dataclass
class CurrentSource(Element):
    """An independent current source flowing node1 -> node2."""

    waveform: Callable[[float], float] = field(default=lambda t: 0.0)
    ac_magnitude: float = 0.0

    def stamp(self, stamps: "Stamps") -> None:
        stamps.add_node_source(
            self.node1, self.node2, self.waveform, self.ac_magnitude
        )


@dataclass
class VCVS(Element):
    """Voltage-controlled voltage source: V(n1,n2) = gain * V(c1,c2)."""

    control1: str = "0"
    control2: str = "0"
    gain: float = 1.0

    has_branch = True

    def stamp(self, stamps: "Stamps") -> None:
        k = stamps.branch_index(self.name)
        stamps.add_branch_voltage(k, self.node1, self.node2)
        stamps.add_branch_control(k, self.control1, self.control2, -self.gain)


class Stamps:
    """Mutable MNA matrices an element stamps itself into.

    The unknown vector is ``x = [node voltages (ground excluded);
    branch currents]`` and the system reads ``G x + C dx/dt = b(t)``.

    Entries accumulate as COO triplets so a chip-scale netlist never
    materializes an ``size x size`` array just to be stamped: the sparse
    solver backend reads :meth:`g_csc` / :meth:`c_csc` directly, while
    the dense analyses keep reading :attr:`g_matrix` / :attr:`c_matrix`,
    which are built lazily (and cached) from the same triplets.  The
    dense build accumulates duplicates in stamping order via
    ``np.add.at``, so it is bit-identical to the historical
    stamp-into-``np.zeros`` behaviour.
    """

    def __init__(self, node_index, branch_names):
        self._node_index = node_index  # name -> matrix row (ground -> -1)
        self._branch_index = {name: i for i, name in enumerate(branch_names)}
        n = len([i for i in node_index.values() if i >= 0])
        m = len(branch_names)
        self.size = n + m
        self.num_nodes = n
        # COO triplets (duplicates allowed; summed on materialization).
        self._g_rows: list = []
        self._g_cols: list = []
        self._g_vals: list = []
        self._c_rows: list = []
        self._c_cols: list = []
        self._c_vals: list = []
        self._g_dense = None
        self._c_dense = None
        self._nnz = None
        # b(t) is assembled from static entries plus per-source callables.
        self._sources = []  # (row, sign, waveform, ac_magnitude)

    def branch_index(self, name: str) -> int:
        try:
            return self._branch_index[name]
        except KeyError:
            raise CircuitError(f"unknown branch element {name!r}") from None

    def _row(self, node: str) -> int:
        return self._node_index[node]

    def _add_g(self, row: int, col: int, value: float) -> None:
        self._g_rows.append(row)
        self._g_cols.append(col)
        self._g_vals.append(value)
        self._g_dense = None
        self._nnz = None

    def _add_c(self, row: int, col: int, value: float) -> None:
        self._c_rows.append(row)
        self._c_cols.append(col)
        self._c_vals.append(value)
        self._c_dense = None
        self._nnz = None

    def add_conductance(self, node1: str, node2: str, g: float) -> None:
        """Stamp a conductance between two nodes into G."""
        i, j = self._row(node1), self._row(node2)
        if i >= 0:
            self._add_g(i, i, g)
        if j >= 0:
            self._add_g(j, j, g)
        if i >= 0 and j >= 0:
            self._add_g(i, j, -g)
            self._add_g(j, i, -g)

    def add_capacitance(self, node1: str, node2: str, c: float) -> None:
        """Stamp a capacitance between two nodes into C."""
        i, j = self._row(node1), self._row(node2)
        if i >= 0:
            self._add_c(i, i, c)
        if j >= 0:
            self._add_c(j, j, c)
        if i >= 0 and j >= 0:
            self._add_c(i, j, -c)
            self._add_c(j, i, -c)

    def add_branch_voltage(self, branch: int, node1: str, node2: str) -> None:
        """Couple branch current into KCL and node voltages into the branch row."""
        row = self.num_nodes + branch
        i, j = self._row(node1), self._row(node2)
        if i >= 0:
            self._add_g(i, row, 1.0)   # current leaves node1
            self._add_g(row, i, 1.0)   # +V(node1) in branch equation
        if j >= 0:
            self._add_g(j, row, -1.0)
            self._add_g(row, j, -1.0)

    def add_branch_reactance(self, branch1: int, branch2: int, value: float) -> None:
        """Stamp -L or -M into the branch block of C."""
        self._add_c(self.num_nodes + branch1, self.num_nodes + branch2, value)

    def add_branch_control(
        self, branch: int, control1: str, control2: str, gain: float
    ) -> None:
        """Add controlled-voltage terms to a branch equation."""
        row = self.num_nodes + branch
        i, j = self._row(control1), self._row(control2)
        if i >= 0:
            self._add_g(row, i, gain)
        if j >= 0:
            self._add_g(row, j, -gain)

    # ------------------------------------------------------------------
    # matrix materialization
    # ------------------------------------------------------------------
    def _dense(self, rows, cols, vals) -> np.ndarray:
        matrix = np.zeros((self.size, self.size))
        if rows:
            # np.add.at applies the additions unbuffered, in triplet
            # order -- the same float-accumulation sequence as stamping
            # straight into the array, hence bit-identical results.
            np.add.at(
                matrix,
                (np.asarray(rows, dtype=np.intp),
                 np.asarray(cols, dtype=np.intp)),
                np.asarray(vals, dtype=float),
            )
        return matrix

    def _csc(self, rows, cols, vals):
        from scipy import sparse

        return sparse.coo_matrix(
            (np.asarray(vals, dtype=float),
             (np.asarray(rows, dtype=np.intp),
              np.asarray(cols, dtype=np.intp))),
            shape=(self.size, self.size),
        ).tocsc()

    @property
    def g_matrix(self) -> np.ndarray:
        """Dense conductance matrix G (built lazily, cached)."""
        if self._g_dense is None:
            self._g_dense = self._dense(
                self._g_rows, self._g_cols, self._g_vals
            )
        return self._g_dense

    @property
    def c_matrix(self) -> np.ndarray:
        """Dense reactance matrix C (built lazily, cached)."""
        if self._c_dense is None:
            self._c_dense = self._dense(
                self._c_rows, self._c_cols, self._c_vals
            )
        return self._c_dense

    def g_csc(self):
        """Sparse CSC conductance matrix (duplicate triplets summed)."""
        return self._csc(self._g_rows, self._g_cols, self._g_vals)

    def c_csc(self):
        """Sparse CSC reactance matrix (duplicate triplets summed)."""
        return self._csc(self._c_rows, self._c_cols, self._c_vals)

    @property
    def nnz(self) -> int:
        """Structural non-zeros of the combined G/C sparsity pattern."""
        if self._nnz is None:
            pattern = set(zip(self._g_rows, self._g_cols))
            pattern.update(zip(self._c_rows, self._c_cols))
            self._nnz = len(pattern)
        return self._nnz

    @property
    def triplets(self) -> int:
        """Raw accumulated COO triplet count (before duplicate merge)."""
        return len(self._g_rows) + len(self._c_rows)

    def set_branch_source(self, branch: int, waveform, ac_magnitude: float) -> None:
        """Register a branch-row source (voltage source value)."""
        self._sources.append((self.num_nodes + branch, 1.0, waveform, ac_magnitude))

    def add_node_source(
        self, node1: str, node2: str, waveform, ac_magnitude: float
    ) -> None:
        """Register a nodal current injection (current source)."""
        i, j = self._row(node1), self._row(node2)
        if i >= 0:
            self._sources.append((i, -1.0, waveform, ac_magnitude))
        if j >= 0:
            self._sources.append((j, 1.0, waveform, ac_magnitude))

    def source_vector(self, t: float) -> np.ndarray:
        """Evaluate b(t)."""
        b = np.zeros(self.size)
        for row, sign, waveform, _ in self._sources:
            b[row] += sign * waveform(t)
        return b

    def ac_source_vector(self) -> np.ndarray:
        """Phasor source vector for AC analysis."""
        b = np.zeros(self.size, dtype=complex)
        for row, sign, _, ac_magnitude in self._sources:
            b[row] += sign * ac_magnitude
        return b
