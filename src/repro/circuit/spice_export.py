"""Export a :class:`~repro.circuit.netlist.Circuit` as a SPICE deck.

The paper's deliverable is an RLC netlist formulated for SPICE; this
module writes exactly that, so extracted clocktrees can be re-simulated
in ngspice/HSPICE for cross-validation.  Sources map to their SPICE
forms (DC / PULSE / PWL / SIN), mutual inductances to K cards with the
coupling coefficient recomputed from M.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.circuit.elements import (
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.sources import DCSource, PulseSource, PWLSource, SineSource
from repro.errors import CircuitError

#: SPICE type-letter per element class.
_TYPE_LETTERS = {
    Resistor: "R",
    Capacitor: "C",
    Inductor: "L",
    VoltageSource: "V",
    CurrentSource: "I",
    VCVS: "E",
}


def _spice_name(element, letter: str) -> str:
    """A deck-legal element name starting with the right type letter."""
    name = element.name.replace(" ", "_")
    if name and name[0].upper() == letter:
        return name
    return f"{letter}{name}"


def _format_value(value: float) -> str:
    """Plain scientific notation: unambiguous across SPICE dialects."""
    return f"{value:.6e}"


def _source_spec(waveform) -> str:
    """SPICE source specification for a waveform callable."""
    if isinstance(waveform, DCSource):
        return f"DC {_format_value(waveform.value)}"
    if isinstance(waveform, PulseSource):
        period = waveform.period if waveform.period > 0.0 else 1.0
        fields = (waveform.v1, waveform.v2, waveform.delay, waveform.rise,
                  waveform.fall, waveform.width, period)
        return "PULSE(" + " ".join(_format_value(v) for v in fields) + ")"
    if isinstance(waveform, PWLSource):
        pairs = []
        for t, v in zip(waveform.times, waveform.values):
            pairs.append(_format_value(float(t)))
            pairs.append(_format_value(float(v)))
        return "PWL(" + " ".join(pairs) + ")"
    if isinstance(waveform, SineSource):
        fields = (waveform.offset, waveform.amplitude, waveform.frequency,
                  waveform.delay)
        return "SIN(" + " ".join(_format_value(v) for v in fields) + ")"
    # generic callable: sample it as a PWL over a default window
    raise CircuitError(
        f"cannot express source {waveform!r} in SPICE; use DC/PULSE/PWL/SIN"
    )


def _element_card(circuit: Circuit, element) -> str:
    if isinstance(element, Resistor):
        return (f"{_spice_name(element, 'R')} {element.node1} {element.node2} "
                f"{_format_value(element.resistance)}")
    if isinstance(element, Capacitor):
        card = (f"{_spice_name(element, 'C')} {element.node1} {element.node2} "
                f"{_format_value(element.capacitance)}")
        if element.initial_voltage:
            card += f" IC={_format_value(element.initial_voltage)}"
        return card
    if isinstance(element, Inductor):
        card = (f"{_spice_name(element, 'L')} {element.node1} {element.node2} "
                f"{_format_value(element.inductance)}")
        if element.initial_current:
            card += f" IC={_format_value(element.initial_current)}"
        return card
    if isinstance(element, VoltageSource):
        return (f"{_spice_name(element, 'V')} {element.node1} {element.node2} "
                f"{_source_spec(element.waveform)}")
    if isinstance(element, CurrentSource):
        return (f"{_spice_name(element, 'I')} {element.node1} {element.node2} "
                f"{_source_spec(element.waveform)}")
    if isinstance(element, VCVS):
        return (f"{_spice_name(element, 'E')} {element.node1} {element.node2} "
                f"{element.control1} {element.control2} "
                f"{_format_value(element.gain)}")
    raise CircuitError(f"unsupported element type {type(element).__name__}")


def _mutual_card(circuit: Circuit, mutual: MutualInductance) -> str:
    l1 = circuit.element(mutual.inductor1)
    l2 = circuit.element(mutual.inductor2)
    k = mutual.mutual / float(np.sqrt(l1.inductance * l2.inductance))
    name = mutual.name if mutual.name.upper().startswith("K") else f"K{mutual.name}"
    ind1 = _spice_name(l1, "L")
    ind2 = _spice_name(l2, "L")
    return f"{name} {ind1} {ind2} {_format_value(k)}"


def to_spice(
    circuit: Circuit,
    title: Optional[str] = None,
    analyses: Iterable[str] = (),
    probes: Iterable[str] = (),
) -> str:
    """Render a circuit as a SPICE deck string.

    Parameters
    ----------
    analyses:
        Control cards without the leading dot, e.g. ``("tran 1p 2n",)``.
    probes:
        Node names to save, emitted as a ``.print tran`` card.
    """
    if not circuit.elements:
        raise CircuitError("cannot export an empty circuit")
    lines: List[str] = [f"* {title or circuit.title or 'repro netlist'}"]
    for element in circuit.elements:
        lines.append(_element_card(circuit, element))
    for mutual in circuit.mutuals:
        lines.append(_mutual_card(circuit, mutual))
    for analysis in analyses:
        lines.append(f".{analysis.lstrip('.')}")
    probes = list(probes)
    if probes:
        lines.append(".print tran " + " ".join(f"v({node})" for node in probes))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_spice(
    circuit: Circuit,
    path: Union[str, Path],
    title: Optional[str] = None,
    analyses: Iterable[str] = (),
    probes: Iterable[str] = (),
) -> Path:
    """Write a SPICE deck to *path* and return it."""
    path = Path(path)
    path.write_text(to_spice(circuit, title=title, analyses=analyses,
                             probes=probes))
    return path
