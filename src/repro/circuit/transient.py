"""Transient analysis with trapezoidal or backward-Euler integration.

The MNA system ``G x + C x' = b(t)`` is integrated on a fixed step:

* trapezoidal (default, SPICE's workhorse -- second order, A-stable,
  preserves the ringing the paper's RLC netlists exhibit), or
* backward Euler (first order, adds numerical damping; useful to confirm
  a suspected numerical oscillation is physical).

The step matrix is factorized once and reused for every step.

Observability (PR 5): every run executes under a ``circuit.transient``
span (matrix size, step count, factorization time) and -- unless
``diagnostics=False`` -- attaches a
:class:`~repro.circuit.diagnostics.TransientDiagnostics` to the result:
step-doubling LTE estimate, energy-balance residual, dt adequacy vs the
significant frequency, and start-up provenance.  When ``t_stop / dt``
is not an integer the step is *snapped* (``dt = t_stop / ceil(...)``)
with a warning and a ``circuit_dt_snapped`` counter tick so the time
grid is guaranteed to land exactly on ``t_stop``.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.circuit.backend import (
    factorize,
    gmin_loaded,
    resolve_method,
    system_matrices,
    validate_solver,
)
from repro.circuit.diagnostics import (
    LTE_SUBSAMPLE_PROBES,
    LTE_SUBSAMPLE_SIZE,
    TransientDiagnostics,
    dt_adequacy,
    energy_balance,
    estimate_local_truncation_error,
)
from repro.circuit.netlist import AssembledCircuit, Circuit
from repro.circuit.waveform import Waveform
from repro.errors import CircuitError, SolverError
from repro.telemetry.registry import (
    DC_START_FALLBACK,
    FACTOR_SECONDS,
    LTE_SUBSAMPLED,
    SINGULAR_SYSTEM,
    TRANSIENT_DT_SNAPPED,
    TRANSIENT_STEPS,
    get_registry,
)
from repro.telemetry.spans import span

#: Relative tolerance under which ``t_stop / dt`` counts as an integer
#: (floating-point noise, not a mis-sized grid).
_STEP_SNAP_RTOL = 1e-9


@dataclass
class TransientResult:
    """Node voltages and branch currents over time."""

    time: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]
    #: Per-run self-diagnosis (None when ``diagnostics=False``).
    diagnostics: Optional[TransientDiagnostics] = None

    def voltage(self, node: str) -> Waveform:
        """Voltage waveform at *node*."""
        try:
            return Waveform(self.time, self.node_voltages[node])
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def current(self, element: str) -> Waveform:
        """Current waveform through a branch element."""
        try:
            return Waveform(self.time, self.branch_currents[element])
        except KeyError:
            raise CircuitError(f"element {element!r} has no branch current") from None


def _snap_steps(t_stop: float, dt: float) -> Tuple[int, float, bool]:
    """Step count and effective dt whose grid ends exactly on t_stop."""
    exact = t_stop / dt
    rounded = round(exact)
    if rounded >= 1 and abs(exact - rounded) <= _STEP_SNAP_RTOL * rounded:
        return int(rounded), t_stop / rounded, False
    n_steps = int(np.ceil(exact))
    snapped = t_stop / n_steps
    get_registry().inc(TRANSIENT_DT_SNAPPED)
    warnings.warn(
        f"t_stop/dt is not an integer; dt snapped {dt:.6e} -> "
        f"{snapped:.6e} s ({n_steps} steps) so time[-1] == t_stop",
        stacklevel=3,
    )
    return n_steps, snapped, True


def transient_analysis(
    circuit: Union[Circuit, AssembledCircuit],
    t_stop: float,
    dt: float,
    method: str = "trapezoidal",
    initial: str = "dc",
    diagnostics: bool = True,
    lte_probes: int = 16,
    solver: str = "auto",
) -> TransientResult:
    """Integrate the circuit from 0 to *t_stop* with fixed step *dt*.

    Parameters
    ----------
    method:
        ``"trapezoidal"`` or ``"backward_euler"``.
    initial:
        ``"dc"`` starts from the operating point with sources at t = 0
        (the usual SPICE behaviour); ``"zero"`` starts from explicit
        initial conditions (or all-zero state).
    diagnostics:
        Attach a :class:`TransientDiagnostics` (LTE estimate, energy
        residual, dt adequacy) to the result.  Costs one extra
        half-step factorization plus ``2 * lte_probes`` solves and a
        vectorized energy pass; disable for tight inner loops.  At
        chip scale (``size > LTE_SUBSAMPLE_SIZE``) the probe count is
        capped at :data:`LTE_SUBSAMPLE_PROBES`.
    lte_probes:
        Steps probed by the step-doubling LTE estimate.
    solver:
        Factorization backend: ``"auto"`` (default; dense for small
        systems, sparse at chip scale), ``"dense"`` or ``"sparse"``.
    """
    if t_stop <= 0.0 or dt <= 0.0:
        raise CircuitError("t_stop and dt must be positive")
    if dt >= t_stop:
        raise CircuitError("dt must be smaller than t_stop")
    if method not in ("trapezoidal", "backward_euler"):
        raise CircuitError(f"unknown method {method!r}")
    if initial not in ("dc", "zero"):
        raise CircuitError(f"unknown initial condition mode {initial!r}")
    validate_solver(solver)

    assembled = circuit.assemble() if isinstance(circuit, Circuit) else circuit
    backend = resolve_method(
        assembled.size, nnz=assembled.stamps.nnz, solver=solver
    )
    g, c = system_matrices(assembled.stamps, backend)
    registry = get_registry()

    requested_dt = dt
    n_steps, dt, dt_snapped = _snap_steps(t_stop, dt)
    # linspace pins the final sample to t_stop exactly (arange drifts).
    time = np.linspace(0.0, t_stop, n_steps + 1)

    with span(
        "circuit.transient",
        size=assembled.size,
        steps=n_steps,
        dt=dt,
        method=method,
        solver=backend,
    ) as sp:
        registry.inc(TRANSIENT_STEPS, n_steps)
        x = np.empty((n_steps + 1, assembled.size))
        dc_fallback = False
        if initial == "dc":
            x[0], dc_fallback = _dc_start(assembled, backend)
        else:
            x[0] = assembled.initial_state()

        if method == "trapezoidal":
            lhs = 2.0 * c / dt + g
            rhs_matrix = 2.0 * c / dt - g
        else:
            lhs = c / dt + g
            rhs_matrix = c / dt
        if backend == "sparse":
            # CSR mat-vec is the per-step hot operation.
            rhs_matrix = rhs_matrix.tocsr()

        t0 = _time.perf_counter()
        try:
            lu = factorize(lhs)
        except SolverError as exc:
            registry.inc(SINGULAR_SYSTEM)
            raise SolverError(f"singular transient step matrix: {exc}") from exc
        factor_seconds = _time.perf_counter() - t0
        registry.observe(FACTOR_SECONDS, factor_seconds)
        if sp is not None:
            sp.tags["factor_seconds"] = factor_seconds

        b_prev = assembled.stamps.source_vector(0.0)
        for k in range(n_steps):
            t_next = time[k + 1]
            b_next = assembled.stamps.source_vector(t_next)
            if method == "trapezoidal":
                rhs = rhs_matrix @ x[k] + b_prev + b_next
            else:
                rhs = rhs_matrix @ x[k] + b_next
            x[k + 1] = lu.solve(rhs)
            b_prev = b_next

        node_voltages = {"0": np.zeros(n_steps + 1)}
        for node, idx in assembled.node_index.items():
            if idx >= 0:
                node_voltages[node] = x[:, idx]
        branch_currents = {
            name: x[:, assembled.num_nodes + i]
            for i, name in enumerate(assembled.branch_names)
        }

        diag: Optional[TransientDiagnostics] = None
        if diagnostics:
            effective_probes = lte_probes
            if (
                assembled.size > LTE_SUBSAMPLE_SIZE
                and lte_probes > LTE_SUBSAMPLE_PROBES
            ):
                effective_probes = LTE_SUBSAMPLE_PROBES
                registry.inc(LTE_SUBSAMPLED)
            with span("circuit.diagnostics", probes=effective_probes):
                diag = _run_diagnostics(
                    assembled, x, time, dt, requested_dt, dt_snapped,
                    method, factor_seconds, dc_fallback, effective_probes,
                    backend,
                )

    return TransientResult(
        time=time,
        node_voltages=node_voltages,
        branch_currents=branch_currents,
        diagnostics=diag,
    )


def _run_diagnostics(
    assembled: AssembledCircuit,
    x: np.ndarray,
    time: np.ndarray,
    dt: float,
    requested_dt: float,
    dt_snapped: bool,
    method: str,
    factor_seconds: float,
    dc_fallback: bool,
    lte_probes: int,
    solver: str = "auto",
) -> TransientDiagnostics:
    lte = estimate_local_truncation_error(
        assembled, x, time, dt, method, max_probes=lte_probes, solver=solver
    )
    energy = energy_balance(assembled.circuit, assembled, x, time)
    adequacy = dt_adequacy(assembled.circuit, dt)
    return TransientDiagnostics(
        method=method,
        dt=dt,
        requested_dt=requested_dt,
        dt_snapped=dt_snapped,
        t_stop=float(time[-1]),
        steps=len(time) - 1,
        matrix_size=assembled.size,
        num_nodes=assembled.num_nodes,
        num_branches=len(assembled.branch_names),
        factor_seconds=factor_seconds,
        dc_start_fallback=dc_fallback,
        lte_max=lte["max"],
        lte_p95=lte["p95"],
        lte_probes=lte["probes"],
        energy_input=energy["input"],
        energy_dissipated=energy["dissipated"],
        energy_stored_delta=energy["stored_delta"],
        energy_residual=energy["residual"],
        significant_frequency=adequacy["frequency"],
        steps_per_significant_period=adequacy["steps_per_period"],
        dt_adequate=adequacy["adequate"],
    )


def _dc_start(
    assembled: AssembledCircuit, backend: str = "dense"
) -> Tuple[np.ndarray, bool]:
    """Operating-point start vector plus whether the fallback was taken.

    Inductor loops (an inductor directly across a voltage source, or two
    coupled inductors in a loop) make the DC system singular -- the loop
    current is genuinely undetermined at DC.  The minimum-norm
    least-squares solution (zero circulating current) is the physical
    start for a transient, so it is used as the fallback (ticking
    ``circuit_dc_start_fallback``).
    """
    g_raw, _ = system_matrices(assembled.stamps, backend)
    g = gmin_loaded(g_raw, assembled.num_nodes, 1e-12)
    b = assembled.stamps.source_vector(0.0)
    try:
        return factorize(g).solve(b), False
    except SolverError:
        get_registry().inc(DC_START_FALLBACK)
        if backend == "sparse":
            from scipy.sparse.linalg import lsqr

            solution = lsqr(g, b)[0]
        else:
            solution, _, rank, _ = np.linalg.lstsq(g, b, rcond=None)
        residual = g @ solution - b
        if np.max(np.abs(residual)) > 1e-9 * max(1.0, np.max(np.abs(b))):
            get_registry().inc(SINGULAR_SYSTEM)
            raise SolverError(
                "inconsistent DC initialization (conflicting sources)"
            )
        return solution, True
