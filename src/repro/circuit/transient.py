"""Transient analysis with trapezoidal or backward-Euler integration.

The MNA system ``G x + C x' = b(t)`` is integrated on a fixed step:

* trapezoidal (default, SPICE's workhorse -- second order, A-stable,
  preserves the ringing the paper's RLC netlists exhibit), or
* backward Euler (first order, adds numerical damping; useful to confirm
  a suspected numerical oscillation is physical).

The step matrix is factorized once and reused for every step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.circuit.netlist import AssembledCircuit, Circuit
from repro.circuit.waveform import Waveform
from repro.errors import CircuitError, SolverError


@dataclass
class TransientResult:
    """Node voltages and branch currents over time."""

    time: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> Waveform:
        """Voltage waveform at *node*."""
        try:
            return Waveform(self.time, self.node_voltages[node])
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def current(self, element: str) -> Waveform:
        """Current waveform through a branch element."""
        try:
            return Waveform(self.time, self.branch_currents[element])
        except KeyError:
            raise CircuitError(f"element {element!r} has no branch current") from None


def transient_analysis(
    circuit: Union[Circuit, AssembledCircuit],
    t_stop: float,
    dt: float,
    method: str = "trapezoidal",
    initial: str = "dc",
) -> TransientResult:
    """Integrate the circuit from 0 to *t_stop* with fixed step *dt*.

    Parameters
    ----------
    method:
        ``"trapezoidal"`` or ``"backward_euler"``.
    initial:
        ``"dc"`` starts from the operating point with sources at t = 0
        (the usual SPICE behaviour); ``"zero"`` starts from explicit
        initial conditions (or all-zero state).
    """
    if t_stop <= 0.0 or dt <= 0.0:
        raise CircuitError("t_stop and dt must be positive")
    if dt >= t_stop:
        raise CircuitError("dt must be smaller than t_stop")
    if method not in ("trapezoidal", "backward_euler"):
        raise CircuitError(f"unknown method {method!r}")
    if initial not in ("dc", "zero"):
        raise CircuitError(f"unknown initial condition mode {initial!r}")

    assembled = circuit.assemble() if isinstance(circuit, Circuit) else circuit
    g = assembled.stamps.g_matrix
    c = assembled.stamps.c_matrix

    n_steps = int(round(t_stop / dt))
    time = np.arange(n_steps + 1) * dt

    x = np.empty((n_steps + 1, assembled.size))
    if initial == "dc":
        x[0] = _dc_start(assembled)
    else:
        x[0] = assembled.initial_state()

    if method == "trapezoidal":
        lhs = 2.0 * c / dt + g
        rhs_matrix = 2.0 * c / dt - g
    else:
        lhs = c / dt + g
        rhs_matrix = c / dt

    try:
        lu = lu_factor(lhs)
    except (ValueError, np.linalg.LinAlgError) as exc:
        raise SolverError(f"singular transient step matrix: {exc}") from exc

    b_prev = assembled.stamps.source_vector(0.0)
    for k in range(n_steps):
        t_next = time[k + 1]
        b_next = assembled.stamps.source_vector(t_next)
        if method == "trapezoidal":
            rhs = rhs_matrix @ x[k] + b_prev + b_next
        else:
            rhs = rhs_matrix @ x[k] + b_next
        x[k + 1] = lu_solve(lu, rhs)
        b_prev = b_next

    node_voltages = {"0": np.zeros(n_steps + 1)}
    for node, idx in assembled.node_index.items():
        if idx >= 0:
            node_voltages[node] = x[:, idx]
    branch_currents = {
        name: x[:, assembled.num_nodes + i]
        for i, name in enumerate(assembled.branch_names)
    }
    return TransientResult(
        time=time,
        node_voltages=node_voltages,
        branch_currents=branch_currents,
    )


def _dc_start(assembled: AssembledCircuit) -> np.ndarray:
    """Operating-point start vector (node voltages; branch currents from DC).

    Inductor loops (an inductor directly across a voltage source, or two
    coupled inductors in a loop) make the DC system singular -- the loop
    current is genuinely undetermined at DC.  The minimum-norm
    least-squares solution (zero circulating current) is the physical
    start for a transient, so it is used as the fallback.
    """
    g = assembled.stamps.g_matrix.copy()
    n = assembled.num_nodes
    g[:n, :n] += np.eye(n) * 1e-12
    b = assembled.stamps.source_vector(0.0)
    try:
        return np.linalg.solve(g, b)
    except np.linalg.LinAlgError:
        solution, _, rank, _ = np.linalg.lstsq(g, b, rcond=None)
        residual = g @ solution - b
        if np.max(np.abs(residual)) > 1e-9 * max(1.0, np.max(np.abs(b))):
            raise SolverError(
                "inconsistent DC initialization (conflicting sources)"
            )
        return solution
