"""Per-run transient diagnostics: does the simulation explain itself?

Waveform-level simulation is this reproduction's standard of evidence
(every headline number -- Fig. 1 delays, Table I cascading errors, the
H-tree skew study -- is a transient measurement), so a run must carry
enough self-diagnosis to answer "can I trust this waveform?" without
re-running anything:

* **Local truncation error** -- a step-doubling (Richardson) estimate:
  on a deterministic subsample of steps the solver re-integrates the
  step with two half steps and compares against the recorded full-step
  state.  The normalized max / p95 over the probes bound the per-step
  integration error; halving ``dt`` must shrink it (a property test
  pins this).
* **Energy balance** -- by Tellegen's theorem the instantaneous powers
  absorbed by all elements sum to zero *exactly* on the solved states,
  so ``E_source = E_dissipated + dE_stored`` holds up to the time-
  integration error only.  The relative residual of that balance is a
  direct, physical measure of discretization quality (and a loud alarm
  for a non-passive netlist).
* **dt adequacy** -- the paper characterizes at the significant
  frequency ``f_s = 0.32 / t_rise`` of the switching edge; a transient
  step that undersamples ``1/f_s`` cannot resolve the very inductive
  effects being studied.  The check derives ``f_s`` from the circuit's
  own sources (min pulse rise/fall, else max sine frequency) and grades
  the steps-per-significant-period against a floor of 10.
* **Start-up provenance** -- whether the DC start fell back to the
  minimum-norm least-squares solution (inductor loops make the DC
  system genuinely singular), mirrored by process-wide counters
  (``circuit_dc_start_fallback``, ``circuit_singular_system``).

The result rides on :class:`~repro.circuit.transient.TransientResult`
as ``result.diagnostics`` and is embedded (as
:meth:`TransientDiagnostics.to_dict`) into run-report ``simulation``
sections (schema v3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.circuit.backend import factorize, resolve_method, system_matrices
from repro.circuit.elements import (
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.sources import PulseSource, SineSource
from repro.core.frequency import significant_frequency
from repro.errors import SolverError

__all__ = [
    "DT_ADEQUACY_FLOOR",
    "LTE_SUBSAMPLE_SIZE",
    "LTE_SUBSAMPLE_PROBES",
    "TransientDiagnostics",
    "estimate_local_truncation_error",
    "energy_balance",
    "dt_adequacy",
]

#: Minimum steps per significant period for ``dt`` to count as adequate.
DT_ADEQUACY_FLOOR = 10.0

#: Above this many MNA unknowns the LTE probe count is capped at
#: :data:`LTE_SUBSAMPLE_PROBES` -- each probe costs two solves against
#: an extra half-step factorization, which at chip scale would rival the
#: transient itself (``circuit_lte_subsampled`` counts the cap firing).
LTE_SUBSAMPLE_SIZE = 2000

#: Probe budget once :data:`LTE_SUBSAMPLE_SIZE` is exceeded.
LTE_SUBSAMPLE_PROBES = 4

#: Trapezoidal integration that survives the numpy 2.x trapz rename.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


@dataclass
class TransientDiagnostics:
    """Self-diagnosis of one transient run (see the module docstring)."""

    #: Integration method used (``trapezoidal`` / ``backward_euler``).
    method: str
    #: Effective step actually integrated with [s].
    dt: float
    #: The step the caller asked for [s] (differs when snapped).
    requested_dt: float
    #: Whether ``dt`` was snapped so the grid lands exactly on t_stop.
    dt_snapped: bool
    t_stop: float
    steps: int
    #: MNA unknowns (nodes + branch currents).
    matrix_size: int
    num_nodes: int
    num_branches: int
    #: Wall seconds spent LU-factorizing the step matrix.
    factor_seconds: float
    #: Whether the DC start fell back to the least-squares solution.
    dc_start_fallback: bool
    #: Step-doubling local-truncation-error estimate (normalized to the
    #: state magnitude); NaN when the half-step system was singular.
    lte_max: float = 0.0
    lte_p95: float = 0.0
    lte_probes: int = 0
    #: Energy ledger [J] and its relative balance residual.
    energy_input: float = 0.0
    energy_dissipated: float = 0.0
    energy_stored_delta: float = 0.0
    energy_residual: float = 0.0
    #: Significant frequency inferred from the sources [Hz] (None when
    #: the circuit carries no pulse/sine source to infer it from).
    significant_frequency: Optional[float] = None
    #: Transient steps per significant period ``1 / (f_s dt)``.
    steps_per_significant_period: Optional[float] = None
    #: ``steps_per_significant_period >= DT_ADEQUACY_FLOOR`` (None when
    #: no significant frequency could be inferred).
    dt_adequate: Optional[bool] = None

    def to_dict(self) -> dict:
        """JSON-ready dict (the run-report ``simulation`` payload)."""
        return {
            "method": self.method,
            "dt": self.dt,
            "requested_dt": self.requested_dt,
            "dt_snapped": self.dt_snapped,
            "t_stop": self.t_stop,
            "steps": self.steps,
            "matrix_size": self.matrix_size,
            "num_nodes": self.num_nodes,
            "num_branches": self.num_branches,
            "factor_seconds": self.factor_seconds,
            "dc_start_fallback": self.dc_start_fallback,
            "lte_max": self.lte_max,
            "lte_p95": self.lte_p95,
            "lte_probes": self.lte_probes,
            "energy_input": self.energy_input,
            "energy_dissipated": self.energy_dissipated,
            "energy_stored_delta": self.energy_stored_delta,
            "energy_residual": self.energy_residual,
            "significant_frequency": self.significant_frequency,
            "steps_per_significant_period": self.steps_per_significant_period,
            "dt_adequate": self.dt_adequate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransientDiagnostics":
        known = {f: data.get(f) for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)

    def flags(self) -> List[str]:
        """Human-readable warnings this run raised (empty = clean)."""
        out = []
        if self.dt_snapped:
            out.append(
                f"dt snapped {self.requested_dt:.3e} -> {self.dt:.3e} s "
                "so the grid lands on t_stop"
            )
        if self.dt_adequate is False:
            out.append(
                f"dt undersamples the significant frequency "
                f"({self.steps_per_significant_period:.1f} steps/period "
                f"< {DT_ADEQUACY_FLOOR:.0f})"
            )
        if self.dc_start_fallback:
            out.append("DC start used the least-squares fallback "
                       "(inductor loop at DC)")
        if np.isnan(self.lte_max):
            out.append("LTE probe failed (singular half-step system)")
        return out


# ----------------------------------------------------------------------
# step-doubling local truncation error
# ----------------------------------------------------------------------
def estimate_local_truncation_error(
    assembled,
    x: np.ndarray,
    time: np.ndarray,
    dt: float,
    method: str,
    max_probes: int = 16,
    solver: str = "auto",
) -> Dict[str, float]:
    """Richardson (step-doubling) LTE estimate over a probe subsample.

    For up to *max_probes* evenly spaced steps ``k`` the step from
    ``x[k]`` is re-integrated with two half steps on a once-factorized
    half-step matrix; the normalized infinity-norm gap against the
    recorded ``x[k+1]`` estimates the local truncation error of that
    step.  Returns ``{"max", "p95", "probes"}`` (NaNs with 0 probes
    when the half-step matrix is singular).  *solver* picks the
    half-step factorization backend; keep it in sync with the transient
    run being diagnosed.
    """
    backend = resolve_method(
        assembled.size, nnz=assembled.stamps.nnz, solver=solver
    )
    g, c = system_matrices(assembled.stamps, backend)
    half = dt / 2.0
    if method == "trapezoidal":
        lhs = 2.0 * c / half + g
        rhs_matrix = 2.0 * c / half - g
    else:
        lhs = c / half + g
        rhs_matrix = c / half
    if backend == "sparse":
        rhs_matrix = rhs_matrix.tocsr()
    try:
        lu = factorize(lhs)
    except SolverError:
        return {"max": float("nan"), "p95": float("nan"), "probes": 0}

    n_steps = len(time) - 1
    probes = np.unique(
        np.linspace(0, n_steps - 1, min(max_probes, n_steps)).astype(int)
    )
    scale = float(np.max(np.abs(x)))
    if scale <= 0.0:
        scale = 1.0
    source = assembled.stamps.source_vector
    errors = np.empty(len(probes))
    for i, k in enumerate(probes):
        t0 = time[k]
        t_mid = t0 + half
        t1 = time[k + 1]
        b0, bm, b1 = source(t0), source(t_mid), source(t1)
        if method == "trapezoidal":
            x_mid = lu.solve(rhs_matrix @ x[k] + b0 + bm)
            x_end = lu.solve(rhs_matrix @ x_mid + bm + b1)
        else:
            x_mid = lu.solve(rhs_matrix @ x[k] + bm)
            x_end = lu.solve(rhs_matrix @ x_mid + b1)
        errors[i] = np.max(np.abs(x_end - x[k + 1])) / scale
    return {
        "max": float(np.max(errors)),
        "p95": float(np.percentile(errors, 95.0)),
        "probes": int(len(probes)),
    }


# ----------------------------------------------------------------------
# energy balance
# ----------------------------------------------------------------------
def energy_balance(
    circuit,
    assembled,
    x: np.ndarray,
    time: np.ndarray,
) -> Dict[str, float]:
    """Energy ledger of a solved transient.

    Computes ``E_in`` (delivered by V/I/VCVS sources), ``E_diss``
    (resistors) and the stored-energy change of capacitors and
    (mutually coupled) inductors, all from the solved states.  KCL/KVL
    hold exactly on every solved instant, so the relative residual
    ``E_in - E_diss - dE_stored`` measures *time-integration* error
    (it would also expose a non-passive netlist pumping energy).
    """

    def volts(node: str) -> np.ndarray:
        idx = assembled.node_index[node]
        if idx < 0:
            return np.zeros(len(time))
        return x[:, idx]

    def branch_current(name: str) -> np.ndarray:
        return x[:, assembled.branch_row(name)]

    p_source = np.zeros(len(time))
    p_diss = np.zeros(len(time))
    e_stored_0 = 0.0
    e_stored_1 = 0.0
    for element in circuit.elements:
        dv = volts(element.node1) - volts(element.node2)
        if isinstance(element, Resistor):
            p_diss += dv * dv / element.resistance
        elif isinstance(element, Capacitor):
            e_stored_0 += 0.5 * element.capacitance * dv[0] ** 2
            e_stored_1 += 0.5 * element.capacitance * dv[-1] ** 2
        elif isinstance(element, (VoltageSource, VCVS)):
            # absorbed = dv * i; sources *deliver* the negative of it
            p_source += -dv * branch_current(element.name)
        elif isinstance(element, CurrentSource):
            current = np.array([element.waveform(t) for t in time])
            p_source += -dv * current

    # inductive energy 0.5 i^T L i with the full mutual matrix
    inductors = [e for e in circuit.elements if isinstance(e, Inductor)]
    if inductors:
        index = {e.name: i for i, e in enumerate(inductors)}
        l_matrix = np.diag([e.inductance for e in inductors])
        for mutual in circuit.mutuals:
            i, j = index[mutual.inductor1], index[mutual.inductor2]
            l_matrix[i, j] = l_matrix[j, i] = mutual.mutual
        i0 = np.array([branch_current(e.name)[0] for e in inductors])
        i1 = np.array([branch_current(e.name)[-1] for e in inductors])
        e_stored_0 += 0.5 * float(i0 @ l_matrix @ i0)
        e_stored_1 += 0.5 * float(i1 @ l_matrix @ i1)

    e_in = float(_trapezoid(p_source, time))
    e_diss = float(_trapezoid(p_diss, time))
    delta_stored = e_stored_1 - e_stored_0
    denom = max(abs(e_in), abs(e_diss), abs(delta_stored), 1e-30)
    residual = abs(e_in - e_diss - delta_stored) / denom
    return {
        "input": e_in,
        "dissipated": e_diss,
        "stored_delta": delta_stored,
        "residual": residual,
    }


# ----------------------------------------------------------------------
# dt adequacy vs the significant frequency
# ----------------------------------------------------------------------
def dt_adequacy(circuit, dt: float) -> Dict[str, Optional[float]]:
    """Grade *dt* against the circuit's own significant frequency.

    The significant frequency is ``0.32 / t_rise`` of the fastest pulse
    edge (the paper's characterization rule); circuits driven only by
    sine sources use the highest sine frequency.  Returns
    ``{"frequency", "steps_per_period", "adequate"}``; with no switching
    source to infer a frequency from, ``frequency`` and
    ``steps_per_period`` are ``None`` and ``adequate`` is vacuously
    ``True`` (a DC drive cannot be undersampled).
    """
    min_edge = None
    max_sine = None
    for element in circuit.elements:
        waveform = getattr(element, "waveform", None)
        if isinstance(waveform, PulseSource):
            edge = min(waveform.rise, waveform.fall)
            if min_edge is None or edge < min_edge:
                min_edge = edge
        elif isinstance(waveform, SineSource):
            if max_sine is None or waveform.frequency > max_sine:
                max_sine = waveform.frequency
    if min_edge is not None:
        frequency = significant_frequency(min_edge)
    elif max_sine is not None:
        frequency = max_sine
    else:
        return {"frequency": None, "steps_per_period": None, "adequate": True}
    steps_per_period = 1.0 / (frequency * dt)
    return {
        "frequency": frequency,
        "steps_per_period": steps_per_period,
        "adequate": steps_per_period >= DT_ADEQUACY_FLOOR,
    }
