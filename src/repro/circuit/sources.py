"""Time-domain source waveforms (SPICE DC / PULSE / PWL / SIN)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import CircuitError


@dataclass(frozen=True)
class DCSource:
    """A constant source."""

    value: float = 0.0

    def __call__(self, t: float) -> float:
        return self.value


@dataclass(frozen=True)
class PulseSource:
    """A SPICE-style periodic trapezoidal pulse.

    Parameters mirror ``PULSE(v1 v2 delay rise fall width period)``; a
    non-positive *period* gives a single pulse.
    """

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 0.0

    def __post_init__(self) -> None:
        if self.rise <= 0.0 or self.fall <= 0.0:
            raise CircuitError("rise and fall times must be positive")
        if self.width < 0.0:
            raise CircuitError("pulse width must be non-negative")

    def __call__(self, t: float) -> float:
        t = t - self.delay
        if t < 0.0:
            return self.v1
        if self.period > 0.0:
            t = math.fmod(t, self.period)
        if t < self.rise:
            return self.v1 + (self.v2 - self.v1) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.v2
        t -= self.width
        if t < self.fall:
            return self.v2 + (self.v1 - self.v2) * t / self.fall
        return self.v1


@dataclass(frozen=True)
class PWLSource:
    """Piecewise-linear waveform through (time, value) breakpoints."""

    times: Sequence[float]
    values: Sequence[float]

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.ndim != 1 or times.size < 2 or times.size != values.size:
            raise CircuitError("PWL needs matching times/values with >= 2 points")
        if not np.all(np.diff(times) > 0.0):
            raise CircuitError("PWL times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    def __call__(self, t: float) -> float:
        return float(np.interp(t, self.times, self.values))


@dataclass(frozen=True)
class SineSource:
    """A SPICE SIN source: offset + amplitude sin(2 pi f (t - delay))."""

    offset: float = 0.0
    amplitude: float = 1.0
    frequency: float = 1e9
    delay: float = 0.0
    phase_degrees: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise CircuitError("sine frequency must be positive")

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.offset + self.amplitude * math.sin(
                math.radians(self.phase_degrees)
            )
        arg = 2.0 * math.pi * self.frequency * (t - self.delay)
        return self.offset + self.amplitude * math.sin(
            arg + math.radians(self.phase_degrees)
        )
