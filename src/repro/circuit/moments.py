"""Transfer-function moments of MNA circuits (AWE-style analysis).

The interconnect-analysis toolbox of the paper's ref [1] (Lillis, Cheng,
Lin, Chang, *Interconnect Analysis and Synthesis*): expand every node
voltage as a power series in s around s = 0,

    x(s) = m0 + m1 s + m2 s^2 + ...,   (G + sC) x(s) = b,

giving the recursion ``G m0 = b`` and ``G m_k = -C m_{k-1}``.  The first
moment is the (generalized) Elmore delay; a two-pole Pade fit of
(m1, m2, m3) yields delay and damping estimates for RLC netlists that a
single RC moment cannot capture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.circuit.backend import (
    factorize,
    gmin_loaded,
    resolve_method,
    system_matrices,
)
from repro.circuit.netlist import AssembledCircuit, Circuit
from repro.errors import CircuitError, SolverError


@dataclass
class MomentExpansion:
    """Power-series moments of every node voltage."""

    moments: np.ndarray           # shape (order + 1, n_unknowns)
    node_index: Dict[str, int]

    @property
    def order(self) -> int:
        """Highest computed moment order."""
        return self.moments.shape[0] - 1

    def node_moments(self, node: str) -> np.ndarray:
        """Moments m0..mk of one node voltage."""
        try:
            idx = self.node_index[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None
        if idx < 0:
            return np.zeros(self.moments.shape[0])
        return self.moments[:, idx]

    def elmore_delay(self, node: str) -> float:
        """First-moment (Elmore) delay estimate at *node* [s].

        ``-m1 / m0`` -- exact for monotone RC step responses, an upper
        bound elsewhere.
        """
        m = self.node_moments(node)
        if m[0] == 0.0:
            raise SolverError(f"node {node!r} has zero DC response")
        return -m[1] / m[0]

    def two_pole_delay(self, node: str, fraction: float = 0.5) -> float:
        """Two-pole Pade 50 % delay estimate at *node* [s].

        Fits ``H(s) ~ m0 / (1 + b1 s + b2 s^2)`` from the first three
        moments and evaluates the step-response threshold crossing in
        closed form; falls back to the Elmore value when the fit is not
        passive (b2 <= 0).
        """
        if self.order < 2:
            raise SolverError("two-pole estimate needs moments up to m2")
        m = self.node_moments(node)
        if m[0] == 0.0:
            raise SolverError(f"node {node!r} has zero DC response")
        # normalized transfer moments: H = m0 (1 + h1 s + h2 s^2 + ...)
        h1 = m[1] / m[0]
        h2 = m[2] / m[0]
        b1 = -h1
        b2 = h1 * h1 - h2
        if b2 <= 0.0:
            return self.elmore_delay(node)
        omega_n = 1.0 / math.sqrt(b2)
        zeta = b1 * omega_n / 2.0
        if zeta <= 0.0:
            return self.elmore_delay(node)
        # Ismail-Friedman-style closed-form 50 % crossing of the
        # normalized two-pole step response
        if fraction != 0.5:
            raise SolverError("closed form implemented for the 50 % point")
        return (math.exp(-2.9 * zeta ** 1.35) + 1.48 * zeta) / omega_n


def compute_moments(
    circuit: Union[Circuit, AssembledCircuit],
    order: int = 3,
    time: float = None,
    solver: str = "auto",
) -> MomentExpansion:
    """Compute voltage moments m0..m_order for all nodes.

    Sources are evaluated at *time* (default 0) to form the DC excitation;
    for delay analysis drive the circuit with a unit step source.
    *solver* picks the factorization backend (``"auto"`` / ``"dense"`` /
    ``"sparse"``).
    """
    if order < 1:
        raise CircuitError("order must be >= 1")
    assembled = circuit.assemble() if isinstance(circuit, Circuit) else circuit
    method = resolve_method(
        assembled.size, nnz=assembled.stamps.nnz, solver=solver
    )
    g, c = system_matrices(assembled.stamps, method)
    loaded = gmin_loaded(g, assembled.num_nodes, 1e-12)  # gmin for floating caps
    b = assembled.stamps.source_vector(0.0 if time is None else time)

    try:
        lu = factorize(loaded)
    except SolverError as exc:
        raise SolverError(f"singular conductance matrix: {exc}") from exc

    moments = np.empty((order + 1, assembled.size))
    moments[0] = lu.solve(b)
    for k in range(1, order + 1):
        moments[k] = lu.solve(-(c @ moments[k - 1]))
    return MomentExpansion(moments=moments, node_index=dict(assembled.node_index))
