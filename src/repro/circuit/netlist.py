"""Circuit container: nodes, elements and MNA assembly.

:class:`Circuit` is the user-facing netlist: ``add_resistor`` etc. build
it up, :meth:`Circuit.assemble` produces the MNA matrices consumed by
the analyses in :mod:`repro.circuit.dc`, :mod:`repro.circuit.ac` and
:mod:`repro.circuit.transient`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.circuit.elements import (
    VCVS,
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    MutualInductance,
    Resistor,
    Stamps,
    VoltageSource,
)
from repro.circuit.sources import DCSource
from repro.errors import CircuitError

#: The ground node name.
GROUND = "0"

SourceLike = Union[float, Callable[[float], float]]


def _as_waveform(source: SourceLike) -> Callable[[float], float]:
    if callable(source):
        return source
    return DCSource(float(source))


class Circuit:
    """A flat netlist with named nodes; node ``"0"`` is ground."""

    def __init__(self, title: str = ""):
        self.title = title
        self.elements: List[Element] = []
        self.mutuals: List[MutualInductance] = []
        self._names: set = set()
        self._inductors: Dict[str, Inductor] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _register(self, element) -> None:
        if element.name in self._names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)

    def add_resistor(self, name: str, node1: str, node2: str, resistance: float) -> Resistor:
        """Add a resistor [ohm]."""
        element = Resistor(name, node1, node2, resistance)
        self._register(element)
        self.elements.append(element)
        return element

    def add_capacitor(
        self, name: str, node1: str, node2: str, capacitance: float,
        initial_voltage: float = 0.0,
    ) -> Capacitor:
        """Add a capacitor [F]."""
        element = Capacitor(name, node1, node2, capacitance, initial_voltage)
        self._register(element)
        self.elements.append(element)
        return element

    def add_inductor(
        self, name: str, node1: str, node2: str, inductance: float,
        initial_current: float = 0.0,
    ) -> Inductor:
        """Add an inductor [H]."""
        element = Inductor(name, node1, node2, inductance, initial_current)
        self._register(element)
        self.elements.append(element)
        self._inductors[name] = element
        return element

    def add_mutual(
        self, name: str, inductor1: str, inductor2: str,
        mutual: Optional[float] = None, coupling: Optional[float] = None,
    ) -> MutualInductance:
        """Couple two inductors by mutual inductance [H] or coefficient k."""
        for ind in (inductor1, inductor2):
            if ind not in self._inductors:
                raise CircuitError(f"mutual {name!r} references unknown inductor {ind!r}")
        if (mutual is None) == (coupling is None):
            raise CircuitError("give exactly one of mutual=, coupling=")
        if name in self._names:
            raise CircuitError(f"duplicate element name {name!r}")
        if coupling is not None:
            element = MutualInductance.from_coupling(
                name, self._inductors[inductor1], self._inductors[inductor2], coupling
            )
        else:
            l1 = self._inductors[inductor1].inductance
            l2 = self._inductors[inductor2].inductance
            if abs(mutual) >= np.sqrt(l1 * l2):
                raise CircuitError(
                    f"mutual {name!r}: |M| must be < sqrt(L1 L2) for passivity"
                )
            element = MutualInductance(name, inductor1, inductor2, mutual)
        self._names.add(name)
        self.mutuals.append(element)
        return element

    def add_voltage_source(
        self, name: str, node1: str, node2: str, source: SourceLike = 0.0,
        ac_magnitude: float = 0.0,
    ) -> VoltageSource:
        """Add an independent voltage source (+ terminal = node1)."""
        element = VoltageSource(
            name, node1, node2, waveform=_as_waveform(source),
            ac_magnitude=ac_magnitude,
        )
        self._register(element)
        self.elements.append(element)
        return element

    def add_current_source(
        self, name: str, node1: str, node2: str, source: SourceLike = 0.0,
        ac_magnitude: float = 0.0,
    ) -> CurrentSource:
        """Add an independent current source flowing node1 -> node2."""
        element = CurrentSource(
            name, node1, node2, waveform=_as_waveform(source),
            ac_magnitude=ac_magnitude,
        )
        self._register(element)
        self.elements.append(element)
        return element

    def add_vcvs(
        self, name: str, node1: str, node2: str, control1: str, control2: str,
        gain: float,
    ) -> VCVS:
        """Add a voltage-controlled voltage source."""
        element = VCVS(name, node1, node2, control1=control1, control2=control2,
                       gain=gain)
        self._register(element)
        self.elements.append(element)
        return element

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        """All non-ground node names in first-use order."""
        # dict preserves insertion order and keeps this O(elements);
        # the previous list-membership scan was quadratic and dominated
        # assembly of chip-scale netlists.
        seen: Dict[str, None] = {}
        for element in self.elements:
            candidates = [element.node1, element.node2]
            if isinstance(element, VCVS):
                candidates += [element.control1, element.control2]
            for node in candidates:
                if node != GROUND:
                    seen[node] = None
        return list(seen)

    @property
    def branch_elements(self) -> List[Element]:
        """Elements that carry a branch-current unknown."""
        return [e for e in self.elements if e.has_branch]

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        for candidate in self.elements:
            if candidate.name == name:
                return candidate
        raise CircuitError(f"unknown element {name!r}")

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble(self) -> "AssembledCircuit":
        """Stamp all elements and return the MNA system.

        Runs under a ``circuit.assemble`` span tagged with the element,
        node and branch counts plus the resulting MNA size (PR 5).
        """
        from repro.telemetry.spans import span

        if not self.elements:
            raise CircuitError("circuit has no elements")
        nodes = self.nodes
        if not nodes:
            raise CircuitError("circuit has no non-ground nodes")
        has_ground = any(
            GROUND in (e.node1, e.node2) for e in self.elements
        )
        if not has_ground:
            raise CircuitError("circuit has no connection to ground node '0'")
        node_index = {GROUND: -1}
        for i, node in enumerate(nodes):
            node_index[node] = i
        branch_names = [e.name for e in self.branch_elements]
        with span(
            "circuit.assemble",
            elements=len(self.elements),
            mutuals=len(self.mutuals),
            nodes=len(nodes),
            branches=len(branch_names),
        ) as sp:
            stamps = Stamps(node_index, branch_names)
            for element in self.elements:
                element.stamp(stamps)
            for mutual in self.mutuals:
                mutual.stamp(stamps)
            if sp is not None:
                sp.tags["size"] = stamps.size
        return AssembledCircuit(self, node_index, branch_names, stamps)


class AssembledCircuit:
    """MNA matrices plus index bookkeeping for one circuit."""

    def __init__(self, circuit: Circuit, node_index, branch_names, stamps: Stamps):
        self.circuit = circuit
        self.node_index = node_index
        self.branch_names = branch_names
        self.stamps = stamps
        self._branch_rows = {name: i for i, name in enumerate(branch_names)}

    @property
    def size(self) -> int:
        """Number of MNA unknowns."""
        return self.stamps.size

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes."""
        return self.stamps.num_nodes

    def node_row(self, node: str) -> int:
        """Row of a node voltage in the unknown vector (-1 for ground)."""
        try:
            return self.node_index[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def branch_row(self, name: str) -> int:
        """Row of a branch current in the unknown vector."""
        try:
            return self.stamps.num_nodes + self._branch_rows[name]
        except KeyError:
            raise CircuitError(f"element {name!r} has no branch current") from None

    def initial_state(self) -> np.ndarray:
        """State honouring capacitor/inductor initial conditions (else 0)."""
        x = np.zeros(self.size)
        for element in self.circuit.elements:
            if isinstance(element, Capacitor) and element.initial_voltage:
                i = self.node_row(element.node1)
                j = self.node_row(element.node2)
                if i >= 0:
                    x[i] = element.initial_voltage
                if j >= 0:
                    x[j] = -element.initial_voltage
            elif isinstance(element, Inductor) and element.initial_current:
                x[self.branch_row(element.name)] = element.initial_current
        return x
