"""Shared dense/sparse factorization backend for the MNA analyses.

Every analysis (``dc``, ``ac``, ``moments``, fixed-dt ``transient`` and
the diagnostics half-step LTE probe) reduces to "factor one system
matrix once, then solve it against one or many right-hand sides".  This
module is the single place that choice of representation lives:

* :class:`DenseFactorization` wraps :func:`scipy.linalg.lu_factor` /
  ``lu_solve`` -- the historical path, bit-compatible with the seed
  behaviour and the right call below a few thousand unknowns where
  LAPACK's cache-friendly dense kernels win.
* :class:`SparseFactorization` wraps
  :func:`scipy.sparse.linalg.splu` on a CSC matrix -- the chip-scale
  path: an MNA matrix of an extracted clocktree holds a handful of
  entries per row, so a 10^5-unknown netlist factorizes in memory a
  dense matrix could not even allocate (10^5 squared doubles is 80 GB).

Both expose ``solve`` (vector or ``(n, k)`` stack) and ``solve_many``
(explicit multi-RHS), so callers factor once and stream right-hand
sides.  :func:`resolve_method` turns the user-facing
``solver="auto" | "dense" | "sparse"`` override into a concrete method
from the matrix size and (optionally) its structural density; ``auto``
keeps every small fixture on the dense path so existing numbers do not
move, and flips to sparse where dense stops being feasible.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

import numpy as np
from scipy import sparse
from scipy.linalg import LinAlgWarning, lu_factor, lu_solve
from scipy.sparse.linalg import splu

from repro.errors import CircuitError, SolverError
from repro.telemetry.registry import (
    SOLVER_FACTOR_DENSE,
    SOLVER_FACTOR_SPARSE,
    get_registry,
)

__all__ = [
    "SOLVER_METHODS",
    "DENSE_SIZE_CUTOFF",
    "SPARSE_DENSITY_CUTOFF",
    "validate_solver",
    "resolve_method",
    "factorize",
    "DenseFactorization",
    "SparseFactorization",
    "system_matrices",
    "gmin_loaded",
]

#: Accepted values of the user-facing ``solver=`` override.
SOLVER_METHODS = ("auto", "dense", "sparse")

#: ``auto`` stays dense up to this many MNA unknowns.  Every tier-1
#: fixture sits far below it (the largest is a few hundred unknowns),
#: so the automatic choice cannot move any seed number; the measured
#: dense/sparse wall-time crossover on extracted clocktree netlists sits
#: near 1-2k unknowns (see BENCH_transient.json).
DENSE_SIZE_CUTOFF = 1500

#: Above the size cutoff, a matrix this structurally dense is factored
#: dense anyway (fill-in would make splu pay twice) -- MNA matrices of
#: extracted netlists never get anywhere near it; this guards
#: pathological hand-built circuits.
SPARSE_DENSITY_CUTOFF = 0.25


def validate_solver(solver: str) -> None:
    """Raise :class:`CircuitError` unless *solver* is a known method."""
    if solver not in SOLVER_METHODS:
        raise CircuitError(
            f"unknown solver {solver!r}; expected one of {SOLVER_METHODS}"
        )


def resolve_method(
    size: int, nnz: Optional[int] = None, solver: str = "auto"
) -> str:
    """Concrete ``"dense"`` / ``"sparse"`` choice for one system.

    Parameters
    ----------
    size:
        Number of MNA unknowns.
    nnz:
        Structural non-zeros of the combined G/C pattern (optional;
        refines the choice near the cutoff).
    solver:
        The user override: ``"dense"`` / ``"sparse"`` force the choice,
        ``"auto"`` (default) picks by size and density.
    """
    validate_solver(solver)
    if solver != "auto":
        return solver
    if size <= DENSE_SIZE_CUTOFF:
        return "dense"
    if nnz is not None and nnz / (size * size) > SPARSE_DENSITY_CUTOFF:
        return "dense"
    return "sparse"


class DenseFactorization:
    """Factor-once dense LU (:func:`scipy.linalg.lu_factor`)."""

    method = "dense"

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise SolverError(f"matrix must be square, got {matrix.shape}")
        self.n = matrix.shape[0]
        try:
            with warnings.catch_warnings():
                # getrf only *warns* on an exact zero pivot; the explicit
                # diagonal check below turns that into the same hard
                # error np.linalg.solve historically raised.
                warnings.simplefilter("ignore", LinAlgWarning)
                self._lu = lu_factor(matrix)
        except (ValueError, np.linalg.LinAlgError) as exc:
            raise SolverError(f"singular system matrix: {exc}") from exc
        if np.any(np.diag(self._lu[0]) == 0.0):
            raise SolverError("singular system matrix: exact zero pivot")
        get_registry().inc(SOLVER_FACTOR_DENSE)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against one vector or an ``(n, k)`` column stack."""
        return lu_solve(self._lu, rhs)

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Explicit multi-RHS solve: *rhs* is ``(n, k)``, columns."""
        rhs = np.asarray(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != self.n:
            raise SolverError(
                f"multi-RHS stack must be ({self.n}, k), got {rhs.shape}"
            )
        return lu_solve(self._lu, rhs)


class SparseFactorization:
    """Factor-once sparse LU (:func:`scipy.sparse.linalg.splu` on CSC)."""

    method = "sparse"

    def __init__(self, matrix):
        if not sparse.issparse(matrix):
            raise SolverError("SparseFactorization needs a scipy.sparse matrix")
        csc = matrix.tocsc()
        if csc.shape[0] != csc.shape[1]:
            raise SolverError(f"matrix must be square, got {csc.shape}")
        self.n = csc.shape[0]
        try:
            self._lu = splu(csc)
        except (RuntimeError, ValueError) as exc:
            raise SolverError(f"singular system matrix: {exc}") from exc
        get_registry().inc(SOLVER_FACTOR_SPARSE)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against one vector or an ``(n, k)`` column stack."""
        return self._lu.solve(np.asarray(rhs))

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Explicit multi-RHS solve: *rhs* is ``(n, k)``, columns."""
        rhs = np.asarray(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != self.n:
            raise SolverError(
                f"multi-RHS stack must be ({self.n}, k), got {rhs.shape}"
            )
        return self._lu.solve(rhs)


Factorization = Union[DenseFactorization, SparseFactorization]


def factorize(matrix) -> Factorization:
    """Factor *matrix* with the representation it arrived in.

    A :mod:`scipy.sparse` matrix gets :class:`SparseFactorization`,
    anything array-like gets :class:`DenseFactorization`.  Raises
    :class:`~repro.errors.SolverError` when the matrix is singular.
    """
    if sparse.issparse(matrix):
        return SparseFactorization(matrix)
    return DenseFactorization(matrix)


def system_matrices(stamps, method: str):
    """The ``(G, C)`` pair of *stamps* in *method*'s representation."""
    if method == "sparse":
        return stamps.g_csc(), stamps.c_csc()
    return stamps.g_matrix, stamps.c_matrix


def gmin_loaded(g, num_nodes: int, gmin: float):
    """``G`` with *gmin* added on the node-voltage diagonal.

    Dense inputs reproduce the historical
    ``g.copy(); g[:n, :n] += np.eye(n) * gmin`` bit for bit; sparse
    inputs add a diagonal matrix and stay CSC.
    """
    if sparse.issparse(g):
        diagonal = np.zeros(g.shape[0])
        diagonal[:num_nodes] = gmin
        return (g + sparse.diags(diagonal)).tocsc()
    loaded = g.copy()
    loaded[:num_nodes, :num_nodes] += np.eye(num_nodes) * gmin
    return loaded
