"""Small-signal AC analysis: solve (G + j omega C) x = b over a sweep."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

from repro.circuit.backend import factorize, resolve_method, system_matrices
from repro.circuit.netlist import AssembledCircuit, Circuit
from repro.errors import CircuitError, SolverError


@dataclass
class ACResult:
    """Complex node voltages over a frequency sweep."""

    frequencies: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Complex voltage phasors at *node* across the sweep."""
        try:
            return self.node_voltages[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def current(self, element: str) -> np.ndarray:
        """Complex branch current through a branch element."""
        try:
            return self.branch_currents[element]
        except KeyError:
            raise CircuitError(f"element {element!r} has no branch current") from None

    def magnitude_db(self, node: str) -> np.ndarray:
        """|V(node)| in dB."""
        return 20.0 * np.log10(np.abs(self.voltage(node)))


def ac_analysis(
    circuit: Union[Circuit, AssembledCircuit],
    frequencies: Sequence[float],
    solver: str = "auto",
) -> ACResult:
    """Frequency sweep with the registered AC source magnitudes.

    *solver* picks the per-frequency factorization backend (``"auto"`` /
    ``"dense"`` / ``"sparse"``).
    """
    assembled = circuit.assemble() if isinstance(circuit, Circuit) else circuit
    freqs = np.asarray(frequencies, dtype=float)
    if freqs.ndim != 1 or freqs.size == 0:
        raise CircuitError("frequencies must be a non-empty 1-D sequence")
    if np.any(freqs < 0.0):
        raise CircuitError("frequencies must be non-negative")
    method = resolve_method(
        assembled.size, nnz=assembled.stamps.nnz, solver=solver
    )
    g, c = system_matrices(assembled.stamps, method)
    b = assembled.stamps.ac_source_vector()
    if not np.any(b):
        raise CircuitError("no AC sources: set ac_magnitude on a source")

    solutions = np.empty((freqs.size, assembled.size), dtype=complex)
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        system = g + 1j * omega * c
        try:
            solutions[k] = factorize(system).solve(b)
        except SolverError as exc:
            raise SolverError(f"singular AC system at {f} Hz: {exc}") from exc

    node_voltages = {"0": np.zeros(freqs.size, dtype=complex)}
    for node, idx in assembled.node_index.items():
        if idx >= 0:
            node_voltages[node] = solutions[:, idx]
    branch_currents = {
        name: solutions[:, assembled.num_nodes + i]
        for i, name in enumerate(assembled.branch_names)
    }
    return ACResult(
        frequencies=freqs,
        node_voltages=node_voltages,
        branch_currents=branch_currents,
    )


def input_impedance(
    circuit: Union[Circuit, AssembledCircuit],
    source_name: str,
    frequencies: Sequence[float],
) -> np.ndarray:
    """Impedance seen by a unit-AC voltage source: Z = V_ac / I(source).

    The source current flows through the source from + to -, so the
    impedance presented by the rest of the circuit is ``-V/I``.
    """
    assembled = circuit.assemble() if isinstance(circuit, Circuit) else circuit
    result = ac_analysis(assembled, frequencies)
    source = assembled.circuit.element(source_name)
    current = result.current(source_name)
    if np.any(current == 0.0):
        raise SolverError("source current is zero; impedance undefined")
    return -source.ac_magnitude / current
