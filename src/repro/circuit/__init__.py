"""A compact MNA circuit simulator (the paper's HSPICE substitute).

Supports R, L, C, mutually coupled inductors, independent sources with
DC/pulse/PWL/sine waveforms and controlled sources; analyses: DC
operating point, AC sweep and trapezoidal/backward-Euler transient.
Waveform post-processing (delay, overshoot, skew) lives in
:mod:`repro.circuit.waveform`.
"""

from repro.circuit.ac import ACResult, ac_analysis
from repro.circuit.dc import operating_point
from repro.circuit.diagnostics import TransientDiagnostics
from repro.circuit.lint import (
    LintFinding,
    NetlistHealthReport,
    lint_circuit,
    lint_spice,
)
from repro.circuit.netlist import Circuit
from repro.circuit.sources import DCSource, PulseSource, PWLSource, SineSource
from repro.circuit.spice_export import to_spice, write_spice
from repro.circuit.spice_import import ParsedDeck, from_spice
from repro.circuit.transient import TransientResult, transient_analysis
from repro.circuit.waveform import Waveform, skew

__all__ = [
    "to_spice",
    "write_spice",
    "from_spice",
    "ParsedDeck",
    "Circuit",
    "DCSource",
    "PulseSource",
    "PWLSource",
    "SineSource",
    "operating_point",
    "ac_analysis",
    "ACResult",
    "transient_analysis",
    "TransientResult",
    "TransientDiagnostics",
    "LintFinding",
    "NetlistHealthReport",
    "lint_circuit",
    "lint_spice",
    "Waveform",
    "skew",
]
