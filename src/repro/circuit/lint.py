"""Netlist health lint: severity-graded sanity checks before simulation.

The extract -> simulate -> compare loop is only as trustworthy as the
netlists handed to the MNA engine, and a surprising number of extraction
bugs show up as *structurally* broken circuits long before a waveform
looks wrong: a sink left floating by a mis-keyed node name, a negative
capacitance from a subtraction gone wrong, a mutual inductance that
violates passivity and pumps energy into the clock net.  This module
grades a circuit against those failure modes and returns a
:class:`NetlistHealthReport` that downstream layers (the clocktree
extractor, ``simulate_clocktree``, the ``repro lint`` CLI, RunReport v3)
attach to their outputs.

Checks (severity in parentheses):

* empty circuit / no ground connection (error),
* non-positive or non-finite R, L, C values (error),
* mutual coupling ``|k| >= 1`` (error) and ``|k| > 0.95`` (warning),
* inductance-matrix passivity: the assembled ``[L, M]`` block must be
  positive semi-definite or the circuit can generate energy (error),
* nodes with no conducting path to ground -- current sources do not
  count as conducting, matching the MNA singularity they cause (error),
* dangling single-terminal nodes (warning),
* VCVS control-only nodes, which have an all-zero KCL row (error),
* element-count statistics (info, carried in ``stats``).

Constructor validation in :mod:`repro.circuit.elements` already rejects
most bad *values* at build time; the lint re-checks them anyway so that
circuits assembled by other paths (or mutated after construction) are
still caught, and so a report on a known-good circuit positively
asserts the invariants rather than assuming them.

Every run executes under a ``netlist.lint`` span and ticks the
``netlist_lint`` / ``netlist_lint_finding`` counters (observational --
excluded from zero-solve assertions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.circuit.elements import (
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import GROUND, Circuit
from repro.errors import CircuitError
from repro.telemetry.registry import (
    NETLIST_LINT,
    NETLIST_LINT_FINDING,
    get_registry,
)
from repro.telemetry.spans import span

__all__ = [
    "LintFinding",
    "NetlistHealthReport",
    "lint_circuit",
    "lint_spice",
]

#: Coupling magnitude above which a warning is emitted (on-chip wire
#: coupling this extreme usually signals an extraction bug even though
#: it is still formally passive).
COUPLING_WARN = 0.95

#: Relative tolerance for the L-matrix PSD check: eigenvalues above
#: ``-PSD_RTOL * max(diag L)`` count as non-negative.
PSD_RTOL = 1e-12

_SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class LintFinding:
    """One graded finding: what is wrong, how bad, and where."""

    severity: str
    code: str
    message: str
    #: Offending element or node name when the finding is localized.
    subject: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise CircuitError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, str]:
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "subject": self.subject,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "LintFinding":
        return cls(
            severity=data["severity"],
            code=data["code"],
            message=data["message"],
            subject=data.get("subject", ""),
        )


@dataclass
class NetlistHealthReport:
    """Severity-graded lint result for one netlist."""

    name: str = ""
    findings: List[LintFinding] = field(default_factory=list)
    #: Element-count statistics (resistors, capacitors, ... , nodes).
    stats: Dict[str, int] = field(default_factory=dict)
    #: Smallest eigenvalue of the assembled inductance matrix (None when
    #: the circuit has no inductors).
    l_min_eigenvalue: Optional[float] = None
    #: Largest |k| over all mutual couplings (None without mutuals).
    max_coupling: Optional[float] = None

    # ------------------------------------------------------------------
    # interrogation
    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def clean(self) -> bool:
        """True when the netlist has no error-severity findings."""
        return not self.errors

    def summary(self) -> str:
        """One-line verdict suitable for logs and report sections."""
        label = self.name or "netlist"
        counts = ", ".join(
            f"{v} {k}" for k, v in self.stats.items() if v and k != "nodes"
        )
        if self.clean and not self.warnings:
            return f"{label}: clean ({counts})"
        return (
            f"{label}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) ({counts})"
        )

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [self.summary()]
        for finding in self.findings:
            where = f" [{finding.subject}]" if finding.subject else ""
            lines.append(
                f"  {finding.severity.upper():7s} {finding.code}{where}: "
                f"{finding.message}"
            )
        if self.l_min_eigenvalue is not None:
            lines.append(
                f"  l-matrix min eigenvalue: {self.l_min_eigenvalue:.6e} H"
            )
        if self.max_coupling is not None:
            lines.append(f"  max |k|: {self.max_coupling:.6f}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # serialization (RunReport v3 simulation section)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "clean": self.clean,
            "num_errors": len(self.errors),
            "num_warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
            "stats": dict(self.stats),
            "l_min_eigenvalue": self.l_min_eigenvalue,
            "max_coupling": self.max_coupling,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NetlistHealthReport":
        return cls(
            name=data.get("name", ""),
            findings=[LintFinding.from_dict(f) for f in data.get("findings", [])],
            stats=dict(data.get("stats", {})),
            l_min_eigenvalue=data.get("l_min_eigenvalue"),
            max_coupling=data.get("max_coupling"),
        )


class _UnionFind:
    """Minimal union-find over node names for connectivity analysis."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, node: str) -> None:
        self._parent.setdefault(node, node)

    def find(self, node: str) -> str:
        self.add(node)
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:  # path compression
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def connected(self, a: str, b: str) -> bool:
        return self.find(a) == self.find(b)


def _value_findings(circuit: Circuit) -> List[LintFinding]:
    """Non-positive / non-finite R, L, C values."""
    findings: List[LintFinding] = []
    kinds = (
        (Resistor, "resistance", "ohm"),
        (Capacitor, "capacitance", "F"),
        (Inductor, "inductance", "H"),
    )
    for element in circuit.elements:
        for cls, attr, unit in kinds:
            if not isinstance(element, cls):
                continue
            value = getattr(element, attr)
            if not math.isfinite(value):
                findings.append(LintFinding(
                    "error", "non_finite_value",
                    f"{attr} is {value!r}", element.name,
                ))
            elif value <= 0.0:
                findings.append(LintFinding(
                    "error", "non_positive_value",
                    f"{attr} = {value:.6e} {unit} must be > 0", element.name,
                ))
    return findings


def _coupling_findings(circuit: Circuit):
    """|k| checks for every mutual; returns (findings, max |k|)."""
    findings: List[LintFinding] = []
    max_k: Optional[float] = None
    inductors = {
        e.name: e for e in circuit.elements if isinstance(e, Inductor)
    }
    for mutual in circuit.mutuals:
        l1 = inductors.get(mutual.inductor1)
        l2 = inductors.get(mutual.inductor2)
        if l1 is None or l2 is None:
            findings.append(LintFinding(
                "error", "unknown_inductor",
                f"couples unknown inductor "
                f"{mutual.inductor1!r}/{mutual.inductor2!r}", mutual.name,
            ))
            continue
        denom = math.sqrt(l1.inductance * l2.inductance)
        k = abs(mutual.mutual) / denom if denom > 0 else math.inf
        max_k = k if max_k is None else max(max_k, k)
        if k >= 1.0:
            findings.append(LintFinding(
                "error", "coupling_exceeds_unity",
                f"|k| = {k:.6f} >= 1 violates passivity", mutual.name,
            ))
        elif k > COUPLING_WARN:
            findings.append(LintFinding(
                "warning", "coupling_near_unity",
                f"|k| = {k:.6f} > {COUPLING_WARN} is suspiciously strong",
                mutual.name,
            ))
    return findings, max_k


def _passivity_findings(circuit: Circuit):
    """PSD check of the assembled inductance matrix [L_i, M_ij].

    A non-PSD inductance matrix stores negative energy for some current
    vector -- the simulated circuit would amplify rather than damp, which
    is exactly the artifact the paper's partial-inductance modeling must
    avoid.  Returns (findings, min eigenvalue or None).
    """
    inductors = [e for e in circuit.elements if isinstance(e, Inductor)]
    if not inductors:
        return [], None
    index = {ind.name: i for i, ind in enumerate(inductors)}
    n = len(inductors)
    l_matrix = np.zeros((n, n))
    for i, ind in enumerate(inductors):
        l_matrix[i, i] = ind.inductance
    for mutual in circuit.mutuals:
        i = index.get(mutual.inductor1)
        j = index.get(mutual.inductor2)
        if i is None or j is None:
            continue  # reported by _coupling_findings
        l_matrix[i, j] += mutual.mutual
        l_matrix[j, i] += mutual.mutual
    eigenvalues = np.linalg.eigvalsh(l_matrix)
    min_eig = float(eigenvalues[0])
    findings: List[LintFinding] = []
    tol = PSD_RTOL * float(np.max(np.diag(l_matrix)))
    if min_eig < -tol:
        findings.append(LintFinding(
            "error", "l_matrix_not_psd",
            f"inductance matrix has negative eigenvalue {min_eig:.6e} H; "
            "the mutual couplings are collectively non-passive",
        ))
    return findings, min_eig


def _connectivity_findings(circuit: Circuit) -> List[LintFinding]:
    """Ground reachability, dangling nodes and control-only nodes."""
    findings: List[LintFinding] = []
    uf = _UnionFind()
    uf.add(GROUND)
    degree: Dict[str, int] = {}
    control_only: Dict[str, bool] = {}
    for element in circuit.elements:
        for node in (element.node1, element.node2):
            uf.add(node)
            degree[node] = degree.get(node, 0) + 1
            control_only[node] = False
        # Current sources inject current but add no conductance: a node
        # reachable only through one has a singular KCL row, so they do
        # not count as a conducting path.
        if not isinstance(element, CurrentSource):
            uf.union(element.node1, element.node2)
        if isinstance(element, VCVS):
            for node in (element.control1, element.control2):
                uf.add(node)
                control_only.setdefault(node, True)

    for node in sorted(control_only):
        if node == GROUND:
            continue
        if control_only[node]:
            findings.append(LintFinding(
                "error", "control_only_node",
                "appears only as a VCVS control terminal; its KCL row is "
                "all-zero and the MNA system is singular", node,
            ))
        elif not uf.connected(node, GROUND):
            findings.append(LintFinding(
                "error", "disconnected_from_ground",
                "no conducting path (R/C/L/V/E) to ground", node,
            ))
        elif degree.get(node, 0) == 1:
            findings.append(LintFinding(
                "warning", "dangling_node",
                "touches a single element terminal (dead-end stub)", node,
            ))
    return findings


def _stats(circuit: Circuit) -> Dict[str, int]:
    counts = {
        "resistors": 0, "capacitors": 0, "inductors": 0,
        "vsources": 0, "isources": 0, "vcvs": 0,
    }
    for element in circuit.elements:
        if isinstance(element, Resistor):
            counts["resistors"] += 1
        elif isinstance(element, Capacitor):
            counts["capacitors"] += 1
        elif isinstance(element, Inductor):
            counts["inductors"] += 1
        elif isinstance(element, VoltageSource):
            counts["vsources"] += 1
        elif isinstance(element, CurrentSource):
            counts["isources"] += 1
        elif isinstance(element, VCVS):
            counts["vcvs"] += 1
    counts["mutuals"] = len(circuit.mutuals)
    counts["nodes"] = len(circuit.nodes)
    return counts


def lint_circuit(circuit: Circuit, name: str = "") -> NetlistHealthReport:
    """Run every health check against *circuit*.

    Never raises on an unhealthy circuit -- problems become graded
    findings so callers can decide whether to proceed, warn or abort.
    """
    registry = get_registry()
    with span("netlist.lint", elements=len(circuit.elements)) as sp:
        registry.inc(NETLIST_LINT)
        findings: List[LintFinding] = []
        if not circuit.elements:
            findings.append(LintFinding(
                "error", "empty_circuit", "circuit has no elements",
            ))
            report = NetlistHealthReport(
                name=name or circuit.title, findings=findings, stats=_stats(circuit),
            )
        else:
            if not any(
                GROUND in (e.node1, e.node2) for e in circuit.elements
            ):
                findings.append(LintFinding(
                    "error", "no_ground",
                    "no element terminal touches ground node '0'",
                ))
            findings.extend(_value_findings(circuit))
            coupling_findings, max_k = _coupling_findings(circuit)
            findings.extend(coupling_findings)
            passivity_findings, min_eig = _passivity_findings(circuit)
            findings.extend(passivity_findings)
            findings.extend(_connectivity_findings(circuit))
            report = NetlistHealthReport(
                name=name or circuit.title,
                findings=findings,
                stats=_stats(circuit),
                l_min_eigenvalue=min_eig,
                max_coupling=max_k,
            )
        if report.findings:
            registry.inc(NETLIST_LINT_FINDING, len(report.findings))
        if sp is not None:
            sp.tags["errors"] = len(report.errors)
            sp.tags["warnings"] = len(report.warnings)
    return report


def lint_spice(text: str, name: str = "") -> NetlistHealthReport:
    """Lint a SPICE deck string.

    Decks the importer refuses outright (negative capacitance, ``|k| >=
    1`` K cards, malformed lines) become a single ``parse_error``
    finding instead of an exception: from the lint CLI's point of view
    an unparseable deck is simply a very unhealthy one.
    """
    try:
        from repro.circuit.spice_import import from_spice

        deck = from_spice(text)
    except CircuitError as exc:
        get_registry().inc(NETLIST_LINT)
        get_registry().inc(NETLIST_LINT_FINDING)
        return NetlistHealthReport(
            name=name,
            findings=[LintFinding(
                "error", "parse_error", f"deck rejected by importer: {exc}",
            )],
        )
    return lint_circuit(deck.circuit, name=name or deck.title)
