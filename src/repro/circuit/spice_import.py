"""Parse a SPICE deck back into a :class:`~repro.circuit.netlist.Circuit`.

Supports the element subset the exporter emits -- R, C, L (with IC=),
V/I with DC / PULSE / PWL / SIN specifications, E (VCVS) and K coupling
cards -- plus comments, ``+`` continuation lines and engineering
suffixes (``1k``, ``2.5n``, ``10meg`` ...).  Control cards (``.tran``
etc.) are collected, not executed.  Together with
:mod:`repro.circuit.spice_export` this gives a lossless round trip for
extracted netlists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.sources import DCSource, PulseSource, PWLSource, SineSource
from repro.errors import CircuitError

#: Engineering suffix multipliers (case-insensitive; MEG before M).
_SUFFIXES = (
    ("meg", 1e6), ("mil", 25.4e-6), ("t", 1e12), ("g", 1e9), ("k", 1e3),
    ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12), ("f", 1e-15),
)

_NUMBER_RE = re.compile(
    r"^([+-]?(?:\d+\.?\d*|\.\d+))([eE][+-]?\d+)?([a-zA-Z]*)$"
)


def parse_value(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    match = _NUMBER_RE.match(token.strip())
    if not match:
        raise CircuitError(f"cannot parse SPICE value {token!r}")
    mantissa = float(match.group(1) + (match.group(2) or ""))
    suffix = match.group(3).lower()
    if not suffix:
        return mantissa
    for name, scale in _SUFFIXES:
        if suffix.startswith(name):
            return mantissa * scale
    # unknown trailing units (e.g. "5ohm") -- ignore the letters
    return mantissa


@dataclass
class ParsedDeck:
    """A parsed SPICE deck: the circuit plus its control cards."""

    circuit: Circuit
    title: str = ""
    controls: List[str] = field(default_factory=list)


def _logical_lines(text: str) -> List[str]:
    """Join ``+`` continuations, drop comments and blank lines."""
    lines: List[str] = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not lines:
                raise CircuitError("continuation line with nothing to continue")
            lines[-1] += " " + stripped[1:].strip()
        else:
            lines.append(stripped)
    return lines


def _split_function_args(spec: str) -> List[float]:
    """Extract numbers from ``NAME(a b c)`` or ``NAME a b c`` forms."""
    inside = spec
    if "(" in spec:
        inside = spec[spec.index("(") + 1:spec.rindex(")")]
    tokens = inside.replace(",", " ").split()
    return [parse_value(t) for t in tokens]


def _parse_source(tokens: List[str]):
    """Parse a source specification into a waveform callable."""
    spec = " ".join(tokens)
    upper = spec.upper()
    if upper.startswith("DC"):
        values = _split_function_args(spec[2:])
        return DCSource(values[0] if values else 0.0)
    if upper.startswith("PULSE"):
        args = _split_function_args(spec)
        defaults = [0.0, 0.0, 0.0, 1e-12, 1e-12, 1e-9, 0.0]
        args = args + defaults[len(args):]
        return PulseSource(v1=args[0], v2=args[1], delay=args[2],
                           rise=args[3], fall=args[4], width=args[5],
                           period=args[6])
    if upper.startswith("PWL"):
        args = _split_function_args(spec)
        if len(args) < 4 or len(args) % 2:
            raise CircuitError(f"malformed PWL specification {spec!r}")
        return PWLSource(times=args[0::2], values=args[1::2])
    if upper.startswith("SIN"):
        args = _split_function_args(spec)
        defaults = [0.0, 1.0, 1e9, 0.0]
        args = args + defaults[len(args):]
        return SineSource(offset=args[0], amplitude=args[1],
                          frequency=args[2], delay=args[3])
    # bare number: DC value
    return DCSource(parse_value(tokens[0]))


def _pop_ic(tokens: List[str]) -> Tuple[List[str], float]:
    """Remove an ``IC=value`` token; return remaining tokens and the IC."""
    ic = 0.0
    remaining = []
    for token in tokens:
        if token.upper().startswith("IC="):
            ic = parse_value(token[3:])
        else:
            remaining.append(token)
    return remaining, ic


def from_spice(text: str) -> ParsedDeck:
    """Parse a SPICE deck string.

    The first line is treated as the title (SPICE convention) when it
    does not look like an element card.
    """
    raw_lines = text.splitlines()
    title = ""
    if raw_lines and raw_lines[0].strip().startswith("*"):
        title = raw_lines[0].strip().lstrip("* ").strip()

    circuit = Circuit(title)
    controls: List[str] = []
    pending_couplings: List[Tuple[str, str, str, float]] = []

    for line in _logical_lines(text):
        if line.startswith("."):
            card = line[1:].strip()
            if card.lower() != "end":
                controls.append(card)
            continue
        tokens = line.split()
        name = tokens[0]
        letter = name[0].upper()
        if letter == "R":
            circuit.add_resistor(name, tokens[1], tokens[2],
                                 parse_value(tokens[3]))
        elif letter == "C":
            rest, ic = _pop_ic(tokens[3:])
            circuit.add_capacitor(name, tokens[1], tokens[2],
                                  parse_value(rest[0]), initial_voltage=ic)
        elif letter == "L":
            rest, ic = _pop_ic(tokens[3:])
            circuit.add_inductor(name, tokens[1], tokens[2],
                                 parse_value(rest[0]), initial_current=ic)
        elif letter == "V":
            circuit.add_voltage_source(name, tokens[1], tokens[2],
                                       _parse_source(tokens[3:]))
        elif letter == "I":
            circuit.add_current_source(name, tokens[1], tokens[2],
                                       _parse_source(tokens[3:]))
        elif letter == "E":
            circuit.add_vcvs(name, tokens[1], tokens[2], tokens[3],
                             tokens[4], parse_value(tokens[5]))
        elif letter == "K":
            pending_couplings.append(
                (name, tokens[1], tokens[2], parse_value(tokens[3]))
            )
        else:
            raise CircuitError(f"unsupported SPICE card {line!r}")

    for name, ind1, ind2, k in pending_couplings:
        circuit.add_mutual(name, ind1, ind2, coupling=k)

    return ParsedDeck(circuit=circuit, title=title, controls=controls)
