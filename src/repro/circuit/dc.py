"""DC operating point."""

from __future__ import annotations

from typing import Dict, Union

from repro.circuit.backend import (
    factorize,
    gmin_loaded,
    resolve_method,
    system_matrices,
)
from repro.circuit.netlist import AssembledCircuit, Circuit
from repro.errors import SolverError
from repro.telemetry.registry import SINGULAR_SYSTEM, get_registry
from repro.telemetry.spans import span

#: Tiny conductance added from every node to ground so capacitor-isolated
#: nodes have a defined DC voltage (SPICE's gmin).
GMIN = 1e-12


def operating_point(
    circuit: Union[Circuit, AssembledCircuit],
    time: float = 0.0,
    gmin: float = GMIN,
    solver: str = "auto",
) -> Dict[str, float]:
    """Solve the DC operating point with sources evaluated at *time*.

    Inductors are shorts (their branch equations enforce V = 0 at DC) and
    capacitors are opens.  Returns node voltages keyed by node name,
    including ground.  *solver* picks the factorization backend
    (``"auto"`` / ``"dense"`` / ``"sparse"``).
    """
    assembled = circuit.assemble() if isinstance(circuit, Circuit) else circuit
    method = resolve_method(
        assembled.size, nnz=assembled.stamps.nnz, solver=solver
    )
    with span("circuit.dc", size=assembled.size, time=time, solver=method):
        g, _ = system_matrices(assembled.stamps, method)
        loaded = gmin_loaded(g, assembled.num_nodes, gmin)
        b = assembled.stamps.source_vector(time)
        try:
            x = factorize(loaded).solve(b)
        except SolverError as exc:
            get_registry().inc(SINGULAR_SYSTEM)
            raise SolverError(f"singular DC system: {exc}") from exc
    voltages = {"0": 0.0}
    for node, idx in assembled.node_index.items():
        if idx >= 0:
            voltages[node] = float(x[idx])
    return voltages
