"""Cross-cutting property-based tests (hypothesis).

These check the physical and mathematical invariants the whole library
rests on, over randomized geometry and circuits: energy positivity of
inductance matrices, exactness of the Foundation reductions, network
reciprocity, interpolation consistency, and lossless netlist round
trips.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.constants import um
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.trace import TraceBlock
from repro.peec.hoer_love import bar_mutual_inductance, bar_self_inductance
from repro.peec.network import FilamentNetwork
from repro.peec.solver import Conductor, PartialInductanceSolver

# geometry strategies: micron-scale on-chip dimensions
widths = st.floats(0.5, 20.0)
spacings = st.floats(0.5, 30.0)
lengths = st.floats(50.0, 3000.0)
thicknesses = st.floats(0.3, 4.0)

FAST = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestInductanceEnergyInvariants:
    @given(w1=widths, w2=widths, s=spacings, l=lengths, t=thicknesses)
    @FAST
    def test_two_bar_matrix_positive_definite(self, w1, w2, s, l, t):
        b1 = RectBar(Point3D(0, 0, 0), um(l), um(w1), um(t))
        b2 = RectBar(Point3D(0, um(w1 + s), 0), um(l), um(w2), um(t))
        l11 = bar_self_inductance(b1)
        l22 = bar_self_inductance(b2)
        m = bar_mutual_inductance(b1, b2)
        matrix = np.array([[l11, m], [m, l22]])
        assert np.all(np.linalg.eigvalsh(matrix) > 0)

    @given(w=widths, s=spacings, l=lengths)
    @FAST
    def test_mutual_bounded_by_geometric_mean(self, w, s, l):
        b1 = RectBar(Point3D(0, 0, 0), um(l), um(w), um(1))
        b2 = RectBar(Point3D(0, um(w + s), 0), um(l), um(w), um(1))
        m = bar_mutual_inductance(b1, b2)
        self_l = bar_self_inductance(b1)
        assert 0 < m < self_l

    @given(w=widths, l=lengths, scale=st.floats(1.1, 4.0))
    @FAST
    def test_self_inductance_superlinear_in_length(self, w, l, scale):
        short = bar_self_inductance(
            RectBar(Point3D(0, 0, 0), um(l), um(w), um(1))
        )
        long = bar_self_inductance(
            RectBar(Point3D(0, 0, 0), um(l * scale), um(w), um(1))
        )
        assert long > scale * short


class TestFoundationReductionProperty:
    @given(
        w=st.floats(1.0, 6.0),
        s=st.floats(1.0, 10.0),
        l=st.floats(100.0, 1000.0),
        n=st.integers(3, 5),
    )
    @FAST
    def test_pairwise_reduction_exact_at_uniform_current(self, w, s, l, n):
        """The paper's Foundations as a property: any pair extracted from
        an n-trace block equals the 2-trace subproblem, exactly."""
        block = TraceBlock.from_widths_and_spacings(
            widths=[um(w)] * n, spacings=[um(s)] * (n - 1),
            length=um(l), thickness=um(1), ground_flags=[False] * n,
        )
        solver_full = PartialInductanceSolver([
            Conductor.from_bar(t.name, t.to_bar()) for t in block.traces
        ])
        lp_full = solver_full.conductor_lp_matrix()
        sub = block.subblock([0, n - 1])
        solver_pair = PartialInductanceSolver([
            Conductor.from_bar(t.name, t.to_bar()) for t in sub.traces
        ])
        lp_pair = solver_pair.conductor_lp_matrix()
        assert lp_full[0, n - 1] == pytest.approx(lp_pair[0, 1], rel=1e-9)
        assert lp_full[0, 0] == pytest.approx(lp_pair[0, 0], rel=1e-9)


class TestNetworkReciprocity:
    @given(
        s1=st.floats(2.0, 20.0),
        s2=st.floats(2.0, 20.0),
        l=st.floats(100.0, 1000.0),
        f=st.floats(1e8, 1e10),
    )
    @FAST
    def test_transfer_impedance_symmetric(self, s1, s2, l, f):
        """Z(i, j) == Z(j, i) for any passive reciprocal network."""
        net = FilamentNetwork(ground="gnd")
        net.add_conductor(
            "a", RectBar(Point3D(0, 0, 0), um(l), um(2), um(1)),
            "pa", "far",
        )
        net.add_conductor(
            "b", RectBar(Point3D(0, um(s1), 0), um(l), um(2), um(1)),
            "pb", "far",
        )
        net.add_conductor(
            "ret", RectBar(Point3D(0, um(s1 + s2), 0), um(l), um(2), um(1)),
            "gnd", "far",
        )
        za_b = net.solve(f, {"pa": 1.0}).node_voltages["pb"]
        zb_a = net.solve(f, {"pb": 1.0}).node_voltages["pa"]
        # reciprocity is exact in the model; the tolerance only absorbs
        # the conditioning of the dense complex solve, which hypothesis
        # occasionally pushes past 1e-9 (a real asymmetry would be O(1))
        assert za_b == pytest.approx(zb_a, rel=1e-6)

    @given(f=st.floats(1e7, 2e10))
    @FAST
    def test_loop_impedance_passive(self, f):
        net = FilamentNetwork(ground="gnd")
        net.add_conductor(
            "sig", RectBar(Point3D(0, 0, 0), um(500), um(3), um(1)),
            "in", "far",
        )
        net.add_conductor(
            "ret", RectBar(Point3D(0, um(10), 0), um(500), um(3), um(1)),
            "gnd", "far",
        )
        z = net.input_impedance("in", "gnd", f)
        assert z.real > 0          # dissipative
        assert z.imag > 0          # inductive


class TestSplineConsistency:
    @given(
        values=st.lists(st.floats(-5, 5), min_size=3, max_size=7),
        q=st.floats(0.0, 1.0),
    )
    @FAST
    def test_tensor_spline_matches_1d_spline(self, values, q):
        from repro.tables.grid import TensorSplineInterpolator
        from repro.tables.spline import CubicSpline1D

        x = np.linspace(0, 1, len(values))
        direct = CubicSpline1D(x, values)(q)
        tensor = TensorSplineInterpolator([x], values,
                                          warn_on_extrapolation=False)(q)
        assert tensor == pytest.approx(direct, abs=1e-12)

    @given(
        rows=st.integers(3, 5), cols=st.integers(3, 5),
        qx=st.floats(0.05, 0.95), qy=st.floats(0.05, 0.95),
    )
    @FAST
    def test_bicubic_vs_tensor_2d(self, rows, cols, qx, qy):
        from repro.tables.grid import TensorSplineInterpolator
        from repro.tables.spline import BicubicSpline

        rng = np.random.default_rng(rows * 10 + cols)
        x1 = np.linspace(0, 1, rows)
        x2 = np.linspace(0, 1, cols)
        values = rng.normal(size=(rows, cols))
        bicubic = BicubicSpline(x1, x2, values)(qx, qy)
        tensor = TensorSplineInterpolator([x1, x2], values,
                                          warn_on_extrapolation=False)(qx, qy)
        assert tensor == pytest.approx(bicubic, abs=1e-10)


class TestSpiceRoundTripProperty:
    @given(
        r=st.floats(1.0, 1e5),
        c=st.floats(1e-15, 1e-9),
        l=st.floats(1e-12, 1e-7),
        k=st.floats(0.05, 0.95),
    )
    @FAST
    def test_values_survive_round_trip(self, r, c, l, k):
        from repro.circuit.netlist import Circuit
        from repro.circuit.spice_export import to_spice
        from repro.circuit.spice_import import from_spice

        original = Circuit()
        original.add_voltage_source("V1", "a", "0", 1.0)
        original.add_resistor("R1", "a", "b", r)
        original.add_inductor("L1", "b", "c", l)
        original.add_inductor("L2", "d", "0", l * 2)
        original.add_resistor("R2", "d", "0", 50.0)
        original.add_capacitor("C1", "c", "0", c)
        original.add_mutual("K1", "L1", "L2", coupling=k)

        rebuilt = from_spice(to_spice(original)).circuit
        assert rebuilt.element("R1").resistance == pytest.approx(r, rel=1e-5)
        assert rebuilt.element("L1").inductance == pytest.approx(l, rel=1e-5)
        assert rebuilt.element("C1").capacitance == pytest.approx(c, rel=1e-5)
        assert rebuilt.mutuals[0].mutual == pytest.approx(
            original.mutuals[0].mutual, rel=1e-4
        )


class TestCapacitanceMatrixProperties:
    @given(
        w=st.floats(0.5, 5.0),
        s=st.floats(0.5, 5.0),
        h=st.floats(0.5, 4.0),
        n=st.integers(2, 5),
    )
    @FAST
    def test_maxwell_form_for_random_blocks(self, w, s, h, n):
        from repro.rc.capacitance import CapacitanceModel, block_capacitance_matrix

        block = TraceBlock.from_widths_and_spacings(
            widths=[um(w)] * n, spacings=[um(s)] * (n - 1),
            length=um(500), thickness=um(1), ground_flags=[False] * n,
        )
        matrix = block_capacitance_matrix(block, CapacitanceModel(um(h)))
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) > 0)
        off = matrix - np.diag(np.diag(matrix))
        assert np.all(off <= 0)
        # diagonally dominant => positive semidefinite
        for i in range(n):
            assert matrix[i, i] + (off[i].sum()) >= -1e-25


class TestTransientStability:
    @given(
        r=st.floats(1.0, 100.0),
        l=st.floats(0.1, 5.0),
        c=st.floats(0.1, 5.0),
    )
    @FAST
    def test_passive_rlc_settles_to_source(self, r, l, c):
        from repro.circuit.netlist import Circuit
        from repro.circuit.sources import PulseSource
        from repro.circuit.transient import transient_analysis

        circuit = Circuit()
        circuit.add_voltage_source(
            "V1", "in", "0", PulseSource(0, 1.0, rise=1e-12, width=1.0)
        )
        circuit.add_resistor("R1", "in", "m", r)
        circuit.add_inductor("L1", "m", "out", l * 1e-9)
        circuit.add_capacitor("C1", "out", "0", c * 1e-12)
        tau = max(r * c * 1e-12, np.sqrt(l * 1e-9 * c * 1e-12))
        ring_decay = 2.0 * l * 1e-9 / r   # underdamped envelope constant
        t_stop = max(200 * tau, 15 * ring_decay, 2e-9)
        result = transient_analysis(circuit, t_stop=t_stop, dt=t_stop / 4000)
        wave = result.voltage("out")
        assert abs(wave.final_value - 1.0) < 0.05
        assert np.max(np.abs(wave.values)) < 2.5   # bounded (passive)
