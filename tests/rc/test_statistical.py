"""Statistical worst-case RC generation (ref [4])."""

import numpy as np
import pytest

from repro.constants import um
from repro.errors import GeometryError
from repro.geometry.trace import TraceBlock
from repro.rc.capacitance import CapacitanceModel
from repro.rc.statistical import (
    GeometrySample,
    ProcessVariation,
    monte_carlo_rc,
    perturb_block,
    perturbed_capacitance_model,
    sample_factors,
    worst_case_corners,
)


def cpw():
    return TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(2),
        length=um(1000), thickness=um(2),
    )


def model():
    return CapacitanceModel(height_below=um(2))


class TestProcessVariation:
    def test_defaults_valid(self):
        ProcessVariation()

    def test_rejects_unphysical_sigma(self):
        with pytest.raises(GeometryError):
            ProcessVariation(sigma_width=-0.1)
        with pytest.raises(GeometryError):
            ProcessVariation(sigma_ild=0.5)


class TestSampling:
    def test_zero_sigma_gives_nominal(self):
        rng = np.random.default_rng(0)
        variation = ProcessVariation(0.0, 0.0, 0.0, 0.0)
        sample = sample_factors(variation, rng)
        assert sample == GeometrySample()

    def test_samples_clipped(self):
        rng = np.random.default_rng(0)
        variation = ProcessVariation(sigma_width=0.05)
        factors = [
            sample_factors(variation, rng, sigma_clip=3.0).width_factor
            for _ in range(500)
        ]
        assert all(0.85 - 1e-12 <= f <= 1.15 + 1e-12 for f in factors)

    def test_mean_near_nominal(self):
        rng = np.random.default_rng(1)
        variation = ProcessVariation(sigma_width=0.05)
        factors = [sample_factors(variation, rng).width_factor for _ in range(800)]
        assert np.mean(factors) == pytest.approx(1.0, abs=0.01)


class TestPerturbation:
    def test_pitch_preserved(self):
        block = cpw()
        sample = GeometrySample(width_factor=1.1)
        perturbed = perturb_block(block, sample)
        for orig_a, orig_b, new_a, new_b in zip(
            block.traces, block.traces[1:], perturbed.traces, perturbed.traces[1:]
        ):
            orig_pitch = orig_b.y_center - orig_a.y_center
            new_pitch = new_b.y_center - new_a.y_center
            assert new_pitch == pytest.approx(orig_pitch)

    def test_widths_scaled(self):
        perturbed = perturb_block(cpw(), GeometrySample(width_factor=1.1))
        assert perturbed.traces[1].width == pytest.approx(um(10) * 1.1)

    def test_spacing_shrinks_as_width_grows(self):
        block = cpw()
        perturbed = perturb_block(block, GeometrySample(width_factor=1.1))
        assert perturbed.spacing(0) < block.spacing(0)

    def test_model_ild_scaled(self):
        scaled = perturbed_capacitance_model(model(), GeometrySample(ild_factor=1.2))
        assert scaled.height_below == pytest.approx(um(2) * 1.2)


class TestMonteCarlo:
    def test_population_sizes(self):
        stats = monte_carlo_rc(cpw(), model(), ProcessVariation(), n_samples=50)
        assert stats.resistances.shape == (50,)
        assert stats.ground_capacitances.shape == (50,)
        assert len(stats.samples) == 50

    def test_deterministic_given_seed(self):
        a = monte_carlo_rc(cpw(), model(), ProcessVariation(), 20, seed=3)
        b = monte_carlo_rc(cpw(), model(), ProcessVariation(), 20, seed=3)
        assert np.allclose(a.resistances, b.resistances)

    def test_zero_variation_zero_spread(self):
        stats = monte_carlo_rc(
            cpw(), model(), ProcessVariation(0, 0, 0, 0), n_samples=10
        )
        assert stats.resistance_std == pytest.approx(0.0)
        assert stats.capacitance_std == pytest.approx(0.0)

    def test_resistance_spread_tracks_sigmas(self):
        tight = monte_carlo_rc(
            cpw(), model(),
            ProcessVariation(0.01, 0.01, 0.01, 0.01), 100, seed=5,
        )
        loose = monte_carlo_rc(
            cpw(), model(),
            ProcessVariation(0.05, 0.05, 0.05, 0.05), 100, seed=5,
        )
        assert loose.resistance_std > 2 * tight.resistance_std

    def test_invalid_sample_count(self):
        with pytest.raises(GeometryError):
            monte_carlo_rc(cpw(), model(), ProcessVariation(), n_samples=0)


class TestCorners:
    def test_corners_bracket_nominal(self):
        from repro.rc.capacitance import block_capacitance_matrix
        from repro.rc.resistance import dc_resistance

        block = cpw()
        corners = worst_case_corners(block, model(), ProcessVariation())
        signal = block.traces[1]
        r_nom = dc_resistance(signal.length, signal.width, signal.thickness)
        c_nom = block_capacitance_matrix(block, model())[1, 1]
        assert corners.r_min < r_nom < corners.r_max
        assert corners.c_min < c_nom < corners.c_max

    def test_rc_spread_positive(self):
        corners = worst_case_corners(cpw(), model(), ProcessVariation())
        assert corners.rc_spread > 0

    def test_larger_k_sigma_wider_corners(self):
        narrow = worst_case_corners(cpw(), model(), ProcessVariation(), k_sigma=1)
        wide = worst_case_corners(cpw(), model(), ProcessVariation(), k_sigma=3)
        assert wide.r_max > narrow.r_max
        assert wide.r_min < narrow.r_min
