"""2-D finite-difference capacitance solver against analytic references."""

import numpy as np
import pytest

from repro.constants import EPS_0, EPS_R_SIO2, um
from repro.errors import GeometryError, SolverError
from repro.geometry.trace import TraceBlock
from repro.rc.capacitance import ground_capacitance
from repro.rc.fieldsolver2d import ConductorRect, CrossSection2D, FieldSolver2D


def single_line_cs(width=um(1), thickness=um(1), gap=um(1)):
    block = TraceBlock.from_widths_and_spacings(
        widths=[width], spacings=[], length=1.0, thickness=thickness,
        ground_flags=[False],
    )
    return CrossSection2D.from_block(block, plane_gap=gap)


def three_line_cs(width=um(1), spacing=um(1), gap=um(1)):
    block = TraceBlock.from_widths_and_spacings(
        widths=[width] * 3, spacings=[spacing] * 2, length=1.0,
        thickness=um(1), ground_flags=[False] * 3,
    )
    return CrossSection2D.from_block(block, plane_gap=gap)


class TestGeometryValidation:
    def test_conductor_must_fit_window(self):
        with pytest.raises(GeometryError):
            CrossSection2D(
                width=um(10), height=um(10),
                conductors=[ConductorRect("c", -um(1), um(1), um(1), um(2))],
            )

    def test_degenerate_conductor_rejected(self):
        with pytest.raises(GeometryError):
            ConductorRect("c", um(1), um(1), um(1), um(2))

    def test_duplicate_names_rejected(self):
        with pytest.raises(GeometryError):
            CrossSection2D(
                width=um(10), height=um(10),
                conductors=[
                    ConductorRect("c", um(1), um(2), um(1), um(2)),
                    ConductorRect("c", um(4), um(5), um(1), um(2)),
                ],
            )

    def test_tiny_conductor_still_resolved(self):
        # the boundary-fitted grid guarantees every conductor lands on
        # grid lines, even when far smaller than the target spacing
        cs = single_line_cs(width=um(0.1))
        solver = FieldSolver2D(cs, nx=16, nz=16)
        assert solver.capacitance_matrix()[0, 0] > 0

    def test_minimum_grid_size(self):
        with pytest.raises(SolverError):
            FieldSolver2D(single_line_cs(), nx=4, nz=4)

    def test_needs_conductors(self):
        with pytest.raises(GeometryError):
            FieldSolver2D(CrossSection2D(width=um(10), height=um(10)), 32, 32)


class TestSingleLine:
    def test_matches_sakurai_fit(self):
        # The Sakurai-Tamaru fit itself is only good to ~6 %.
        solver = FieldSolver2D(single_line_cs(), nx=160, nz=120)
        c_fd = solver.capacitance_matrix()[0, 0]
        c_analytic = ground_capacitance(um(1), um(1), um(1), 1.0)
        assert c_fd == pytest.approx(c_analytic, rel=0.08)

    def test_grid_refinement_converges(self):
        cs = single_line_cs()
        coarse = FieldSolver2D(cs, nx=60, nz=45).capacitance_matrix()[0, 0]
        fine = FieldSolver2D(cs, nx=180, nz=135).capacitance_matrix()[0, 0]
        assert abs(fine - coarse) / fine < 0.05

    def test_closer_plane_more_capacitance(self):
        near = FieldSolver2D(single_line_cs(gap=um(0.5)), 120, 90)
        far = FieldSolver2D(single_line_cs(gap=um(2.0)), 120, 90)
        assert near.capacitance_matrix()[0, 0] > far.capacitance_matrix()[0, 0]


class TestThreeLines:
    @pytest.fixture(scope="class")
    def matrix(self):
        solver = FieldSolver2D(three_line_cs(), nx=160, nz=100)
        return solver.capacitance_matrix()

    def test_maxwell_form(self, matrix):
        assert np.allclose(matrix, matrix.T, rtol=1e-8)
        assert np.all(np.diag(matrix) > 0)
        off = matrix - np.diag(np.diag(matrix))
        assert np.all(off <= 1e-15)

    def test_mirror_symmetry(self, matrix):
        assert matrix[0, 0] == pytest.approx(matrix[2, 2], rel=1e-3)
        assert matrix[0, 1] == pytest.approx(matrix[1, 2], rel=1e-3)

    def test_adjacent_coupling_dominates_distant(self, matrix):
        assert abs(matrix[0, 1]) > 5 * abs(matrix[0, 2])

    def test_middle_line_shielded_from_plane(self, matrix):
        # the middle line gives more of its charge to neighbours
        c_self_to_ground_mid = matrix[1, 1] + matrix[1, 0] + matrix[1, 2]
        c_self_to_ground_outer = matrix[0, 0] + matrix[0, 1] + matrix[0, 2]
        assert c_self_to_ground_mid < c_self_to_ground_outer

    def test_diagonally_dominant(self, matrix):
        for i in range(3):
            assert matrix[i, i] >= -np.sum(matrix[i]) + matrix[i, i] - 1e-18
