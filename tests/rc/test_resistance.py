"""Analytic resistance with skin-effect correction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import RHO_CU, um
from repro.errors import GeometryError
from repro.geometry.trace import Trace
from repro.peec.analytic import skin_depth
from repro.rc.resistance import (
    ac_resistance,
    dc_resistance,
    effective_conduction_area,
    trace_resistance,
)


class TestDCResistance:
    def test_fig1_signal_value(self):
        # 6000 um x 10 um x 2 um copper: rho l / A ~ 5.16 ohm
        r = dc_resistance(um(6000), um(10), um(2))
        assert r == pytest.approx(5.16, rel=0.01)

    def test_scales_linearly_with_length(self):
        assert dc_resistance(um(2000), um(5), um(1)) == pytest.approx(
            2.0 * dc_resistance(um(1000), um(5), um(1))
        )

    def test_scales_inversely_with_area(self):
        assert dc_resistance(um(1000), um(10), um(2)) == pytest.approx(
            0.25 * dc_resistance(um(1000), um(5), um(1))
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            dc_resistance(0.0, um(1), um(1))
        with pytest.raises(GeometryError):
            dc_resistance(um(1), um(1), um(1), resistivity=-1.0)


class TestEffectiveArea:
    def test_full_area_when_thin(self):
        # skin depth bigger than half the thickness: everything conducts
        area = effective_conduction_area(um(10), um(1), um(2))
        assert area == pytest.approx(um(10) * um(1))

    def test_shell_when_thick(self):
        w, t, delta = um(10), um(10), um(1)
        area = effective_conduction_area(w, t, delta)
        expected = w * t - (w - 2 * delta) * (t - 2 * delta)
        assert area == pytest.approx(expected)
        assert area < w * t

    def test_rejects_bad_delta(self):
        with pytest.raises(GeometryError):
            effective_conduction_area(um(1), um(1), 0.0)

    @given(st.floats(0.1, 20), st.floats(0.1, 20), st.floats(0.05, 5))
    @settings(max_examples=40)
    def test_never_exceeds_geometric_area(self, w, t, d):
        area = effective_conduction_area(um(w), um(t), um(d))
        assert 0 < area <= um(w) * um(t) * (1 + 1e-12)


class TestACResistance:
    def test_reduces_to_dc_at_zero_frequency(self):
        assert ac_resistance(um(1000), um(5), um(2), 0.0) == pytest.approx(
            dc_resistance(um(1000), um(5), um(2))
        )

    def test_low_frequency_equals_dc(self):
        # 10 MHz: skin depth ~ 21 um >> conductor
        assert ac_resistance(um(1000), um(5), um(2), 1e7) == pytest.approx(
            dc_resistance(um(1000), um(5), um(2)), rel=1e-12
        )

    def test_monotone_in_frequency(self):
        values = [
            ac_resistance(um(2000), um(10), um(2), f)
            for f in (1e8, 1e9, 1e10, 1e11)
        ]
        assert all(a <= b + 1e-15 for a, b in zip(values, values[1:]))

    def test_high_frequency_limit_scales_with_skin_depth(self):
        # very high f: R ~ rho l / (perimeter * delta) approximately
        f = 1e12
        delta = skin_depth(RHO_CU, f)
        r = ac_resistance(um(1000), um(10), um(2), f)
        approx = RHO_CU * um(1000) / (
            um(10) * um(2) - (um(10) - 2 * delta) * (um(2) - 2 * delta)
        )
        assert r == pytest.approx(approx)

    def test_rejects_negative_frequency(self):
        with pytest.raises(GeometryError):
            ac_resistance(um(1000), um(5), um(2), -1.0)


class TestTraceResistance:
    def test_matches_dc_formula(self):
        trace = Trace(width=um(5), length=um(1000), thickness=um(2))
        assert trace_resistance(trace) == pytest.approx(
            dc_resistance(um(1000), um(5), um(2))
        )

    def test_frequency_aware(self):
        trace = Trace(width=um(10), length=um(1000), thickness=um(2))
        assert trace_resistance(trace, frequency=20e9) > trace_resistance(trace)
