"""Closed-form capacitance models and the 3-trace decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import EPS_0, EPS_R_SIO2, um
from repro.errors import GeometryError
from repro.geometry.trace import TraceBlock
from repro.rc.capacitance import (
    CapacitanceModel,
    block_capacitance_matrix,
    coupling_capacitance,
    ground_capacitance,
    shielded_ground_capacitance,
    signal_capacitances,
)


def block(n=3, width=um(2), spacing=um(2), grounds=False):
    return TraceBlock.from_widths_and_spacings(
        widths=[width] * n, spacings=[spacing] * (n - 1),
        length=um(1000), thickness=um(1),
        ground_flags=None if grounds else [False] * n,
    )


class TestGroundCapacitance:
    def test_exceeds_parallel_plate(self):
        c = ground_capacitance(um(10), um(1), um(1), 1.0)
        plate = EPS_0 * EPS_R_SIO2 * um(10) / um(1) * 1.0
        assert c > plate

    def test_wide_line_approaches_parallel_plate(self):
        w = um(100)
        c = ground_capacitance(w, um(1), um(1), 1.0)
        plate = EPS_0 * EPS_R_SIO2 * w / um(1) * 1.0
        assert c == pytest.approx(plate, rel=0.1)

    def test_scales_linearly_with_length(self):
        c1 = ground_capacitance(um(5), um(1), um(2), um(1000))
        c2 = ground_capacitance(um(5), um(1), um(2), um(2000))
        assert c2 == pytest.approx(2 * c1)

    def test_higher_dielectric_more_cap(self):
        base = ground_capacitance(um(5), um(1), um(2), 1.0, eps_r=3.9)
        high = ground_capacitance(um(5), um(1), um(2), 1.0, eps_r=7.8)
        assert high == pytest.approx(2 * base)

    def test_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            ground_capacitance(0.0, um(1), um(1), 1.0)

    @given(st.floats(0.5, 20), st.floats(0.3, 3), st.floats(0.5, 5))
    @settings(max_examples=40)
    def test_monotone_in_width(self, w, t, h):
        narrow = ground_capacitance(um(w), um(t), um(h), 1.0)
        wide = ground_capacitance(um(w * 1.5), um(t), um(h), 1.0)
        assert wide > narrow


class TestCouplingCapacitance:
    def test_decays_with_spacing(self):
        values = [
            coupling_capacitance(um(2), um(1), um(1), um(s), 1.0)
            for s in (0.5, 1.0, 2.0, 4.0)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_grows_with_thickness(self):
        thin = coupling_capacitance(um(2), um(0.5), um(1), um(1), 1.0)
        thick = coupling_capacitance(um(2), um(2), um(1), um(1), 1.0)
        assert thick > thin

    def test_never_negative(self):
        c = coupling_capacitance(um(0.5), um(0.3), um(5), um(10), 1.0)
        assert c >= 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            coupling_capacitance(um(1), um(1), um(1), 0.0, 1.0)


class TestShieldedGround:
    def test_neighbours_steal_fringe(self):
        isolated = ground_capacitance(um(2), um(1), um(1), 1.0)
        shielded = shielded_ground_capacitance(um(2), um(1), um(1), um(0.5), 1.0)
        assert shielded < isolated

    def test_far_neighbours_no_effect(self):
        isolated = ground_capacitance(um(2), um(1), um(1), 1.0)
        shielded = shielded_ground_capacitance(um(2), um(1), um(1), um(50), 1.0)
        assert shielded == pytest.approx(isolated, rel=1e-6)


class TestBlockMatrix:
    def test_maxwell_structure(self):
        m = block_capacitance_matrix(block(3), CapacitanceModel(um(1)))
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) > 0)
        off = m - np.diag(np.diag(m))
        assert np.all(off <= 0)

    def test_diagonally_dominant(self):
        m = block_capacitance_matrix(block(4), CapacitanceModel(um(1)))
        for i in range(4):
            assert m[i, i] >= -np.sum(m[i]) + m[i, i] - 1e-20

    def test_short_range_coupling_only(self):
        m = block_capacitance_matrix(
            block(4), CapacitanceModel(um(1), neighbour_range=1)
        )
        assert m[0, 2] == 0.0
        assert m[0, 3] == 0.0
        assert m[0, 1] < 0.0

    def test_neighbour_range_two(self):
        m = block_capacitance_matrix(
            block(4), CapacitanceModel(um(1), neighbour_range=2)
        )
        assert m[0, 2] < 0.0
        assert m[0, 3] == 0.0

    def test_symmetric_block_symmetric_matrix(self):
        m = block_capacitance_matrix(block(3), CapacitanceModel(um(1)))
        assert m[0, 0] == pytest.approx(m[2, 2])

    def test_invalid_model(self):
        with pytest.raises(GeometryError):
            CapacitanceModel(height_below=0.0)
        with pytest.raises(GeometryError):
            CapacitanceModel(height_below=um(1), neighbour_range=0)


class TestSignalCapacitances:
    def test_cpw_all_capacitance_grounded(self):
        cpw = TraceBlock.coplanar_waveguide(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            length=um(1000), thickness=um(2),
        )
        c_ground, couplings = signal_capacitances(cpw, CapacitanceModel(um(2)))
        assert c_ground > 0
        assert couplings == {}   # both neighbours are AC grounds

    def test_signal_neighbours_reported(self):
        b = block(3)
        c_ground, couplings = signal_capacitances(
            b, CapacitanceModel(um(1)), signal_index=1
        )
        assert set(couplings) == {0, 2}
        assert all(v > 0 for v in couplings.values())

    def test_ambiguous_signal_rejected(self):
        with pytest.raises(GeometryError):
            signal_capacitances(block(3), CapacitanceModel(um(1)))
