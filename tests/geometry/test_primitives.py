"""Point3D and RectBar geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.primitives import Point3D, RectBar

UM = 1e-6


def make_bar(axis="x", origin=(0.0, 0.0, 0.0), length=1e-3, width=UM, thickness=2 * UM):
    return RectBar(Point3D(*origin), length, width, thickness, axis)


class TestPoint3D:
    def test_translated(self):
        p = Point3D(1.0, 2.0, 3.0).translated(dy=0.5)
        assert (p.x, p.y, p.z) == (1.0, 2.5, 3.0)

    def test_translation_returns_new_point(self):
        p = Point3D(0, 0, 0)
        q = p.translated(dx=1)
        assert p.x == 0 and q.x == 1

    def test_distance(self):
        assert Point3D(0, 0, 0).distance_to(Point3D(3, 4, 0)) == pytest.approx(5.0)

    @given(
        st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1),
    )
    def test_distance_symmetric(self, x, y, z):
        a = Point3D(x, y, z)
        b = Point3D(0.5, -0.25, 0.125)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestRectBar:
    def test_rejects_bad_axis(self):
        with pytest.raises(GeometryError):
            make_bar(axis="w")

    @pytest.mark.parametrize("field", ["length", "width", "thickness"])
    def test_rejects_nonpositive_dims(self, field):
        kwargs = {"length": 1e-3, "width": UM, "thickness": UM, field: 0.0}
        with pytest.raises(GeometryError):
            RectBar(Point3D(0, 0, 0), **kwargs)

    def test_rejects_nan_length(self):
        with pytest.raises(GeometryError):
            make_bar(length=float("nan"))

    def test_cross_section_area(self):
        bar = make_bar(width=3 * UM, thickness=2 * UM)
        assert bar.cross_section_area == pytest.approx(6 * UM * UM)

    def test_volume(self):
        bar = make_bar(length=10 * UM, width=2 * UM, thickness=1 * UM)
        assert bar.volume == pytest.approx(20 * UM ** 3)

    def test_far_corner_x_axis(self):
        bar = make_bar(length=5 * UM, width=3 * UM, thickness=2 * UM)
        corner = bar.far_corner
        assert (corner.x, corner.y, corner.z) == pytest.approx(
            (5 * UM, 3 * UM, 2 * UM)
        )

    def test_far_corner_y_axis(self):
        bar = make_bar(axis="y", length=5 * UM, width=3 * UM, thickness=2 * UM)
        corner = bar.far_corner
        assert (corner.x, corner.y, corner.z) == pytest.approx(
            (3 * UM, 5 * UM, 2 * UM)
        )

    def test_far_corner_z_axis(self):
        bar = make_bar(axis="z", length=5 * UM, width=3 * UM, thickness=2 * UM)
        corner = bar.far_corner
        assert (corner.x, corner.y, corner.z) == pytest.approx(
            (3 * UM, 2 * UM, 5 * UM)
        )

    def test_center_is_average_of_corners(self):
        bar = make_bar(axis="y")
        center = bar.center
        lo, hi = bar.origin, bar.far_corner
        assert center.x == pytest.approx((lo.x + hi.x) / 2)
        assert center.y == pytest.approx((lo.y + hi.y) / 2)
        assert center.z == pytest.approx((lo.z + hi.z) / 2)

    def test_start_end_separated_by_length(self):
        bar = make_bar(axis="y", length=7 * UM)
        assert bar.start.distance_to(bar.end) == pytest.approx(7 * UM)

    def test_end_start_along_axis_only(self):
        bar = make_bar(axis="z", length=4 * UM)
        assert bar.end.x == pytest.approx(bar.start.x)
        assert bar.end.y == pytest.approx(bar.start.y)
        assert bar.end.z - bar.start.z == pytest.approx(4 * UM)

    def test_parallel_and_orthogonal(self):
        a = make_bar(axis="x")
        b = make_bar(axis="x", origin=(0, 5 * UM, 0))
        c = make_bar(axis="y", origin=(0, 0, 5 * UM))
        assert a.is_parallel_to(b)
        assert not a.is_parallel_to(c)
        assert a.is_orthogonal_to(c)
        assert not a.is_orthogonal_to(b)

    def test_overlap_detection(self):
        a = make_bar()
        b = make_bar(origin=(0.5e-3, 0, 0))   # overlaps second half
        c = make_bar(origin=(0, 5 * UM, 0))   # offset transversally
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_touching_bars_do_not_overlap(self):
        a = make_bar(width=UM)
        b = make_bar(origin=(0, UM, 0))  # shares the y = 1um face
        assert not a.overlaps(b)

    @given(st.floats(0.1, 10.0), st.floats(0.1, 10.0), st.floats(0.1, 10.0))
    def test_volume_positive(self, l, w, t):
        bar = make_bar(length=l * UM, width=w * UM, thickness=t * UM)
        assert bar.volume > 0
