"""Layer and Stackup behaviour."""

import pytest

from repro.constants import um
from repro.errors import StackupError
from repro.geometry.stackup import Layer, Stackup, default_stackup


def make_layer(name="M1", index=1, z=um(1), t=um(0.5), rho=1.7e-8):
    return Layer(name=name, index=index, z_bottom=z, thickness=t, resistivity=rho)


class TestLayer:
    def test_z_top_and_center(self):
        layer = make_layer(z=um(2), t=um(1))
        assert layer.z_top == pytest.approx(um(3))
        assert layer.z_center == pytest.approx(um(2.5))

    def test_sheet_resistance(self):
        layer = make_layer(t=um(1), rho=2e-8)
        assert layer.sheet_resistance() == pytest.approx(0.02)

    @pytest.mark.parametrize("kwargs", [
        {"t": 0.0},
        {"rho": -1.0},
        {"z": -um(1)},
    ])
    def test_invalid_layers_rejected(self, kwargs):
        with pytest.raises(StackupError):
            make_layer(**kwargs)


class TestStackup:
    def test_lookup_by_name_and_index(self):
        stack = default_stackup(4)
        assert stack.layer("M3") is stack.layer(3)

    def test_unknown_layer_raises(self):
        stack = default_stackup(2)
        with pytest.raises(StackupError):
            stack.layer("M9")
        with pytest.raises(StackupError):
            stack.layer(9)

    def test_duplicate_name_rejected(self):
        with pytest.raises(StackupError):
            Stackup(layers=[make_layer("M1", 1), make_layer("M1", 2, z=um(3))])

    def test_duplicate_index_rejected(self):
        with pytest.raises(StackupError):
            Stackup(layers=[make_layer("M1", 1), make_layer("M2", 1, z=um(3))])

    def test_add_enforces_uniqueness(self):
        stack = Stackup(layers=[make_layer("M1", 1)])
        stack.add(make_layer("M2", 2, z=um(3)))
        assert len(stack) == 2
        with pytest.raises(StackupError):
            stack.add(make_layer("M2", 5, z=um(9)))

    def test_iteration_sorted_by_index(self):
        stack = Stackup(layers=[make_layer("M2", 2, z=um(3)), make_layer("M1", 1)])
        assert [l.name for l in stack] == ["M1", "M2"]

    def test_eps_r_must_be_physical(self):
        with pytest.raises(StackupError):
            Stackup(layers=[make_layer()], eps_r=0.5)

    def test_vertical_separation_symmetric(self):
        stack = default_stackup(4)
        gap_a = stack.vertical_separation("M3", "M2")
        gap_b = stack.vertical_separation("M2", "M3")
        assert gap_a == pytest.approx(gap_b)
        assert gap_a > 0

    def test_plane_layers_two_away(self):
        stack = default_stackup(6)
        planes = stack.plane_layers_for("M4")
        assert sorted(l.name for l in planes) == ["M2", "M6"]

    def test_plane_layers_at_edges(self):
        stack = default_stackup(3)
        assert [l.name for l in stack.plane_layers_for("M1")] == ["M3"]
        assert [l.name for l in stack.plane_layers_for("M3")] == ["M1"]


class TestDefaultStackup:
    def test_layer_count(self):
        assert len(default_stackup(6)) == 6

    def test_needs_at_least_one_layer(self):
        with pytest.raises(StackupError):
            default_stackup(0)

    def test_layers_do_not_overlap_vertically(self):
        stack = default_stackup(6)
        ordered = list(stack)
        for below, above in zip(ordered, ordered[1:]):
            assert above.z_bottom >= below.z_top

    def test_upper_layers_thicker(self):
        stack = default_stackup(6)
        assert stack.layer("M6").thickness > stack.layer("M1").thickness
