"""Trace and TraceBlock behaviour (the paper's Fig. 4 structure)."""

import pytest
from hypothesis import given, strategies as st

from repro.constants import um
from repro.errors import GeometryError
from repro.geometry.trace import Trace, TraceBlock


def simple_block(n=3, width=um(2), spacing=um(1), length=um(100)):
    return TraceBlock.from_widths_and_spacings(
        widths=[width] * n,
        spacings=[spacing] * (n - 1),
        length=length,
        thickness=um(1),
    )


class TestTrace:
    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(GeometryError):
            Trace(width=0.0, length=um(10), thickness=um(1))

    def test_y_center(self):
        trace = Trace(width=um(4), length=um(10), thickness=um(1), y_offset=um(2))
        assert trace.y_center == pytest.approx(um(4))

    def test_to_bar_matches_geometry(self):
        trace = Trace(width=um(4), length=um(10), thickness=um(2),
                      y_offset=um(1), z_bottom=um(3), x_offset=um(5))
        bar = trace.to_bar()
        assert bar.axis == "x"
        assert bar.origin.x == pytest.approx(um(5))
        assert bar.origin.y == pytest.approx(um(1))
        assert bar.origin.z == pytest.approx(um(3))
        assert bar.length == pytest.approx(um(10))

    def test_spacing_between_traces(self):
        a = Trace(width=um(2), length=um(10), thickness=um(1), y_offset=0.0)
        b = Trace(width=um(2), length=um(10), thickness=um(1), y_offset=um(5))
        assert a.edge_to_edge_spacing(b) == pytest.approx(um(3))
        assert b.edge_to_edge_spacing(a) == pytest.approx(um(3))

    def test_overlapping_traces_rejected(self):
        a = Trace(width=um(2), length=um(10), thickness=um(1), y_offset=0.0)
        b = Trace(width=um(2), length=um(10), thickness=um(1), y_offset=um(1))
        with pytest.raises(GeometryError):
            a.edge_to_edge_spacing(b)


class TestTraceBlockConstruction:
    def test_layout_positions(self):
        block = simple_block(3, width=um(2), spacing=um(1))
        offsets = [t.y_offset for t in block.traces]
        assert offsets == pytest.approx([0.0, um(3), um(6)])

    def test_mismatched_spacings_rejected(self):
        with pytest.raises(GeometryError):
            TraceBlock.from_widths_and_spacings(
                widths=[um(1)] * 3, spacings=[um(1)], length=um(10),
                thickness=um(1),
            )

    def test_empty_widths_rejected(self):
        with pytest.raises(GeometryError):
            TraceBlock.from_widths_and_spacings(
                widths=[], spacings=[], length=um(10), thickness=um(1)
            )

    def test_default_ground_flags_outer_traces(self):
        block = simple_block(4)
        flags = [t.is_ground for t in block.traces]
        assert flags == [True, False, False, True]

    def test_two_trace_block_has_no_default_grounds(self):
        block = simple_block(2)
        assert all(not t.is_ground for t in block.traces)

    def test_unequal_lengths_rejected(self):
        a = Trace(width=um(1), length=um(10), thickness=um(1), y_offset=0, name="a")
        b = Trace(width=um(1), length=um(20), thickness=um(1), y_offset=um(2), name="b")
        with pytest.raises(GeometryError):
            TraceBlock(traces=[a, b])

    def test_overlapping_traces_rejected(self):
        a = Trace(width=um(2), length=um(10), thickness=um(1), y_offset=0, name="a")
        b = Trace(width=um(2), length=um(10), thickness=um(1), y_offset=um(1), name="b")
        with pytest.raises(GeometryError):
            TraceBlock(traces=[a, b])

    def test_traces_sorted_by_position(self):
        a = Trace(width=um(1), length=um(10), thickness=um(1), y_offset=um(5), name="right")
        b = Trace(width=um(1), length=um(10), thickness=um(1), y_offset=0.0, name="left")
        block = TraceBlock(traces=[a, b])
        assert [t.name for t in block.traces] == ["left", "right"]

    def test_nonpositive_spacing_rejected(self):
        with pytest.raises(GeometryError):
            TraceBlock.from_widths_and_spacings(
                widths=[um(1), um(1)], spacings=[0.0], length=um(10),
                thickness=um(1),
            )


class TestCoplanarWaveguide:
    def test_fig1_geometry(self):
        block = TraceBlock.coplanar_waveguide(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            length=um(6000), thickness=um(2),
        )
        assert len(block) == 3
        assert [t.name for t in block.traces] == ["GND_L", "SIG", "GND_R"]
        assert [t.is_ground for t in block.traces] == [True, False, True]
        assert block.total_width == pytest.approx(um(22))

    def test_signal_and_ground_accessors(self):
        block = TraceBlock.coplanar_waveguide(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            length=um(100), thickness=um(2),
        )
        assert [t.name for t in block.signal_traces] == ["SIG"]
        assert len(block.ground_traces) == 2


class TestBlockQueries:
    def test_spacing_and_pitch(self):
        block = simple_block(3, width=um(2), spacing=um(1))
        assert block.spacing(0) == pytest.approx(um(1))
        assert block.pitch(0) == pytest.approx(um(3))

    def test_length_property(self):
        block = simple_block(3, length=um(123))
        assert block.length == pytest.approx(um(123))

    def test_subblock_preserves_positions(self):
        block = simple_block(5)
        sub = block.subblock([0, 4])
        assert len(sub) == 2
        assert sub.traces[0].y_offset == pytest.approx(block.traces[0].y_offset)
        assert sub.traces[1].y_offset == pytest.approx(block.traces[4].y_offset)

    def test_subblock_empty_rejected(self):
        with pytest.raises(GeometryError):
            simple_block(3).subblock([])

    @given(st.integers(2, 8))
    def test_total_width_consistent(self, n):
        block = simple_block(n, width=um(2), spacing=um(1))
        expected = n * um(2) + (n - 1) * um(1)
        assert block.total_width == pytest.approx(expected)
