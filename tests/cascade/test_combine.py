"""Series/parallel combination and the Table-I comparison."""

import pytest

from repro.constants import GHz, um
from repro.cascade.combine import (
    cascading_comparison,
    combined_loop_rl,
    per_segment_loop_rl,
)
from repro.cascade.tree import InterconnectTree, SegmentSpec, figure6a_tree
from repro.errors import GeometryError


def y_tree():
    """Root splitting into two equal branches."""
    return InterconnectTree(
        segments=[
            SegmentSpec("trunk", um(200)),
            SegmentSpec("left", um(100), "trunk"),
            SegmentSpec("right", um(100), "trunk"),
        ],
        signal_width=um(1.2), ground_width=um(1.2),
        spacing=um(1.2), thickness=um(0.7),
    )


class TestCombination:
    def test_series_chain_sums(self):
        tree = InterconnectTree(
            segments=[SegmentSpec("a", um(100)), SegmentSpec("b", um(150), "a")],
            signal_width=um(1.2), ground_width=um(1.2),
            spacing=um(1.2), thickness=um(0.7),
        )
        per_segment = {"a": (1.0, 10.0), "b": (2.0, 20.0)}
        r, l = combined_loop_rl(tree, per_segment)
        assert r == pytest.approx(3.0)
        assert l == pytest.approx(30.0)

    def test_parallel_branches_combine(self):
        per_segment = {"trunk": (1.0, 10.0), "left": (2.0, 30.0),
                       "right": (2.0, 60.0)}
        r, l = combined_loop_rl(y_tree(), per_segment)
        assert r == pytest.approx(1.0 + 1.0)            # 2 || 2
        assert l == pytest.approx(10.0 + 20.0)          # 30 || 60

    def test_paper_formula_structure(self):
        # L_ab + (L_bc + L_ce) || (L_bd + L_df)
        tree = figure6a_tree()
        per_segment = {
            "ab": (0.0, 1.0), "bc": (0.0, 2.0), "ce": (0.0, 4.0),
            "bd": (0.0, 3.0), "df": (0.0, 3.0),
        }
        # replace zero resistances with ones to satisfy positivity
        per_segment = {k: (1.0, l) for k, (_, l) in per_segment.items()}
        _, l = combined_loop_rl(tree, per_segment)
        expected = 1.0 + 1.0 / (1.0 / (2 + 4) + 1.0 / (3 + 3))
        assert l == pytest.approx(expected)

    def test_missing_segment_value(self):
        with pytest.raises(GeometryError):
            combined_loop_rl(y_tree(), {"trunk": (1.0, 1.0)})


class TestPerSegmentExtraction:
    def test_all_segments_extracted(self):
        tree = y_tree()
        values = per_segment_loop_rl(tree, GHz(3))
        assert set(values) == {"trunk", "left", "right"}
        for r, l in values.values():
            assert r > 0 and l > 0

    def test_equal_segments_equal_values(self):
        values = per_segment_loop_rl(y_tree(), GHz(3))
        assert values["left"][1] == pytest.approx(values["right"][1], rel=1e-9)

    def test_longer_segment_more_inductance(self):
        values = per_segment_loop_rl(y_tree(), GHz(3))
        assert values["trunk"][1] > values["left"][1]


class TestCascadingComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return cascading_comparison(figure6a_tree(), GHz(3))

    def test_inductance_error_small(self, comparison):
        # the paper's Table I: guarded segments cascade within a few %
        assert comparison.inductance_error < 0.05

    def test_resistance_error_tiny(self, comparison):
        # resistance has no long-range coupling at all
        assert comparison.resistance_error < 0.01

    def test_values_positive(self, comparison):
        assert comparison.full_inductance > 0
        assert comparison.combined_inductance > 0

    def test_error_grows_with_guard_spacing(self):
        from repro.cascade.tree import figure6a_tree as make_tree

        tight = cascading_comparison(make_tree(spacing=um(1.2)), GHz(3))
        loose = cascading_comparison(make_tree(spacing=um(12)), GHz(3))
        assert loose.inductance_error > tight.inductance_error
