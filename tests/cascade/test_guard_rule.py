"""The 'at least equal width' guard rule (Sec. IV)."""

import pytest

from repro.cascade.guard_rule import guard_width_study
from repro.cascade.tree import figure6a_tree
from repro.constants import GHz
from repro.errors import GeometryError


from repro.constants import um


@pytest.fixture(scope="module")
def study():
    # a moderately loose guard spacing so the shielding effect of the
    # guard width is visible in the loop inductance
    return guard_width_study(
        figure6a_tree(spacing=um(6)),
        width_ratios=(0.25, 0.5, 1.0, 2.0),
        frequency=GHz(3),
    )


class TestGuardRule:
    def test_all_ratios_evaluated(self, study):
        assert [p.width_ratio for p in study.points] == [0.25, 0.5, 1.0, 2.0]

    def test_cascading_error_negligible_at_all_ratios(self, study):
        # the substance of the Sec. IV conclusion: guarded segments are
        # inductively self-contained (error well under a percent here)
        assert all(p.cascading_error < 0.01 for p in study.points)

    def test_equal_width_satisfies_rule(self, study):
        # the paper's conclusion: equal-width guards are already enough
        assert study.equal_width_error < 0.05
        assert study.rule_holds(tolerance=0.05)

    def test_wider_guards_lower_loop_inductance(self, study):
        # "the shielding will improve if wider ground wires are used":
        # the return loop tightens monotonically with guard width
        inductances = [p.loop_inductance for p in study.points]
        assert all(a >= b for a, b in zip(inductances, inductances[1:]))

    def test_error_lookup(self, study):
        assert study.error_at(1.0) == study.points[2].cascading_error


class TestValidation:
    def test_empty_ratios(self):
        with pytest.raises(GeometryError):
            guard_width_study(figure6a_tree(), width_ratios=())

    def test_nonpositive_ratio(self):
        with pytest.raises(GeometryError):
            guard_width_study(figure6a_tree(), width_ratios=(0.0,))
