"""InterconnectTree structure and layout (paper Fig. 6)."""

import pytest

from repro.constants import um
from repro.cascade.tree import (
    ROOT,
    InterconnectTree,
    SegmentSpec,
    figure6a_tree,
    figure6b_tree,
)
from repro.errors import GeometryError


def linear_tree(lengths=(um(100), um(200))):
    segments = []
    parent = None
    for i, length in enumerate(lengths):
        name = f"s{i}"
        segments.append(SegmentSpec(name, length, parent))
        parent = name
    return InterconnectTree(
        segments=segments, signal_width=um(1.2), ground_width=um(1.2),
        spacing=um(1.2), thickness=um(0.7),
    )


class TestValidation:
    def test_needs_segments(self):
        with pytest.raises(GeometryError):
            InterconnectTree(segments=[], signal_width=um(1),
                             ground_width=um(1), spacing=um(1), thickness=um(1))

    def test_exactly_one_root(self):
        with pytest.raises(GeometryError):
            InterconnectTree(
                segments=[SegmentSpec("a", um(10)), SegmentSpec("b", um(10))],
                signal_width=um(1), ground_width=um(1), spacing=um(1),
                thickness=um(1),
            )

    def test_unknown_parent(self):
        with pytest.raises(GeometryError):
            InterconnectTree(
                segments=[SegmentSpec("a", um(10)),
                          SegmentSpec("b", um(10), "zzz")],
                signal_width=um(1), ground_width=um(1), spacing=um(1),
                thickness=um(1),
            )

    def test_duplicate_names(self):
        with pytest.raises(GeometryError):
            InterconnectTree(
                segments=[SegmentSpec("a", um(10)),
                          SegmentSpec("a", um(20), "a")],
                signal_width=um(1), ground_width=um(1), spacing=um(1),
                thickness=um(1),
            )

    def test_reserved_name(self):
        with pytest.raises(GeometryError):
            SegmentSpec(ROOT, um(10))

    def test_nonpositive_length(self):
        with pytest.raises(GeometryError):
            SegmentSpec("a", 0.0)


class TestStructure:
    def test_fig6a_shape(self):
        tree = figure6a_tree()
        assert tree.root.name == "ab"
        assert {s.name for s in tree.children("ab")} == {"bc", "bd"}
        assert {s.name for s in tree.leaves()} == {"ce", "df"}

    def test_fig6b_shape(self):
        tree = figure6b_tree()
        assert tree.root.name == "ab"
        assert {s.name for s in tree.leaves()} == {"bc", "de"}

    def test_depth(self):
        tree = figure6a_tree()
        assert tree.depth("ab") == 0
        assert tree.depth("bc") == 1
        assert tree.depth("ce") == 2

    def test_segment_lookup(self):
        tree = figure6a_tree()
        assert tree.segment("bc").length == pytest.approx(150e-6)
        with pytest.raises(GeometryError):
            tree.segment("zz")


class TestLayout:
    def test_root_along_x_from_origin(self):
        tree = figure6a_tree()
        placements = tree.layout()
        start, axis, direction = placements["ab"]
        assert start == (0.0, 0.0)
        assert axis == "x"
        assert direction == 1.0

    def test_orientation_alternates(self):
        tree = figure6a_tree()
        placements = tree.layout()
        assert placements["bc"][1] == "y"
        assert placements["ce"][1] == "x"

    def test_siblings_opposite_directions(self):
        tree = figure6a_tree()
        placements = tree.layout()
        assert placements["bc"][2] == -placements["bd"][2]

    def test_children_start_at_parent_end(self):
        tree = linear_tree()
        placements = tree.layout()
        (x0, y0), axis, direction = placements["s1"]
        assert axis == "y"
        assert x0 == pytest.approx(um(100))   # end of the 100 um root
        assert y0 == pytest.approx(0.0)

    def test_segment_block_is_cpw(self):
        tree = figure6a_tree()
        block = tree.segment_block("bc")
        assert len(block) == 3
        assert block.length == pytest.approx(150e-6)
        assert len(block.ground_traces) == 2


class TestNetwork:
    def test_conductor_count(self):
        tree = figure6a_tree()
        network = tree.build_network()
        # 5 segments x 3 wires + 2 leaf shorts
        assert network.num_conductors == 15

    def test_loop_solvable(self):
        tree = linear_tree()
        network = tree.build_network()
        r, l = network.loop_rl(f"sig_{ROOT}", f"gnd_{ROOT}", 1e9)
        assert r > 0 and l > 0

    def test_longer_tree_more_inductance(self):
        short = linear_tree((um(100),))
        long = linear_tree((um(100), um(200)))
        _, l_short = short.build_network().loop_rl(
            f"sig_{ROOT}", f"gnd_{ROOT}", 1e9
        )
        _, l_long = long.build_network().loop_rl(
            f"sig_{ROOT}", f"gnd_{ROOT}", 1e9
        )
        assert l_long > l_short
