"""FD-based 3-trace capacitance tables and their use in the bus flow."""

import numpy as np
import pytest

from repro.bus import BusRLCExtractor
from repro.constants import GHz, um
from repro.errors import TableError
from repro.geometry.trace import TraceBlock
from repro.rc.capacitance import CapacitanceModel, coupling_capacitance
from repro.tables.builder import ThreeTraceCapacitanceBuilder


@pytest.fixture(scope="module")
def tables():
    builder = ThreeTraceCapacitanceBuilder(
        height_below=um(2), thickness=um(1), nx=80, nz=60,
    )
    return builder.build_tables(
        widths=[um(1), um(2), um(4)],
        spacings=[um(1), um(2), um(4)],
    )


class TestBuilder:
    def test_invalid_geometry(self):
        with pytest.raises(TableError):
            ThreeTraceCapacitanceBuilder(height_below=0.0, thickness=um(1))

    def test_tables_positive(self, tables):
        ground, coupling = tables
        assert np.all(ground.values > 0)
        assert np.all(coupling.values > 0)

    def test_coupling_decays_with_spacing(self, tables):
        _, coupling = tables
        tight = coupling.lookup(width=um(2), spacing=um(1))
        loose = coupling.lookup(width=um(2), spacing=um(4))
        assert tight > loose

    def test_ground_grows_with_width(self, tables):
        ground, _ = tables
        narrow = ground.lookup(width=um(1), spacing=um(2))
        wide = ground.lookup(width=um(4), spacing=um(2))
        assert wide > narrow

    def test_fd_coupling_exceeds_sakurai_fit_at_tight_spacing(self, tables):
        # the reason the tables exist: the closed-form fit underestimates
        # tight-pitch coupling substantially (see DESIGN.md)
        _, coupling = tables
        fd = coupling.lookup(width=um(2), spacing=um(1))
        analytic = coupling_capacitance(um(2), um(1), um(2), um(1), 1.0)
        assert fd > analytic

    def test_metadata_recorded(self, tables):
        ground, _ = tables
        assert ground.metadata["model"] == "fd2d_three_trace"
        assert ground.metadata["height_below"] == um(2)


class TestBusIntegration:
    def test_both_tables_required(self, tables):
        ground, _ = tables
        with pytest.raises(TableError):
            BusRLCExtractor(
                frequency=GHz(3.2),
                capacitance_model=CapacitanceModel(um(2)),
                cap_ground_table=ground,
            )

    def test_fd_tables_drive_bus_extraction(self, tables):
        ground, coupling = tables
        block = TraceBlock.from_widths_and_spacings(
            widths=[um(2)] * 4, spacings=[um(2)] * 3, length=um(1000),
            thickness=um(1), ground_flags=[False] * 4,
        )
        extractor = BusRLCExtractor(
            frequency=GHz(3.2),
            capacitance_model=CapacitanceModel(um(2)),
            cap_ground_table=ground,
            cap_coupling_table=coupling,
        )
        bus = extractor.extract(block)
        c = bus.capacitance_matrix
        assert np.allclose(c, c.T)
        assert np.all(np.diag(c) > 0)
        assert c[0, 1] < 0
        assert c[0, 2] == 0.0   # short-range truncation preserved

    def test_fd_and_analytic_same_structure(self, tables):
        ground, coupling = tables
        block = TraceBlock.from_widths_and_spacings(
            widths=[um(2)] * 3, spacings=[um(2)] * 2, length=um(1000),
            thickness=um(1), ground_flags=[False] * 3,
        )
        analytic = BusRLCExtractor(
            frequency=GHz(3.2), capacitance_model=CapacitanceModel(um(2)),
        ).extract(block)
        fd = BusRLCExtractor(
            frequency=GHz(3.2), capacitance_model=CapacitanceModel(um(2)),
            cap_ground_table=ground, cap_coupling_table=coupling,
        ).extract(block)
        # same sign structure; magnitudes agree within the closed forms'
        # documented error envelope (coupling can differ by ~2x)
        assert np.sign(analytic.capacitance_matrix[0, 1]) == np.sign(
            fd.capacitance_matrix[0, 1]
        )
        ratio = fd.capacitance_matrix[1, 1] / analytic.capacitance_matrix[1, 1]
        assert 0.5 < ratio < 2.0
