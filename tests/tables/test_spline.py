"""Natural cubic and bicubic splines (Numerical Recipes routines)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TableError
from repro.tables.spline import BicubicSpline, CubicSpline1D


class TestCubicSpline:
    def test_interpolates_knots_exactly(self):
        x = np.array([0.0, 1.0, 2.5, 4.0])
        y = np.array([1.0, -2.0, 0.5, 3.0])
        spline = CubicSpline1D(x, y)
        for xi, yi in zip(x, y):
            assert spline(xi) == pytest.approx(yi, abs=1e-12)

    def test_exact_for_lines(self):
        x = np.linspace(0, 10, 7)
        spline = CubicSpline1D(x, 3.0 * x - 2.0)
        assert spline(4.321) == pytest.approx(3.0 * 4.321 - 2.0, rel=1e-12)

    def test_near_exact_for_smooth_function(self):
        x = np.linspace(0, np.pi, 15)
        spline = CubicSpline1D(x, np.sin(x))
        xq = np.linspace(0.1, np.pi - 0.1, 50)
        assert np.max(np.abs(spline(xq) - np.sin(xq))) < 1e-3

    def test_two_point_spline_is_linear(self):
        spline = CubicSpline1D([0.0, 2.0], [1.0, 5.0])
        assert spline(1.0) == pytest.approx(3.0)
        assert spline(0.5) == pytest.approx(2.0)

    def test_vector_evaluation(self):
        x = np.linspace(0, 1, 5)
        spline = CubicSpline1D(x, x ** 2)
        queries = np.array([0.1, 0.5, 0.9])
        result = spline(queries)
        assert result.shape == (3,)

    def test_scalar_returns_float(self):
        spline = CubicSpline1D([0, 1, 2], [0, 1, 4])
        assert isinstance(spline(0.5), float)

    def test_extrapolation_continuous(self):
        x = np.linspace(0, 1, 5)
        spline = CubicSpline1D(x, x ** 2)
        just_in = spline(1.0)
        just_out = spline(1.0 + 1e-9)
        assert just_out == pytest.approx(just_in, abs=1e-6)

    def test_in_range(self):
        spline = CubicSpline1D([0, 1, 2], [0, 1, 4])
        assert spline.in_range(1.5)
        assert not spline.in_range(2.5)
        assert not spline.in_range(-0.1)

    @pytest.mark.parametrize("x,y", [
        ([0.0], [1.0]),
        ([0.0, 1.0], [1.0, 2.0, 3.0]),
        ([0.0, 0.0, 1.0], [1.0, 2.0, 3.0]),
        ([1.0, 0.0, 2.0], [1.0, 2.0, 3.0]),
    ])
    def test_invalid_knots(self, x, y):
        with pytest.raises(TableError):
            CubicSpline1D(x, y)

    @given(st.lists(st.floats(-10, 10), min_size=4, max_size=10))
    @settings(max_examples=40)
    def test_knot_exactness_property(self, values):
        x = np.arange(len(values), dtype=float)
        spline = CubicSpline1D(x, values)
        for xi, yi in zip(x, values):
            assert spline(xi) == pytest.approx(yi, abs=1e-9)

    @given(st.floats(0.0, 3.0))
    @settings(max_examples=40)
    def test_monotone_data_bounded_overshoot(self, q):
        # natural splines can overshoot, but stay within a modest factor
        spline = CubicSpline1D([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
        assert -0.5 <= spline(q) <= 3.5


class TestBicubicSpline:
    def test_interpolates_grid_exactly(self):
        x1 = np.array([0.0, 1.0, 2.0])
        x2 = np.array([0.0, 0.5, 1.5, 3.0])
        values = np.outer(x1 + 1.0, x2 ** 2 + 1.0)
        spline = BicubicSpline(x1, x2, values)
        for i, a in enumerate(x1):
            for j, b in enumerate(x2):
                assert spline(a, b) == pytest.approx(values[i, j], abs=1e-10)

    def test_exact_for_bilinear(self):
        x1 = np.linspace(0, 2, 4)
        x2 = np.linspace(0, 3, 5)
        values = 2.0 * x1[:, None] + 3.0 * x2[None, :] + 1.0
        spline = BicubicSpline(x1, x2, values)
        assert spline(0.7, 1.9) == pytest.approx(2 * 0.7 + 3 * 1.9 + 1, rel=1e-10)

    def test_smooth_surface_accuracy(self):
        x1 = np.linspace(0, 1, 9)
        x2 = np.linspace(0, 1, 9)
        values = np.sin(np.pi * x1)[:, None] * np.cos(np.pi * x2)[None, :]
        spline = BicubicSpline(x1, x2, values)
        exact = np.sin(np.pi * 0.37) * np.cos(np.pi * 0.61)
        assert spline(0.37, 0.61) == pytest.approx(exact, abs=2e-3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TableError):
            BicubicSpline([0, 1], [0, 1, 2], np.zeros((3, 2)))

    def test_in_range(self):
        spline = BicubicSpline([0, 1, 2], [0, 1, 2], np.zeros((3, 3)))
        assert spline.in_range(1.0, 1.5)
        assert not spline.in_range(3.0, 1.0)
