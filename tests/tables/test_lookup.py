"""ExtractionTable lookup API and JSON persistence."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.tables.lookup import ExtractionTable


def simple_table():
    return ExtractionTable(
        name="demo",
        quantity="self_inductance",
        axis_names=("width", "length"),
        axes=[np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0, 40.0])],
        values=np.arange(9, dtype=float).reshape(3, 3),
        metadata={"frequency": 3.2e9},
    )


class TestLookup:
    def test_positional(self):
        table = simple_table()
        assert table.lookup(2.0, 20.0) == pytest.approx(4.0)

    def test_by_name(self):
        table = simple_table()
        assert table.lookup(width=2.0, length=20.0) == pytest.approx(4.0)

    def test_name_order_irrelevant(self):
        table = simple_table()
        assert table.lookup(length=20.0, width=2.0) == pytest.approx(4.0)

    def test_mixing_rejected(self):
        with pytest.raises(TableError):
            simple_table().lookup(2.0, length=20.0)

    def test_missing_axis_rejected(self):
        with pytest.raises(TableError):
            simple_table().lookup(width=2.0)

    def test_unknown_axis_rejected(self):
        with pytest.raises(TableError):
            simple_table().lookup(width=2.0, length=20.0, bogus=1.0)

    def test_in_range(self):
        table = simple_table()
        assert table.in_range(2.0, 15.0)
        assert not table.in_range(0.5, 15.0)

    def test_axis_name_count_must_match(self):
        with pytest.raises(TableError):
            ExtractionTable(
                name="bad", quantity="x", axis_names=("a",),
                axes=[np.array([0.0, 1.0]), np.array([0.0, 1.0])],
                values=np.zeros((2, 2)),
            )


class TestPersistence:
    def test_round_trip_dict(self):
        table = simple_table()
        rebuilt = ExtractionTable.from_dict(table.to_dict())
        assert rebuilt.name == table.name
        assert rebuilt.axis_names == ["width", "length"]
        assert rebuilt.lookup(1.7, 33.0) == pytest.approx(table.lookup(1.7, 33.0))
        assert rebuilt.metadata["frequency"] == 3.2e9

    def test_round_trip_file(self, tmp_path):
        table = simple_table()
        path = tmp_path / "table.json"
        table.save(path)
        rebuilt = ExtractionTable.load(path)
        assert rebuilt.lookup(width=2.5, length=25.0) == pytest.approx(
            table.lookup(width=2.5, length=25.0)
        )

    def test_missing_key_rejected(self):
        data = simple_table().to_dict()
        del data["values"]
        with pytest.raises(TableError):
            ExtractionTable.from_dict(data)

    def test_json_is_plain_text(self, tmp_path):
        path = tmp_path / "table.json"
        simple_table().save(path)
        text = path.read_text()
        assert '"quantity": "self_inductance"' in text
