"""Edge behaviour of the spline stack (PR 4 satellite).

Two properties matter for trusting the coverage classifier:

* the edge-cubic extrapolation error grows *monotonically* as the query
  moves away from the grid -- there is no sweet spot outside the
  characterized range, so every extrapolated lookup deserves its
  counter tick;
* ``in_range``, the edge-cell classifier, and ``lookup`` agree exactly
  on boundary points: a query *at* ``axis[0]``/``axis[-1]`` is in range,
  classifies as ``edge``, and never warns.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExtrapolationWarning
from repro.quality.coverage import AXIS_EDGE, AXIS_HIGH, AXIS_LOW
from repro.tables.grid import TensorSplineInterpolator
from repro.tables.lookup import ExtractionTable
from repro.tables.spline import CubicSpline1D


def _curved_table():
    """A gently curved 1-D table (the shape of an L(length) sweep)."""
    xs = np.linspace(1.0, 5.0, 9)
    return ExtractionTable(
        name="edge_test_table", quantity="q", axis_names=("width",),
        axes=[xs], values=np.log(xs) + 0.1 * xs,
    ), xs


class TestMonotoneExtrapolationError:
    """|spline - truth| is nondecreasing with distance off-grid."""

    @pytest.mark.parametrize("side", ["high", "low"])
    def test_1d_error_grows_with_distance(self, side):
        xs = np.linspace(0.0, 2.0, 9)
        truth = np.exp  # smooth, curved, cheap
        spline = CubicSpline1D(xs, truth(xs))
        if side == "high":
            queries = xs[-1] + np.linspace(0.1, 1.5, 8)
        else:
            queries = xs[0] - np.linspace(0.1, 1.5, 8)
        errors = [abs(spline(q) - truth(q)) for q in queries]
        assert errors == sorted(errors), (
            f"extrapolation error is not monotone off-grid: {errors}"
        )
        # and the farthest point is meaningfully worse than the nearest
        assert errors[-1] > 2.0 * errors[0]

    def test_tensor_interpolator_matches_1d_edge_cubic(self):
        # The N-D interpolator extrapolates with the same edge cubic as
        # the 1-D spline: no hidden clamping.
        xs = np.linspace(0.0, 2.0, 5)
        values = xs ** 3
        interp = TensorSplineInterpolator(
            [xs], values, warn_on_extrapolation=False)
        spline = CubicSpline1D(xs, values)
        for q in (-0.5, 2.5, 3.5):
            assert interp(q) == pytest.approx(spline(q), rel=1e-12)

    def test_error_is_zero_inside_and_small_at_edge(self):
        xs = np.linspace(0.0, 2.0, 9)
        spline = CubicSpline1D(xs, np.exp(xs))
        inside = abs(spline(1.0) - np.exp(1.0))
        at_edge = abs(spline(2.0) - np.exp(2.0))
        outside = abs(spline(3.0) - np.exp(3.0))
        assert at_edge <= 1e-12  # knot exactness
        assert inside < outside


class TestBoundaryAgreement:
    """in_range, classify and lookup agree exactly at the boundaries."""

    def test_boundary_points_in_range_edge_and_silent(self):
        table, xs = _curved_table()
        for q in (xs[0], xs[-1]):
            assert table.in_range(q)
            assert table.classify(q) == "edge"
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                table.lookup(q)  # must not warn

    def test_just_outside_disagrees_on_all_three(self):
        table, xs = _curved_table()
        eps = 1e-9
        for q, expected in ((xs[0] - eps, AXIS_LOW),
                            (xs[-1] + eps, AXIS_HIGH)):
            assert not table.in_range(q)
            assert table.classify(q) == "extrapolated"
            with pytest.warns(ExtrapolationWarning):
                table.lookup(q)
            # the per-axis classification names the violated side
            from repro.quality.coverage import classify_point
            _, per_axis = classify_point(table.axes, (q,))
            assert per_axis == (expected,)

    def test_interpolator_classify_agrees_with_in_range(self):
        _, xs = _curved_table()
        interp = TensorSplineInterpolator(
            [xs], np.log(xs), warn_on_extrapolation=False)
        for q in np.concatenate([xs, xs[:-1] + np.diff(xs) / 2,
                                 [xs[0] - 1.0, xs[-1] + 1.0]]):
            overall, _ = interp.classify((q,))
            assert interp.in_range((q,)) == (overall != "extrapolated")

    def test_inner_knot_edges_are_in_range(self):
        table, xs = _curved_table()
        # q == axis[1] / axis[-2]: one-sided cubic support -> edge, but
        # emphatically in range and warning-free.
        for q in (xs[1], xs[-2]):
            assert table.in_range(q)
            assert table.classify(q) == AXIS_EDGE
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                table.lookup(q)


@given(st.floats(-2.0, 8.0))
@settings(max_examples=60)
def test_classify_in_range_consistency_property(q):
    """For any finite query, extrapolated <=> not in_range."""
    xs = np.linspace(1.0, 5.0, 5)
    interp = TensorSplineInterpolator(
        [xs], xs ** 2, warn_on_extrapolation=False)
    extrapolated = interp.classify((q,))[0] == "extrapolated"
    assert extrapolated == (not interp.in_range((q,)))
