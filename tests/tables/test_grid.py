"""Tensor-product N-D spline interpolation."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExtrapolationWarning, TableError
from repro.tables.grid import TensorSplineInterpolator


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(TableError):
            TensorSplineInterpolator([[0, 1, 2]], np.zeros(4))

    def test_non_monotone_axis(self):
        with pytest.raises(TableError):
            TensorSplineInterpolator([[0, 2, 1]], np.zeros(3))

    def test_no_axes(self):
        with pytest.raises(TableError):
            TensorSplineInterpolator([], np.zeros(()))

    def test_wrong_coordinate_count(self):
        interp = TensorSplineInterpolator([[0, 1, 2]], np.zeros(3))
        with pytest.raises(TableError):
            interp(0.5, 0.5)


class Test1D:
    def test_matches_knots(self):
        interp = TensorSplineInterpolator([[0.0, 1.0, 2.0]], [5.0, 7.0, 9.0])
        assert interp(1.0) == pytest.approx(7.0)

    def test_linear_fallback_for_two_points(self):
        interp = TensorSplineInterpolator([[0.0, 2.0]], [0.0, 10.0])
        assert interp(0.5) == pytest.approx(2.5)


class Test2D:
    def test_separable_product(self):
        x = np.linspace(1, 3, 5)
        y = np.linspace(0, 2, 4)
        values = x[:, None] * (y[None, :] + 1.0)
        interp = TensorSplineInterpolator([x, y], values)
        assert interp(2.0, 1.0) == pytest.approx(4.0, rel=1e-9)

    def test_tuple_argument_accepted(self):
        x = np.linspace(0, 1, 3)
        interp = TensorSplineInterpolator([x, x], np.zeros((3, 3)))
        assert interp((0.5, 0.5)) == pytest.approx(0.0)


class Test4D:
    def test_mutual_inductance_style_table(self):
        # a 4-D table like the paper's mutual table (w1, w2, s, l)
        axes = [np.linspace(1, 2, 3)] * 4
        grid = np.meshgrid(*axes, indexing="ij")
        values = grid[0] * grid[1] + grid[2] * grid[3]
        interp = TensorSplineInterpolator(axes, values)
        q = (1.25, 1.75, 1.5, 1.1)
        expected = q[0] * q[1] + q[2] * q[3]
        assert interp(*q) == pytest.approx(expected, rel=1e-6)

    def test_knot_exactness(self):
        axes = [np.linspace(0, 1, 3)] * 4
        rng = np.random.default_rng(0)
        values = rng.normal(size=(3, 3, 3, 3))
        interp = TensorSplineInterpolator(axes, values)
        assert interp(0.0, 0.5, 1.0, 0.5) == pytest.approx(
            values[0, 1, 2, 1], abs=1e-9
        )


class TestExtrapolation:
    def test_warns_outside_grid(self):
        interp = TensorSplineInterpolator([[0.0, 1.0, 2.0]], [0.0, 1.0, 4.0])
        with pytest.warns(ExtrapolationWarning):
            interp(3.0)

    def test_silent_inside_grid(self):
        interp = TensorSplineInterpolator([[0.0, 1.0, 2.0]], [0.0, 1.0, 4.0])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            interp(1.5)

    def test_warning_can_be_disabled(self):
        interp = TensorSplineInterpolator(
            [[0.0, 1.0, 2.0]], [0.0, 1.0, 4.0], warn_on_extrapolation=False
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            interp(5.0)

    def test_in_range(self):
        interp = TensorSplineInterpolator(
            [[0, 1], [0, 1]], np.zeros((2, 2))
        )
        assert interp.in_range((0.5, 0.5))
        assert not interp.in_range((0.5, 1.5))


@given(
    st.floats(0.1, 0.9), st.floats(0.1, 0.9),
)
@settings(max_examples=30)
def test_2d_linear_surface_property(qx, qy):
    x = np.linspace(0, 1, 4)
    values = 2.0 * x[:, None] - 1.5 * x[None, :] + 0.25
    interp = TensorSplineInterpolator([x, x], values)
    assert interp(qx, qy) == pytest.approx(2 * qx - 1.5 * qy + 0.25, abs=1e-9)
