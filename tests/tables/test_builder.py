"""Table builders: field-solver sweeps into extraction tables."""

import numpy as np
import pytest

from repro.constants import GHz, um
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.errors import TableError
from repro.geometry.primitives import Point3D, RectBar
from repro.peec.hoer_love import bar_self_inductance
from repro.tables.builder import (
    CapacitanceTableBuilder,
    LoopInductanceTableBuilder,
    PartialInductanceTableBuilder,
)

WIDTHS = [um(2), um(5), um(10)]
LENGTHS = [um(500), um(1000), um(2000)]


def cpw_config():
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


class TestPartialBuilder:
    def test_self_table_matches_exact_kernel(self):
        builder = PartialInductanceTableBuilder(thickness=um(2))
        table = builder.build_self_table(WIDTHS, LENGTHS)
        bar = RectBar(Point3D(0, 0, 0), um(1000), um(5), um(2))
        assert table.lookup(width=um(5), length=um(1000)) == pytest.approx(
            bar_self_inductance(bar), rel=1e-9
        )

    def test_self_table_axes_and_metadata(self):
        builder = PartialInductanceTableBuilder(thickness=um(2), frequency=GHz(3.2))
        table = builder.build_self_table(WIDTHS, LENGTHS)
        assert tuple(table.axis_names) == ("width", "length")
        assert table.metadata["thickness"] == um(2)
        assert table.metadata["frequency"] == GHz(3.2)

    def test_mutual_table_4d(self):
        builder = PartialInductanceTableBuilder(thickness=um(1))
        table = builder.build_mutual_table(
            [um(1), um(2)], [um(1), um(2)], [um(1), um(3)], [um(200), um(500)],
        )
        assert table.ndim == 4
        value = table.lookup(
            width1=um(1), width2=um(2), spacing=um(1), length=um(500)
        )
        assert value > 0

    def test_mutual_symmetric_in_widths(self):
        builder = PartialInductanceTableBuilder(thickness=um(1))
        table = builder.build_mutual_table(
            [um(1), um(3)], [um(1), um(3)], [um(2), um(4)], [um(300), um(600)],
        )
        a = table.lookup(width1=um(1), width2=um(3), spacing=um(2), length=um(300))
        b = table.lookup(width1=um(3), width2=um(1), spacing=um(2), length=um(300))
        assert a == pytest.approx(b, rel=1e-9)

    def test_frequency_dependent_self_table_lower(self):
        # skin effect at very high frequency reduces internal inductance
        static = PartialInductanceTableBuilder(thickness=um(2))
        fast = PartialInductanceTableBuilder(thickness=um(2), frequency=50e9)
        l_static = static.build_self_table([um(8), um(12)], [um(1000), um(2000)])
        l_fast = fast.build_self_table([um(8), um(12)], [um(1000), um(2000)])
        assert l_fast.lookup(um(8), um(1000)) < l_static.lookup(um(8), um(1000))

    @pytest.mark.parametrize("kwargs", [
        {"thickness": 0.0},
        {"thickness": um(1), "frequency": -1.0},
    ])
    def test_invalid_builder(self, kwargs):
        with pytest.raises(TableError):
            PartialInductanceTableBuilder(**kwargs)

    def test_axis_validation(self):
        builder = PartialInductanceTableBuilder(thickness=um(1))
        with pytest.raises(TableError):
            builder.build_self_table([um(1)], LENGTHS)       # too few points
        with pytest.raises(TableError):
            builder.build_self_table([um(2), um(1)], LENGTHS)  # not increasing


class TestLoopBuilder:
    def test_loop_tables_built(self):
        config = cpw_config()
        builder = LoopInductanceTableBuilder(config.loop_problem, GHz(3.2))
        l_table, r_table = builder.build_loop_tables(
            [um(5), um(10)], [um(500), um(1500)]
        )
        assert l_table.quantity == "loop_inductance"
        assert r_table.quantity == "loop_resistance"
        assert l_table.lookup(um(5), um(500)) > 0
        assert r_table.lookup(um(5), um(500)) > 0

    def test_lookup_matches_direct_solve_at_knot(self):
        config = cpw_config()
        builder = LoopInductanceTableBuilder(config.loop_problem, GHz(3.2))
        l_table, _ = builder.build_loop_tables([um(5), um(10)], [um(500), um(1500)])
        problem = config.loop_problem(um(10), um(1500))
        _, direct = problem.loop_rl(GHz(3.2))
        assert l_table.lookup(um(10), um(1500)) == pytest.approx(direct, rel=1e-9)

    def test_invalid_frequency(self):
        with pytest.raises(TableError):
            LoopInductanceTableBuilder(cpw_config().loop_problem, 0.0)


class TestCapacitanceBuilder:
    def test_cap_table_from_fd_solver(self):
        config = cpw_config()
        builder = CapacitanceTableBuilder(
            lambda w, s: config.cross_section(signal_width=w, spacing=s),
            nx=60, nz=45,
        )
        table = builder.build_total_cap_table(
            [um(5), um(10)], [um(1), um(3)]
        )
        assert table.quantity == "capacitance_per_length"
        narrow = table.lookup(width=um(5), spacing=um(1))
        wide = table.lookup(width=um(10), spacing=um(1))
        assert wide > narrow > 0

    def test_signal_name_required(self):
        from repro.rc.fieldsolver2d import ConductorRect, CrossSection2D

        def factory(w, s):
            return CrossSection2D(
                width=um(20), height=um(10),
                conductors=[ConductorRect("X", um(5), um(5) + w, um(2), um(3))],
            )

        builder = CapacitanceTableBuilder(factory, nx=40, nz=30)
        with pytest.raises(TableError):
            builder.build_total_cap_table([um(1), um(2)], [um(1), um(2)])
