"""Mutual loop inductance tables for neighbour coupling."""

import pytest

from repro.clocktree.configs import MicrostripConfig
from repro.constants import GHz, um
from repro.errors import TableError
from repro.tables.builder import MutualLoopTableBuilder


@pytest.fixture(scope="module")
def config():
    return MicrostripConfig(signal_width=um(5), thickness=um(1),
                            plane_gap=um(3))


@pytest.fixture(scope="module")
def table(config):
    builder = MutualLoopTableBuilder(config.pair_problem, GHz(3.2))
    return builder.build_mutual_loop_table(
        separations=[um(3), um(8), um(20)],
        lengths=[um(500), um(1500)],
    )


class TestMutualLoopTable:
    def test_axes_and_quantity(self, table):
        assert tuple(table.axis_names) == ("separation", "length")
        assert table.quantity == "mutual_loop_inductance"

    def test_coupling_decays_with_separation(self, table):
        near = table.lookup(separation=um(3), length=um(1500))
        far = table.lookup(separation=um(20), length=um(1500))
        assert near > far > 0

    def test_coupling_grows_with_length(self, table):
        short = table.lookup(separation=um(8), length=um(500))
        long = table.lookup(separation=um(8), length=um(1500))
        assert long > 2.0 * short    # super-linear, like self L

    def test_knot_matches_direct_solve(self, config, table):
        problem = config.pair_problem(um(8), um(1500))
        direct = problem.solve(GHz(3.2)).mutual_loop_inductances["VICTIM"]
        assert table.lookup(separation=um(8), length=um(1500)) == pytest.approx(
            direct, rel=1e-9
        )

    def test_bad_factory_detected(self):
        from repro.clocktree.configs import CoplanarWaveguideConfig

        cpw = CoplanarWaveguideConfig(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            thickness=um(2), height_below=um(2),
        )
        # the CPW loop problem has no open 'VICTIM' trace
        builder = MutualLoopTableBuilder(
            lambda s, l: cpw.loop_problem(um(10), l), GHz(3.2)
        )
        with pytest.raises(TableError):
            builder.build_mutual_loop_table([um(2), um(4)], [um(500), um(900)])

    def test_invalid_frequency(self, config):
        with pytest.raises(TableError):
            MutualLoopTableBuilder(config.pair_problem, 0.0)
