"""Exact table round-tripping and crash-safe persistence."""

import json
import os

import numpy as np
import pytest

from repro.ioutil import atomic_write_text
from repro.tables.lookup import ExtractionTable


def make_table(frequency=3.2e9):
    return ExtractionTable(
        name="m5_loop",
        quantity="loop_inductance",
        axis_names=("width", "length"),
        axes=[np.array([1e-6, 2e-6, 4e-6]),
              np.array([5e-4, 1e-3, 2e-3, 6e-3])],
        values=np.linspace(1e-10, 2e-9, 12).reshape(3, 4),
        metadata={
            "frequency": frequency,
            "model": "loop",
            "nested": {"nx": 160, "nz": 120},
        },
    )


class TestDictRoundTrip:
    def test_axes_values_metadata_exact(self):
        table = make_table()
        clone = ExtractionTable.from_dict(table.to_dict())
        assert clone.name == table.name
        assert clone.quantity == table.quantity
        assert tuple(clone.axis_names) == tuple(table.axis_names)
        for a, b in zip(clone.axes, table.axes):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(clone.values, table.values)
        assert clone.metadata == table.metadata

    def test_frequency_none_preserved(self):
        table = make_table(frequency=None)
        clone = ExtractionTable.from_dict(table.to_dict())
        assert clone.metadata["frequency"] is None

    def test_lookup_identical_after_roundtrip(self):
        table = make_table()
        clone = ExtractionTable.from_dict(table.to_dict())
        assert clone.lookup(width=2.5e-6, length=1.5e-3) == pytest.approx(
            table.lookup(width=2.5e-6, length=1.5e-3)
        )


class TestFileRoundTrip:
    def test_save_load_exact(self, tmp_path):
        table = make_table()
        path = tmp_path / "table.json"
        table.save(path)
        clone = ExtractionTable.load(path)
        np.testing.assert_array_equal(clone.values, table.values)
        for a, b in zip(clone.axes, table.axes):
            np.testing.assert_array_equal(a, b)
        assert clone.metadata == table.metadata

    def test_save_frequency_none_json_null(self, tmp_path):
        path = tmp_path / "t.json"
        make_table(frequency=None).save(path)
        raw = json.loads(path.read_text())
        assert raw["metadata"]["frequency"] is None
        assert ExtractionTable.load(path).metadata["frequency"] is None

    def test_save_leaves_no_temp_files(self, tmp_path):
        make_table().save(tmp_path / "t.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.json"]

    def test_save_overwrites_atomically(self, tmp_path):
        path = tmp_path / "t.json"
        make_table().save(path)
        before = path.read_text()
        table2 = make_table()
        table2.values = table2.values * 2.0
        table2.__post_init__()
        table2.save(path)
        after = path.read_text()
        assert after != before
        # whole-file replacement, never an in-place partial write
        assert json.loads(after)["values"][0][0] == pytest.approx(2e-10)


class TestAtomicWrite:
    def test_failure_preserves_original(self, tmp_path, monkeypatch):
        path = tmp_path / "data.txt"
        atomic_write_text(path, "original")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(path, "replacement")
        monkeypatch.undo()
        assert path.read_text() == "original"
        # and the staged temp file was cleaned up
        assert [p.name for p in tmp_path.iterdir()] == ["data.txt"]

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "c.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"
