"""Unit helpers and physical constants."""

import math

import pytest

from repro import constants as c


def test_mu0_matches_definition():
    assert c.MU_0 == pytest.approx(4.0e-7 * math.pi)


def test_eps0_value():
    assert c.EPS_0 == pytest.approx(8.854e-12, rel=1e-3)


def test_speed_of_light_consistency():
    # c = 1 / sqrt(mu0 eps0)
    derived = 1.0 / math.sqrt(c.MU_0 * c.EPS_0)
    assert derived == pytest.approx(c.C_0, rel=1e-6)


def test_copper_less_resistive_than_aluminium():
    assert c.RHO_CU < c.RHO_AL


@pytest.mark.parametrize(
    "forward,inverse,value",
    [
        (c.um, c.to_um, 12.5),
        (c.nH, c.to_nH, 3.3),
        (c.pF, c.to_pF, 0.8),
        (c.fF, c.to_fF, 47.0),
        (c.ps, c.to_ps, 28.01),
        (c.GHz, c.to_GHz, 3.2),
    ],
)
def test_unit_roundtrips(forward, inverse, value):
    assert inverse(forward(value)) == pytest.approx(value)


def test_um_scale():
    assert c.um(1.0) == 1e-6


def test_mm_scale():
    assert c.mm(1.0) == 1e-3


def test_nm_scale():
    assert c.nm(1.0) == 1e-9


def test_nh_vs_ph():
    assert c.nH(1.0) == pytest.approx(1000.0 * c.pH(1.0))


def test_ns_vs_ps():
    assert c.ns(1.0) == pytest.approx(1000.0 * c.ps(1.0))


def test_to_ph():
    assert c.to_pH(1e-12) == pytest.approx(1.0)
