"""Significant frequency rule."""

import pytest

from repro.core.frequency import rise_time_for_frequency, significant_frequency
from repro.errors import GeometryError


def test_paper_value():
    # 100 ps rise -> 3.2 GHz, the value used throughout the paper
    assert significant_frequency(100e-12) == pytest.approx(3.2e9)


def test_faster_edge_higher_frequency():
    assert significant_frequency(50e-12) == pytest.approx(6.4e9)


def test_inverse_round_trip():
    assert rise_time_for_frequency(significant_frequency(37e-12)) == pytest.approx(
        37e-12
    )


def test_invalid_inputs():
    with pytest.raises(GeometryError):
        significant_frequency(0.0)
    with pytest.raises(GeometryError):
        rise_time_for_frequency(-1.0)
