"""Numerical verification of the extraction Foundations."""

import numpy as np
import pytest

from repro.constants import GHz, um
from repro.core.foundations import (
    foundation1_check,
    foundation2_check,
    loop_inductance_matrix,
    partial_foundation_checks,
)
from repro.errors import GeometryError
from repro.geometry.trace import TraceBlock
from repro.peec.ground_plane import plane_under_block


@pytest.fixture(scope="module")
def array_and_plane():
    block = TraceBlock.from_widths_and_spacings(
        widths=[um(5)] * 4, spacings=[um(5)] * 3, length=um(1000),
        thickness=um(1), ground_flags=[False] * 4,
    )
    plane = plane_under_block(block, gap=um(5), n_strips=9)
    return block, plane


class TestLoopMatrix:
    def test_shape_and_symmetry(self, array_and_plane):
        block, plane = array_and_plane
        matrix = loop_inductance_matrix(block, plane, GHz(1))
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix, matrix.T)

    def test_diagonal_dominates(self, array_and_plane):
        block, plane = array_and_plane
        matrix = loop_inductance_matrix(block, plane, GHz(1))
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert matrix[i, i] > matrix[i, j] > 0

    def test_mutual_decays_with_separation(self, array_and_plane):
        block, plane = array_and_plane
        matrix = loop_inductance_matrix(block, plane, GHz(1))
        assert matrix[0, 1] > matrix[0, 2] > matrix[0, 3]

    def test_mirror_symmetry(self, array_and_plane):
        block, plane = array_and_plane
        matrix = loop_inductance_matrix(block, plane, GHz(1))
        assert matrix[0, 0] == pytest.approx(matrix[3, 3], rel=1e-6)

    def test_ground_traces_rejected(self):
        block = TraceBlock.coplanar_waveguide(
            signal_width=um(5), ground_width=um(5), spacing=um(2),
            length=um(500), thickness=um(1),
        )
        plane = plane_under_block(block, gap=um(3))
        with pytest.raises(GeometryError):
            loop_inductance_matrix(block, plane, GHz(1))


class TestLoopFoundations:
    def test_foundation1_small_error(self, array_and_plane):
        block, plane = array_and_plane
        check = foundation1_check(block, plane, GHz(1))
        # the paper's claim: the 1-trace reduction holds to a few percent
        assert check.relative_error < 0.02
        assert check.full_value > 0

    def test_foundation2_small_error(self, array_and_plane):
        block, plane = array_and_plane
        check = foundation2_check(block, plane, GHz(1))
        assert check.relative_error < 0.05
        assert check.full_value > 0

    def test_foundation2_needs_distinct_traces(self, array_and_plane):
        block, plane = array_and_plane
        with pytest.raises(GeometryError):
            foundation2_check(block, plane, GHz(1), index_a=0, index_b=0)

    def test_check_error_properties(self):
        from repro.core.foundations import FoundationCheck

        same = FoundationCheck("x", 1.0, 1.0)
        assert same.relative_error == 0.0
        off = FoundationCheck("x", 1.0, 1.1)
        assert off.relative_error == pytest.approx(0.1)
        degenerate = FoundationCheck("x", 0.0, 0.0)
        assert degenerate.relative_error == 0.0
        infinite = FoundationCheck("x", 0.0, 1.0)
        assert infinite.relative_error == float("inf")


class TestPartialFoundations:
    def test_exact_at_uniform_current(self):
        block = TraceBlock.from_widths_and_spacings(
            widths=[um(2)] * 3, spacings=[um(4)] * 2, length=um(500),
            thickness=um(1), ground_flags=[False] * 3,
        )
        checks = partial_foundation_checks(block, frequency=None,
                                           n_width=2, n_thickness=1)
        # under PEEC the reduction is exact for uniform current
        for check in checks:
            assert check.relative_error < 1e-9

    def test_small_proximity_deviation_at_frequency(self):
        block = TraceBlock.from_widths_and_spacings(
            widths=[um(5)] * 3, spacings=[um(2)] * 2, length=um(500),
            thickness=um(2), ground_flags=[False] * 3,
        )
        checks = partial_foundation_checks(block, frequency=GHz(10),
                                           n_width=3, n_thickness=2)
        for check in checks:
            assert check.relative_error < 0.05   # small but nonzero

    def test_check_count(self):
        block = TraceBlock.from_widths_and_spacings(
            widths=[um(2)] * 3, spacings=[um(4)] * 2, length=um(300),
            thickness=um(1), ground_flags=[False] * 3,
        )
        checks = partial_foundation_checks(block, n_width=1, n_thickness=1)
        # 3 self checks + 3 pair checks
        assert len(checks) == 6
