"""Per-layer technology tables and multi-layer clocktree extraction."""

import pytest

from repro.constants import GHz, um
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.htree import HTree
from repro.clocktree.multilayer import MultiLayerClocktreeExtractor
from repro.core.technology import TechnologyTables
from repro.errors import TableError
from repro.geometry.stackup import default_stackup

WIDTHS = [um(5), um(10)]
LENGTHS = [um(500), um(1500)]


def config_for_layer(layer):
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=layer.thickness, height_below=um(2),
        resistivity=layer.resistivity,
    )


@pytest.fixture(scope="module")
def technology():
    stackup = default_stackup(6)
    return TechnologyTables.for_stackup(
        stackup, config_for_layer, frequency=GHz(3.2),
        widths=WIDTHS, lengths=LENGTHS, layers=("M5", "M6"),
    )


class TestTechnologyTables:
    def test_layers_characterized(self, technology):
        assert technology.layer_names() == ["M5", "M6"]

    def test_unknown_layer_rejected(self, technology):
        with pytest.raises(TableError):
            technology.extractor_for("M1")

    def test_empty_rejected(self):
        with pytest.raises(TableError):
            TechnologyTables(extractors={}, frequency=GHz(3.2))

    def test_per_layer_thickness_flows_into_tables(self, technology):
        # M5 and M6 share the default 2 um thickness in default_stackup,
        # so their loop inductances should agree; a thinner layer differs
        l5 = technology.extractor_for("M5").loop_inductance(um(10), um(1000))
        l6 = technology.extractor_for("M6").loop_inductance(um(10), um(1000))
        assert l5 == pytest.approx(l6, rel=1e-6)

        stackup = default_stackup(6)
        thin = TechnologyTables.for_stackup(
            stackup, config_for_layer, frequency=GHz(3.2),
            widths=WIDTHS, lengths=LENGTHS, layers=("M1",),
        )
        l1 = thin.extractor_for("M1").loop_inductance(um(10), um(1000))
        assert l1 != pytest.approx(l5, rel=1e-3)

    def test_save_load_round_trip(self, technology, tmp_path):
        technology.save(tmp_path)
        stackup = default_stackup(6)
        configs = {
            name: config_for_layer(stackup.layer(name))
            for name in ("M5", "M6")
        }
        reloaded = TechnologyTables.load(tmp_path, configs, GHz(3.2))
        a = technology.extractor_for("M5").loop_inductance(um(8), um(1000))
        b = reloaded.extractor_for("M5").loop_inductance(um(8), um(1000))
        assert b == pytest.approx(a)


class TestMultiLayerExtraction:
    def test_layer_annotations_on_htree(self):
        htree = HTree.generate(
            levels=3, root_length=um(2000),
            config=config_for_layer(default_stackup(6).layer("M6")),
            layers_by_level=("M6", "M5"),
        )
        assert htree.segment("s_L").layer == "M6"
        assert htree.segment("s_LL").layer == "M5"
        assert htree.segment("s_LLL").layer == "M6"

    def test_segment_dispatch(self, technology):
        extractor = MultiLayerClocktreeExtractor(technology, "M6")
        stackup = default_stackup(6)
        htree = HTree.generate(
            levels=2, root_length=um(1500),
            config=config_for_layer(stackup.layer("M6")),
            layers_by_level=("M6", "M5"),
        )
        root_rlc = extractor.segment_rlc_for(htree.segment("s_L"))
        leaf_rlc = extractor.segment_rlc_for(htree.segment("s_LL"))
        assert root_rlc.inductance > leaf_rlc.inductance  # longer segment

    def test_unannotated_segments_use_default_layer(self, technology):
        extractor = MultiLayerClocktreeExtractor(technology, "M6")
        stackup = default_stackup(6)
        htree = HTree.generate(
            levels=1, root_length=um(1000),
            config=config_for_layer(stackup.layer("M6")),
        )
        rlc = extractor.segment_rlc_for(htree.segment("s_L"))
        direct = technology.extractor_for("M6").loop_inductance(
            um(10), um(1000)
        )
        assert rlc.inductance == pytest.approx(direct, rel=1e-9)

    def test_unknown_layer_raises(self, technology):
        extractor = MultiLayerClocktreeExtractor(technology, "M6")
        from repro.clocktree.htree import HTreeSegment

        segment = HTreeSegment(
            name="s_X", level=0, parent=None, length=um(500),
            start=(0, 0), end=(um(500), 0), axis="x", layer="M2",
        )
        with pytest.raises(TableError):
            extractor.segment_rlc_for(segment)

    def test_full_netlist_simulates(self, technology):
        from repro.circuit.transient import transient_analysis
        from repro.constants import ps

        extractor = MultiLayerClocktreeExtractor(technology, "M6")
        stackup = default_stackup(6)
        htree = HTree.generate(
            levels=2, root_length=um(1500),
            config=config_for_layer(stackup.layer("M6")),
            layers_by_level=("M6", "M5"),
        )
        netlist = extractor.build_netlist(htree)
        result = transient_analysis(netlist.circuit, t_stop=ps(2000), dt=ps(1))
        sink = next(iter(netlist.sink_nodes.values()))
        assert result.voltage(sink).final_value == pytest.approx(1.8, rel=0.05)
