"""TableBasedExtractor: characterize, look up, validate, persist."""

import warnings

import pytest

from repro.constants import GHz, um
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.core.extraction import TableBasedExtractor
from repro.errors import ExtrapolationWarning, TableError

WIDTHS = [um(5), um(10), um(15)]
LENGTHS = [um(500), um(1000), um(2000)]


def config():
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


@pytest.fixture(scope="module")
def extractor():
    return TableBasedExtractor.characterize(
        config(), frequency=GHz(3.2), widths=WIDTHS, lengths=LENGTHS,
    )


class TestCharacterize:
    def test_tables_built(self, extractor):
        assert extractor.inductance_table is not None
        assert extractor.resistance_table is not None
        assert extractor.capacitance_table is None   # no spacings given

    def test_capacitance_table_optional(self):
        ex = TableBasedExtractor.characterize(
            config(), frequency=GHz(3.2),
            widths=[um(5), um(10)], lengths=[um(500), um(1000)],
            spacings=[um(1), um(3)], capacitance_grid=(50, 40),
        )
        assert ex.capacitance_table is not None
        assert ex.capacitance_per_length(um(8), um(2)) > 0

    def test_invalid_frequency(self, extractor):
        with pytest.raises(TableError):
            TableBasedExtractor(config(), 0.0, extractor.inductance_table)


class TestLookup:
    def test_knot_exactness(self, extractor):
        problem = config().loop_problem(um(10), um(1000))
        _, direct = problem.loop_rl(GHz(3.2))
        assert extractor.loop_inductance(um(10), um(1000)) == pytest.approx(
            direct, rel=1e-9
        )

    def test_off_grid_interpolation_accurate(self, extractor):
        probe = extractor.accuracy_probe(um(8), um(1400))
        assert probe.relative_error < 0.02

    def test_lookup_much_faster_than_solve(self, extractor):
        probe = extractor.accuracy_probe(um(8), um(1400))
        assert probe.speedup > 3

    def test_resistance_lookup(self, extractor):
        assert extractor.loop_resistance(um(10), um(1000)) > 0

    def test_missing_cap_table_raises(self, extractor):
        with pytest.raises(TableError):
            extractor.capacitance_per_length(um(10), um(1))

    def test_extrapolation_warns(self, extractor):
        with pytest.warns(ExtrapolationWarning):
            extractor.loop_inductance(um(30), um(1000))


class TestPersistence:
    def test_save_load_round_trip(self, extractor, tmp_path):
        extractor.save(tmp_path)
        reloaded = TableBasedExtractor.load(tmp_path, config(), GHz(3.2))
        assert reloaded.loop_inductance(um(8), um(1500)) == pytest.approx(
            extractor.loop_inductance(um(8), um(1500))
        )
        assert reloaded.loop_resistance(um(8), um(1500)) == pytest.approx(
            extractor.loop_resistance(um(8), um(1500))
        )

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(TableError):
            TableBasedExtractor.load(tmp_path / "nope", config(), GHz(3.2))


class TestIntegration:
    def test_as_clocktree_extractor(self, extractor):
        ex = extractor.as_clocktree_extractor()
        rlc = ex.segment_rlc(um(1200))
        assert rlc.inductance == pytest.approx(
            extractor.loop_inductance(um(10), um(1200)), rel=1e-9
        )
