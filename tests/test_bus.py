"""Bus RLC extraction, netlist formulation and crosstalk."""

import numpy as np
import pytest

from repro.bus import BusRLCExtractor, crosstalk_analysis
from repro.bus.extractor import BusRLC
from repro.constants import GHz, um
from repro.errors import CircuitError, GeometryError
from repro.geometry.trace import TraceBlock
from repro.peec.hoer_love import bar_mutual_inductance, bar_self_inductance
from repro.rc.capacitance import CapacitanceModel
from repro.tables.builder import PartialInductanceTableBuilder


def bus_block(n=5, width=um(2), spacing=um(2), length=um(1000)):
    return TraceBlock.from_widths_and_spacings(
        widths=[width] * n, spacings=[spacing] * (n - 1),
        length=length, thickness=um(1),
    )


def extractor(**kwargs):
    defaults = dict(
        frequency=GHz(3.2),
        capacitance_model=CapacitanceModel(height_below=um(2)),
    )
    defaults.update(kwargs)
    return BusRLCExtractor(**defaults)


class TestExtraction:
    @pytest.fixture(scope="class")
    def bus(self):
        return extractor().extract(bus_block())

    def test_matrix_shapes(self, bus):
        assert bus.inductance_matrix.shape == (5, 5)
        assert bus.capacitance_matrix.shape == (5, 5)
        assert bus.resistances.shape == (5,)

    def test_inductance_symmetric_positive_definite(self, bus):
        l = bus.inductance_matrix
        assert np.allclose(l, l.T)
        assert np.all(np.linalg.eigvalsh(l) > 0)

    def test_self_values_match_exact_kernel(self, bus):
        expected = bar_self_inductance(bus.block.traces[0].to_bar())
        assert bus.inductance_matrix[0, 0] == pytest.approx(expected, rel=1e-9)

    def test_mutual_values_match_exact_kernel(self, bus):
        expected = bar_mutual_inductance(
            bus.block.traces[0].to_bar(), bus.block.traces[2].to_bar()
        )
        assert bus.inductance_matrix[0, 2] == pytest.approx(expected, rel=1e-9)

    def test_inductive_coupling_long_range(self, bus):
        # coupling coefficients decay slowly (log-like) with distance
        k_adjacent = bus.coupling_coefficient(1, 2)
        k_far = bus.coupling_coefficient(1, 4)
        assert 0.4 < k_far < k_adjacent < 1.0

    def test_capacitive_coupling_short_range(self, bus):
        c = bus.capacitance_matrix
        assert c[1, 2] < 0.0            # adjacent couple
        assert c[1, 4] == 0.0           # distant pairs truncated

    def test_equal_traces_equal_resistance(self, bus):
        assert np.allclose(bus.resistances, bus.resistances[0])

    def test_invalid_frequency(self):
        with pytest.raises(GeometryError):
            extractor(frequency=0.0)


class TestTableDrivenExtraction:
    def test_tables_match_direct(self):
        builder = PartialInductanceTableBuilder(thickness=um(1))
        self_table = builder.build_self_table(
            [um(1), um(2), um(4)], [um(500), um(1000), um(2000)]
        )
        # the spacing axis must reach the widest pair separation in the
        # block (T1-T3 sit 6 um apart edge to edge)
        mutual_table = builder.build_mutual_table(
            [um(1), um(2), um(4)], [um(1), um(2), um(4)],
            [um(1), um(3), um(6)], [um(500), um(1000), um(2000)],
        )
        block = bus_block(n=3)
        direct = extractor().extract(block)
        tabled = extractor(
            self_table=self_table, mutual_table=mutual_table
        ).extract(block)
        assert np.allclose(
            tabled.inductance_matrix, direct.inductance_matrix, rtol=1e-6
        )


class TestNetlist:
    def test_shields_tied_to_ground(self):
        block = bus_block(n=4)   # outer traces default to shields
        bus = extractor().extract(block)
        netlist = extractor().build_netlist(bus, sections=3)
        assert set(netlist.input_nodes) == {"T2", "T3"}
        assert "T1" not in netlist.input_nodes
        node_names = netlist.circuit.nodes
        assert not any(n.startswith("in_T1") for n in node_names)

    def test_rc_variant_has_no_inductors(self):
        from repro.circuit.elements import Inductor
        bus = extractor().extract(bus_block(n=3))
        netlist = extractor().build_netlist(bus, include_inductance=False)
        assert not any(isinstance(e, Inductor) for e in netlist.circuit.elements)

    def test_mutuals_can_be_disabled(self):
        bus = extractor().extract(bus_block(n=3))
        with_k = extractor().build_netlist(bus, include_mutual=True)
        without_k = extractor().build_netlist(bus, include_mutual=False)
        assert len(with_k.circuit.mutuals) > 0
        assert len(without_k.circuit.mutuals) == 0

    def test_total_inductance_preserved(self):
        from repro.circuit.elements import Inductor
        bus = extractor().extract(bus_block(n=3))
        netlist = extractor().build_netlist(bus, sections=4)
        total = sum(
            e.inductance for e in netlist.circuit.elements
            if isinstance(e, Inductor) and e.name.startswith("L_T2_")
        )
        assert total == pytest.approx(bus.inductance_matrix[1, 1], rel=1e-12)

    def test_sections_validated(self):
        bus = extractor().extract(bus_block(n=3))
        with pytest.raises(GeometryError):
            extractor().build_netlist(bus, sections=0)

    def test_netlist_simulates(self):
        from repro.circuit.sources import PulseSource
        from repro.circuit.transient import transient_analysis

        bus = extractor().extract(bus_block(n=3, length=um(500)))
        netlist = extractor().build_netlist(bus, sections=2)
        circuit = netlist.circuit
        circuit.add_voltage_source(
            "V1", "src", "0", PulseSource(0, 1.0, rise=20e-12, width=1.0)
        )
        circuit.add_resistor("Rs", "src", netlist.input_nodes["T2"], 25.0)
        circuit.add_capacitor("CL", netlist.output_nodes["T2"], "0", 20e-15)
        result = transient_analysis(circuit, t_stop=1e-9, dt=0.5e-12)
        final = result.voltage(netlist.output_nodes["T2"]).final_value
        assert final == pytest.approx(1.0, rel=0.05)


class TestCrosstalk:
    @pytest.fixture(scope="class")
    def setup(self):
        ex = extractor()
        bus = ex.extract(bus_block(n=7, length=um(2000)))
        return ex, bus

    def test_victims_reported(self, setup):
        ex, bus = setup
        result = crosstalk_analysis(ex, bus, aggressor="T4", sections=2)
        assert set(result.victim_noise_peak) == {"T2", "T3", "T5", "T6"}

    def test_noise_symmetric_about_aggressor(self, setup):
        ex, bus = setup
        result = crosstalk_analysis(ex, bus, aggressor="T4", sections=2)
        assert result.noise_of("T3") == pytest.approx(
            result.noise_of("T5"), rel=1e-6
        )

    def test_inductive_coupling_dominates_far_victims(self, setup):
        ex, bus = setup
        full = crosstalk_analysis(ex, bus, aggressor="T4", sections=2)
        cap_only = crosstalk_analysis(ex, bus, aggressor="T4", sections=2,
                                      include_mutual=False)
        # far victim (two traces away): inductive coupling carries the
        # noise; capacitive-only misses most of it (long- vs short-range)
        assert cap_only.noise_of("T6") < 0.5 * full.noise_of("T6")

    def test_unknown_aggressor(self, setup):
        ex, bus = setup
        with pytest.raises(CircuitError):
            crosstalk_analysis(ex, bus, aggressor="T1")   # a shield

    def test_worst_victim_is_adjacent_without_mutuals(self, setup):
        ex, bus = setup
        cap_only = crosstalk_analysis(ex, bus, aggressor="T4", sections=2,
                                      include_mutual=False)
        assert cap_only.worst_victim in ("T3", "T5")
