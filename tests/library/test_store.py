"""TableLibrary: content-addressed storage, queries, integrity."""

import json

import numpy as np
import pytest

from repro.errors import TableError
from repro.library.store import (
    SCHEMA_VERSION,
    TableLibrary,
    cache_key,
    canonical_json,
    open_library,
)
from repro.tables.lookup import ExtractionTable


def make_table(name="loop_inductance", quantity="loop_inductance", scale=1.0):
    return ExtractionTable(
        name=name,
        quantity=quantity,
        axis_names=("width", "length"),
        axes=[np.array([1e-6, 2e-6]), np.array([1e-3, 2e-3, 4e-3])],
        values=scale * np.arange(6, dtype=float).reshape(2, 3),
        metadata={"frequency": 3.2e9},
    )


KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


class TestCacheKey:
    def test_deterministic(self):
        spec = {"kind": "loop", "axes": [[1.0, 2.0]], "frequency": 3.2e9}
        assert cache_key(spec) == cache_key(dict(reversed(list(spec.items()))))

    def test_sensitive_to_values(self):
        base = {"kind": "loop", "axes": [[1.0, 2.0]], "frequency": 3.2e9}
        changed = dict(base, frequency=6.4e9)
        assert cache_key(base) != cache_key(changed)

    def test_numpy_and_tuple_canonicalization(self):
        a = {"axes": [np.array([1.0, 2.0])]}
        b = {"axes": [(1.0, 2.0)]}
        assert canonical_json(a) == canonical_json(b)

    def test_none_and_float_distinct(self):
        assert cache_key({"f": None}) != cache_key({"f": 0.0})

    def test_unhashable_object_rejected(self):
        with pytest.raises(TableError):
            cache_key({"bad": object()})


class TestPutGet:
    def test_put_then_get(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        lib.put(make_table(), key=KEY_A, frequency=3.2e9)
        table = lib.get(KEY_A)
        assert table.name == "loop_inductance"
        assert KEY_A in lib
        assert len(lib) == 1

    def test_reopen_lazy_load(self, tmp_path):
        root = tmp_path / "kit"
        TableLibrary(root).put(make_table(), key=KEY_A, frequency=3.2e9)
        lib = TableLibrary(root, create=False)
        # manifest-only until get(): blob parsed lazily
        assert KEY_A in lib
        assert lib._cache == {}
        lib.get(KEY_A)
        assert KEY_A in lib._cache

    def test_missing_key_raises(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        with pytest.raises(TableError):
            lib.get(KEY_A)

    def test_invalid_key_rejected(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        with pytest.raises(TableError):
            lib.put(make_table(), key="not-a-sha")

    def test_open_missing_without_create_raises(self, tmp_path):
        with pytest.raises(TableError):
            TableLibrary(tmp_path / "nope", create=False)

    def test_open_library_coerces(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        assert open_library(lib) is lib
        assert open_library(tmp_path / "kit").root == lib.root

    def test_entry_prefix_lookup(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        lib.put(make_table(), key=KEY_A)
        assert lib.entry("aaaa").key == KEY_A
        with pytest.raises(TableError):
            lib.entry("ffff")

    def test_schema_mismatch_rejected(self, tmp_path):
        root = tmp_path / "kit"
        TableLibrary(root)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(TableError):
            TableLibrary(root, create=False)


class TestQuery:
    def _populated(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        lib.put(make_table("m5_l", "loop_inductance"), key=KEY_A,
                layer="M5", family="fam1", frequency=3.2e9)
        lib.put(make_table("m6_l", "loop_inductance"), key=KEY_B,
                layer="M6", family="fam2", frequency=6.4e9)
        lib.put(make_table("m5_c", "capacitance_per_length"), key=KEY_C,
                layer="M5", family="fam1", frequency=None)
        return lib

    def test_by_quantity(self, tmp_path):
        lib = self._populated(tmp_path)
        assert len(lib.query(quantity="loop_inductance")) == 2

    def test_by_layer_and_quantity(self, tmp_path):
        lib = self._populated(tmp_path)
        hits = lib.query(quantity="loop_inductance", layer="M5")
        assert [e.key for e in hits] == [KEY_A]

    def test_by_frequency(self, tmp_path):
        lib = self._populated(tmp_path)
        assert [e.key for e in lib.query(frequency=6.4e9)] == [KEY_B]
        # tolerance: a float that is relatively within 1e-9
        assert lib.query(frequency=6.4e9 * (1 + 1e-12))[0].key == KEY_B

    def test_frequency_none_matches_only_frequencyless(self, tmp_path):
        lib = self._populated(tmp_path)
        assert [e.key for e in lib.query(frequency=None)] == [KEY_C]

    def test_by_family(self, tmp_path):
        lib = self._populated(tmp_path)
        assert {e.key for e in lib.query(family="fam1")} == {KEY_A, KEY_C}

    def test_get_one_none_when_missing(self, tmp_path):
        lib = self._populated(tmp_path)
        assert lib.get_one(quantity="mutual_inductance") is None

    def test_get_one_newest_wins(self, tmp_path):
        lib = self._populated(tmp_path)
        lib.put(make_table("newer", "loop_inductance", scale=2.0), key=KEY_B,
                layer="M6", family="fam2", frequency=3.2e9)
        lib._entries[KEY_B].created_at = lib._entries[KEY_A].created_at + 60.0
        got = lib.get_one(quantity="loop_inductance", frequency=3.2e9)
        assert got.name == "newer"


class TestVerify:
    def test_clean_library_ok(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        lib.put(make_table(), key=KEY_A)
        assert lib.verify() == []

    def test_corrupt_blob_detected(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        lib.put(make_table(), key=KEY_A)
        blob = lib.root / lib._entries[KEY_A].file
        blob.write_text(blob.read_text()[:-20])  # truncate
        problems = lib.verify()
        assert len(problems) == 1
        assert "mismatch" in problems[0]

    def test_missing_blob_detected(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        lib.put(make_table(), key=KEY_A)
        (lib.root / lib._entries[KEY_A].file).unlink()
        assert any("missing" in p for p in lib.verify())

    def test_orphan_blob_reported(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        (lib.tables_dir / ("d" * 64 + ".json")).write_text("{}")
        assert any("orphan" in p for p in lib.verify())

    def test_no_stray_temp_files(self, tmp_path):
        lib = TableLibrary(tmp_path / "kit")
        lib.put(make_table(), key=KEY_A)
        strays = [p for p in lib.root.rglob("*.tmp")]
        assert strays == []
