"""Acceptance: warm-library extraction does zero field-solver work.

Builds a small design-kit library for the default H-tree's CPW family,
then re-runs the extraction against it and asserts -- via the solver
invocation counters -- that not a single LoopProblem /
PartialInductanceSolver / FieldSolver2D call happens on the warm path.
Also exercises the interrupted-build resume on real field-solver jobs.
"""

import pytest

from repro import instrumentation
from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.constants import GHz, um
from repro.core.extraction import TableBasedExtractor
from repro.core.frequency import significant_frequency
from repro.errors import TableError
from repro.experiments.htree_skew import default_htree, run_htree_skew
from repro.library import (
    BuildRunner,
    TableLibrary,
    build_library,
    standard_clocktree_jobs,
)

WIDTHS = [um(6), um(10), um(14)]
LENGTHS = [um(500), um(1500), um(3000), um(5000)]
SPACINGS = [um(0.5), um(1), um(2)]


@pytest.fixture(scope="module")
def warm_library(tmp_path_factory):
    """A library covering the default H-tree's structure family."""
    root = tmp_path_factory.mktemp("kit")
    htree = default_htree()
    frequency = significant_frequency(htree.buffer.rise_time)
    jobs = standard_clocktree_jobs(
        htree.config, frequency=frequency,
        widths=WIDTHS, lengths=LENGTHS, spacings=SPACINGS,
        capacitance_grid=(50, 40),
    )
    build_library(root, jobs, parallel=False)
    return root, htree, frequency


class TestWarmExtraction:
    def test_warm_htree_extraction_zero_solver_calls(self, warm_library):
        root, htree, frequency = warm_library
        extractor = ClocktreeRLCExtractor(
            htree.config, frequency=frequency, library=root)
        assert extractor.inductance_table is not None
        assert extractor.resistance_table is not None
        assert extractor.capacitance_table is not None

        with instrumentation.solver_call_meter() as meter:
            for segment in htree.segments:
                rlc = extractor.segment_rlc_for(segment)
                assert rlc.inductance > 0.0
                assert rlc.resistance > 0.0
                assert rlc.capacitance > 0.0
            extractor.build_netlist(htree)
        assert meter.total == 0, (
            f"warm extraction performed solver calls: {meter.counts}"
        )

    def test_warm_full_experiment_zero_solver_calls(self, warm_library):
        root, htree, _ = warm_library
        with instrumentation.solver_call_meter() as meter:
            result = run_htree_skew(htree=htree, library=root)
        assert meter.total == 0, meter.counts
        assert result.rlc_skew > 0.0

    def test_cold_extraction_does_solve(self, warm_library):
        _, htree, frequency = warm_library
        cold = ClocktreeRLCExtractor(htree.config, frequency=frequency)
        with instrumentation.solver_call_meter() as meter:
            cold.segment_rlc(um(2000))
        assert meter.counts.get(instrumentation.LOOP_SOLVE, 0) >= 1

    def test_warm_matches_cold_within_spline_error(self, warm_library):
        root, htree, frequency = warm_library
        warm = ClocktreeRLCExtractor(
            htree.config, frequency=frequency, library=root)
        cold = ClocktreeRLCExtractor(htree.config, frequency=frequency)
        warm_rlc = warm.segment_rlc(um(2000))
        cold_rlc = cold.segment_rlc(um(2000))
        assert warm_rlc.inductance == pytest.approx(
            cold_rlc.inductance, rel=0.05)
        assert warm_rlc.resistance == pytest.approx(
            cold_rlc.resistance, rel=0.05)

    def test_table_based_extractor_from_library(self, warm_library):
        root, htree, frequency = warm_library
        tbe = TableBasedExtractor.from_library(root, htree.config, frequency)
        with instrumentation.solver_call_meter() as meter:
            value = tbe.loop_inductance(um(10), um(2000))
        assert value > 0.0
        assert meter.total == 0

    def test_from_library_missing_family_raises(self, warm_library, tmp_path):
        _, htree, frequency = warm_library
        TableLibrary(tmp_path / "empty")  # exists but has no tables
        with pytest.raises(TableError):
            TableBasedExtractor.from_library(
                tmp_path / "empty", htree.config, frequency)

    def test_other_family_not_matched(self, warm_library):
        root, htree, frequency = warm_library
        other = htree.config.with_signal_width(um(11))
        extractor = ClocktreeRLCExtractor(
            other, frequency=frequency, library=root)
        # different structure family -> no tables, falls back to solving
        assert extractor.inductance_table is None


class TestResumeWithRealJobs:
    def test_interrupted_field_solver_build_resumes(self, tmp_path):
        config = default_htree().config
        jobs = standard_clocktree_jobs(
            config, frequency=GHz(3.2),
            widths=[um(8), um(12)], lengths=[um(500), um(1500)],
        )
        (job,) = jobs
        interrupted_at = 2

        def interrupt(tick):
            if tick.done >= interrupted_at:
                raise KeyboardInterrupt

        runner = BuildRunner(tmp_path / "kit", parallel=False,
                             progress=interrupt)
        instrumentation.reset_solver_calls()
        with pytest.raises(KeyboardInterrupt):
            runner.build(jobs)
        first_pass = instrumentation.solver_call_count(
            instrumentation.LOOP_SOLVE)
        assert first_pass == interrupted_at
        checkpoint = runner.library.checkpoint_path(job.job_id)
        assert checkpoint.exists()

        # resume: only the remaining points are solved
        instrumentation.reset_solver_calls()
        stats = build_library(tmp_path / "kit", jobs, parallel=False)
        second_pass = instrumentation.solver_call_count(
            instrumentation.LOOP_SOLVE)
        assert second_pass == job.num_points() - interrupted_at
        assert stats.points_resumed == interrupted_at
        assert not checkpoint.exists()

        lib = TableLibrary(tmp_path / "kit", create=False)
        assert lib.verify() == []
        table = lib.get(job.table_key("loop_inductance"))
        assert table.lookup(width=um(10), length=um(1000)) > 0.0
