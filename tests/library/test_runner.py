"""BuildRunner: warm skips, checkpoints, interrupted-build resume."""

import json
from dataclasses import dataclass
from typing import Tuple

import pytest

from repro.errors import TableError
from repro.library.jobs import CharacterizationJob, JobOutput
from repro.library.runner import BuildRunner, build_library
from repro.library.store import TableLibrary

SOLVE_LOG = []


@dataclass(frozen=True)
class StubJob(CharacterizationJob):
    """A cheap deterministic job: value = width * length (+1 for 'r').

    Solves are recorded in SOLVE_LOG so tests can count exactly which
    grid points were computed (the resume assertions).
    """

    widths: Tuple[float, ...] = (1.0, 2.0, 3.0)
    lengths: Tuple[float, ...] = (10.0, 20.0)
    frequency: float = 1e9
    layer: str = "M1"
    fail_at: int = -1  # solve index that raises, -1 = never

    kind = "stub"

    def axis_names(self):
        return ("width", "length")

    def axes(self):
        return (self.widths, self.lengths)

    def outputs(self):
        return (JobOutput("stub_l", "loop_inductance"),
                JobOutput("stub_r", "loop_resistance"))

    def builder_spec(self):
        return {"builder": "stub"}

    def table_metadata(self):
        return {"frequency": self.frequency}

    def solve_point(self, point):
        SOLVE_LOG.append(point)
        if 0 <= self.fail_at == len(SOLVE_LOG) - 1:
            raise RuntimeError("simulated solver crash")
        width, length = point
        return (width * length, width * length + 1.0)


@pytest.fixture(autouse=True)
def clear_log():
    SOLVE_LOG.clear()
    yield
    SOLVE_LOG.clear()


class TestSerialBuild:
    def test_build_stores_all_tables(self, tmp_path):
        job = StubJob()
        stats = build_library(tmp_path / "kit", [job], parallel=False)
        assert stats.points_solved == 6
        assert stats.jobs_skipped == 0
        lib = TableLibrary(tmp_path / "kit", create=False)
        l_table = lib.get(job.table_key("stub_l"))
        assert l_table.lookup(width=2.0, length=20.0) == pytest.approx(40.0)
        r_table = lib.get(job.table_key("stub_r"))
        assert r_table.lookup(width=2.0, length=20.0) == pytest.approx(41.0)
        assert lib.verify() == []

    def test_entry_carries_layer_family_frequency(self, tmp_path):
        job = StubJob()
        build_library(tmp_path / "kit", [job], parallel=False)
        lib = TableLibrary(tmp_path / "kit", create=False)
        entry = lib.entry(job.table_key("stub_l"))
        assert entry.layer == "M1"
        assert entry.frequency == pytest.approx(1e9)
        assert entry.job_id == job.job_id

    def test_checkpoint_removed_after_success(self, tmp_path):
        job = StubJob()
        runner = BuildRunner(tmp_path / "kit", parallel=False)
        runner.build([job])
        assert not runner.library.checkpoint_path(job.job_id).exists()

    def test_warm_rebuild_skips_everything(self, tmp_path):
        job = StubJob()
        build_library(tmp_path / "kit", [job], parallel=False)
        SOLVE_LOG.clear()
        stats = build_library(tmp_path / "kit", [job], parallel=False)
        assert stats.jobs_skipped == 1
        assert stats.points_solved == 0
        assert SOLVE_LOG == []

    def test_changed_grid_is_cold(self, tmp_path):
        build_library(tmp_path / "kit", [StubJob()], parallel=False)
        SOLVE_LOG.clear()
        stats = build_library(tmp_path / "kit",
                              [StubJob(widths=(1.0, 2.0, 4.0))],
                              parallel=False)
        assert stats.jobs_skipped == 0
        assert len(SOLVE_LOG) == 6

    def test_progress_callback_ticks(self, tmp_path):
        ticks = []
        build_library(tmp_path / "kit", [StubJob()], parallel=False,
                      progress=ticks.append)
        assert [t.done for t in ticks] == [1, 2, 3, 4, 5, 6]
        assert all(t.total == 6 for t in ticks)

    def test_invalid_workers_rejected(self, tmp_path):
        with pytest.raises(TableError):
            BuildRunner(tmp_path / "kit", workers=0)


class TestResume:
    def _interrupt_after(self, n):
        def progress(tick):
            if tick.done >= n:
                raise KeyboardInterrupt

        return progress

    def test_interrupted_build_resumes_remaining_only(self, tmp_path):
        job = StubJob()
        runner = BuildRunner(tmp_path / "kit", parallel=False,
                             progress=self._interrupt_after(4))
        with pytest.raises(KeyboardInterrupt):
            runner.build([job])
        assert len(SOLVE_LOG) == 4
        checkpoint = runner.library.checkpoint_path(job.job_id)
        assert checkpoint.exists()
        assert len(checkpoint.read_text().splitlines()) == 4

        SOLVE_LOG.clear()
        stats = build_library(tmp_path / "kit", [job], parallel=False)
        # only the 2 unsolved points are recomputed
        assert len(SOLVE_LOG) == 2
        assert stats.points_resumed == 4
        assert stats.points_solved == 2
        lib = TableLibrary(tmp_path / "kit", create=False)
        table = lib.get(job.table_key("stub_l"))
        assert table.lookup(width=3.0, length=20.0) == pytest.approx(60.0)
        assert not checkpoint.exists()

    def test_solver_crash_keeps_checkpoint(self, tmp_path):
        job = StubJob(fail_at=3)
        runner = BuildRunner(tmp_path / "kit", parallel=False)
        with pytest.raises(RuntimeError):
            runner.build([job])
        checkpoint = runner.library.checkpoint_path(job.job_id)
        assert len(checkpoint.read_text().splitlines()) == 3

        SOLVE_LOG.clear()
        stats = build_library(tmp_path / "kit", [StubJob()], parallel=False)
        assert stats.points_resumed == 3
        assert stats.points_solved == 3

    def test_torn_trailing_line_tolerated(self, tmp_path):
        job = StubJob()
        runner = BuildRunner(tmp_path / "kit", parallel=False,
                             progress=self._interrupt_after(3))
        with pytest.raises(KeyboardInterrupt):
            runner.build([job])
        checkpoint = runner.library.checkpoint_path(job.job_id)
        # simulate a crash mid-append: truncate the final line
        text = checkpoint.read_text()
        checkpoint.write_text(text[:-10])

        SOLVE_LOG.clear()
        stats = build_library(tmp_path / "kit", [job], parallel=False)
        # 2 intact checkpoint lines survive; 4 points resolved
        assert stats.points_resumed == 2
        assert stats.points_solved == 4
        lib = TableLibrary(tmp_path / "kit", create=False)
        assert lib.verify() == []

    def test_stale_out_of_range_indices_ignored(self, tmp_path):
        job = StubJob()
        runner = BuildRunner(tmp_path / "kit", parallel=False)
        checkpoint = runner.library.checkpoint_path(job.job_id)
        checkpoint.parent.mkdir(parents=True, exist_ok=True)
        checkpoint.write_text(
            json.dumps({"i": 99, "v": [1.0, 2.0]}) + "\n"
            + json.dumps({"i": 0, "v": [1.0]}) + "\n"  # wrong arity
            + "not json\n"
        )
        stats = runner.build([job])
        assert stats.points_resumed == 0
        assert stats.points_solved == 6


class TestParallelBuild:
    def test_parallel_matches_serial(self, tmp_path):
        job = StubJob()
        build_library(tmp_path / "serial", [job], parallel=False)
        build_library(tmp_path / "par", [job], workers=2, parallel=True)
        serial = TableLibrary(tmp_path / "serial", create=False)
        par = TableLibrary(tmp_path / "par", create=False)
        key = job.table_key("stub_l")
        import numpy as np

        np.testing.assert_allclose(serial.get(key).values,
                                   par.get(key).values)
        assert par.verify() == []

    def test_single_worker_skips_process_pool(self, tmp_path):
        # workers=1 must run in-process: the solves then hit the
        # module-global SOLVE_LOG of *this* process, which a pool worker
        # (separate interpreter) never would.
        runner = BuildRunner(tmp_path / "kit", workers=1, parallel=True)
        assert runner.parallel is False
        assert runner.effective_workers == 1
        runner.build([StubJob()])
        assert len(SOLVE_LOG) == 6

    def test_chunk_size_validation(self, tmp_path):
        with pytest.raises(TableError):
            BuildRunner(tmp_path / "kit", chunk_size=0)

    def test_chunked_parallel_build_solves_every_point(self, tmp_path):
        job = StubJob()
        stats = build_library(tmp_path / "kit", [job], workers=2)
        assert stats.points_solved == 6
        lib = TableLibrary(tmp_path / "kit", create=False)
        table = lib.get(job.table_key("stub_l"))
        assert table.lookup(width=2.0, length=10.0) == pytest.approx(20.0)
        assert lib.verify() == []

    def test_explicit_chunk_size_matches_serial(self, tmp_path):
        job = StubJob()
        build_library(tmp_path / "serial", [job], parallel=False)
        runner = BuildRunner(tmp_path / "chunk", workers=2, chunk_size=4)
        runner.build([job])
        import numpy as np

        key = job.table_key("stub_r")
        np.testing.assert_allclose(
            TableLibrary(tmp_path / "serial", create=False).get(key).values,
            TableLibrary(tmp_path / "chunk", create=False).get(key).values,
        )


class TestChunking:
    def test_contiguous_cover(self):
        from repro.library.runner import _chunk_indices

        remaining = [0, 1, 2, 5, 6, 7, 8]
        chunks = _chunk_indices(remaining, 3)
        assert [i for c in chunks for i in c] == remaining
        assert 1 <= len(chunks) <= 3

    def test_more_chunks_than_points(self):
        from repro.library.runner import _chunk_indices

        chunks = _chunk_indices([4, 9], 8)
        assert chunks == [[4], [9]]

    def test_solve_points_default_loops_solve_point(self):
        job = StubJob()
        points = job.points()[:3]
        assert job.solve_points(points) == [job.solve_point(p) for p in points]
