"""CharacterizationJob specs: keys, grids, assembly, picklability."""

import pickle

import numpy as np
import pytest

from repro.clocktree.configs import CoplanarWaveguideConfig, MicrostripConfig
from repro.constants import GHz, um
from repro.errors import TableError
from repro.library.jobs import (
    LoopTableJob,
    MutualLoopJob,
    PartialMutualInductanceJob,
    PartialSelfInductanceJob,
    ThreeTraceCapacitanceJob,
    TotalCapacitanceJob,
    config_fingerprint,
    standard_clocktree_jobs,
)


def cpw(**overrides):
    params = dict(signal_width=um(10), ground_width=um(5), spacing=um(1),
                  thickness=um(2), height_below=um(2))
    params.update(overrides)
    return CoplanarWaveguideConfig(**params)


def loop_job(**overrides):
    params = dict(config=cpw(), frequency=GHz(3.2),
                  widths=(um(6), um(10), um(14)),
                  lengths=(um(500), um(2000), um(6000)))
    params.update(overrides)
    return LoopTableJob(**params)


class TestCacheKeys:
    def test_job_id_deterministic(self):
        assert loop_job().job_id == loop_job().job_id

    def test_job_id_sensitive_to_frequency(self):
        assert loop_job().job_id != loop_job(frequency=GHz(6.4)).job_id

    def test_job_id_sensitive_to_grid(self):
        other = loop_job(widths=(um(6), um(10), um(16)))
        assert loop_job().job_id != other.job_id

    def test_job_id_sensitive_to_config(self):
        other = loop_job(config=cpw(ground_width=um(6)))
        assert loop_job().job_id != other.job_id

    def test_table_keys_distinct_per_output(self):
        keys = loop_job().table_keys()
        assert set(keys) == {"loop_inductance", "loop_resistance"}
        assert len(set(keys.values())) == 2

    def test_unknown_output_rejected(self):
        with pytest.raises(TableError):
            loop_job().table_key("nonsense")

    def test_family_fingerprint_tracks_config_not_grid(self):
        assert loop_job().family == loop_job(widths=(um(4), um(8))).family
        assert loop_job().family == config_fingerprint(cpw())
        assert loop_job().family != config_fingerprint(cpw(spacing=um(2)))


class TestGrid:
    def test_points_row_major(self):
        job = loop_job(widths=(um(6), um(10)), lengths=(um(500), um(2000)))
        assert job.points() == [
            (um(6), um(500)), (um(6), um(2000)),
            (um(10), um(500)), (um(10), um(2000)),
        ]
        assert job.shape() == (2, 2)
        assert job.num_points() == 4

    def test_axis_validation_applies(self):
        with pytest.raises(TableError):
            loop_job(widths=(um(10), um(6)))  # not increasing
        with pytest.raises(TableError):
            loop_job(widths=(um(10),))  # too short

    def test_positive_frequency_required(self):
        with pytest.raises(TableError):
            loop_job(frequency=0.0)


class TestAssembly:
    def test_assemble_shapes_and_metadata(self):
        job = loop_job(widths=(um(6), um(10)), lengths=(um(500), um(2000)))
        values = [[float(i), 10.0 + i] for i in range(4)]
        l_table, r_table = job.assemble(values)
        assert l_table.quantity == "loop_inductance"
        assert r_table.quantity == "loop_resistance"
        np.testing.assert_array_equal(
            l_table.values, np.array([[0.0, 1.0], [2.0, 3.0]]))
        np.testing.assert_array_equal(
            r_table.values, np.array([[10.0, 11.0], [12.0, 13.0]]))
        lib_meta = l_table.metadata["library"]
        assert lib_meta["job_id"] == job.job_id
        assert lib_meta["table_key"] == job.table_key("loop_inductance")
        assert lib_meta["family"] == job.family

    def test_assemble_wrong_count_rejected(self):
        job = loop_job(widths=(um(6), um(10)), lengths=(um(500), um(2000)))
        with pytest.raises(TableError):
            job.assemble([[1.0, 2.0]] * 3)

    def test_assemble_wrong_width_rejected(self):
        job = loop_job(widths=(um(6), um(10)), lengths=(um(500), um(2000)))
        with pytest.raises(TableError):
            job.assemble([[1.0]] * 4)


class TestPicklability:
    def test_every_job_kind_pickles(self):
        micro = MicrostripConfig(signal_width=um(4), thickness=um(1),
                                 plane_gap=um(2))
        jobs = [
            loop_job(),
            MutualLoopJob(config=micro, frequency=GHz(3.2),
                          separations=(um(2), um(6)),
                          lengths=(um(500), um(2000))),
            PartialSelfInductanceJob(thickness=um(1),
                                     widths=(um(1), um(2)),
                                     lengths=(um(100), um(500))),
            PartialMutualInductanceJob(thickness=um(1),
                                       widths1=(um(1), um(2)),
                                       widths2=(um(1), um(2)),
                                       spacings=(um(1), um(3)),
                                       lengths=(um(100), um(500))),
            ThreeTraceCapacitanceJob(height_below=um(2), thickness=um(1),
                                     widths=(um(1), um(2)),
                                     spacings=(um(1), um(2))),
            TotalCapacitanceJob(config=cpw(), widths=(um(6), um(10)),
                                spacings=(um(1), um(2))),
        ]
        for job in jobs:
            clone = pickle.loads(pickle.dumps(job))
            assert clone.job_id == job.job_id

    def test_roundtripped_job_solves(self):
        job = PartialSelfInductanceJob(
            thickness=um(1), widths=(um(1), um(2)), lengths=(um(100), um(500)))
        clone = pickle.loads(pickle.dumps(job))
        (value,) = clone.solve_point((um(1), um(100)))
        assert value > 0.0


class TestSolvePoints:
    def test_loop_point_matches_builder_semantics(self):
        job = loop_job(widths=(um(6), um(10)), lengths=(um(500), um(2000)))
        inductance, resistance = job.solve_point((um(10), um(2000)))
        problem = cpw().loop_problem(um(10), um(2000))
        r_direct, l_direct = problem.loop_rl(GHz(3.2))
        assert inductance == pytest.approx(l_direct)
        assert resistance == pytest.approx(r_direct)

    def test_total_cap_point_positive(self):
        job = TotalCapacitanceJob(config=cpw(), widths=(um(6), um(10)),
                                  spacings=(um(1), um(2)), nx=40, nz=30)
        (cap,) = job.solve_point((um(10), um(1)))
        assert cap > 0.0

    def test_standard_jobs_cover_extractor_needs(self):
        jobs = standard_clocktree_jobs(
            cpw(), frequency=GHz(3.2),
            widths=[um(6), um(10)], lengths=[um(500), um(2000)],
            spacings=[um(1), um(2)],
        )
        quantities = {o.quantity for job in jobs for o in job.outputs()}
        assert quantities == {
            "loop_inductance", "loop_resistance", "capacitance_per_length",
        }
