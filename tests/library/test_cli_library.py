"""The `repro library` command-line surface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_build_requires_root(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["library", "build"])

    def test_library_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["library"])

    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (
            ["library", "build", "--root", "kit"],
            ["library", "list", "--root", "kit"],
            ["library", "info", "--root", "kit", "abc123"],
            ["library", "verify", "--root", "kit"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_skew_accepts_library(self):
        args = build_parser().parse_args(["skew", "--library", "kit"])
        assert args.library == "kit"


class TestExecution:
    @pytest.fixture()
    def built_root(self, tmp_path, capsys):
        root = tmp_path / "kit"
        code = main([
            "library", "build", "--root", str(root),
            "--widths", "6", "10", "--lengths", "500", "2000",
            "--frequency", "3.2", "--layer", "M5", "--serial", "--quiet",
        ])
        assert code == 0
        capsys.readouterr()
        return root

    def test_build_then_list(self, built_root, capsys):
        assert main(["library", "list", "--root", str(built_root)]) == 0
        out = capsys.readouterr().out
        assert "loop_inductance" in out
        assert "loop_resistance" in out
        assert "M5" in out

    def test_rebuild_is_warm(self, built_root, capsys):
        code = main([
            "library", "build", "--root", str(built_root),
            "--widths", "6", "10", "--lengths", "500", "2000",
            "--frequency", "3.2", "--layer", "M5", "--serial", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 warm-skipped" in out
        assert "0 point(s) solved" in out

    def test_info_by_prefix(self, built_root, capsys):
        from repro.library import TableLibrary

        lib = TableLibrary(built_root, create=False)
        key = lib.query(quantity="loop_inductance")[0].key
        assert main(["library", "info", "--root", str(built_root),
                     key[:10]]) == 0
        out = capsys.readouterr().out
        assert "loop_inductance" in out
        assert key in out

    def test_verify_clean(self, built_root, capsys):
        assert main(["library", "verify", "--root", str(built_root)]) == 0
        assert "library OK" in capsys.readouterr().out

    def test_verify_detects_corruption(self, built_root, capsys):
        blob = next((built_root / "tables").glob("*.json"))
        blob.write_text(blob.read_text()[:-30])
        assert main(["library", "verify", "--root", str(built_root)]) == 1
        assert "mismatch" in capsys.readouterr().out
