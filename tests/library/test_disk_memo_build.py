"""Cross-process memo persistence during characterization builds.

The acceptance claim of the persistent shard: a *second* build -- even
in a fresh process -- replays the first build's Hoer-Love evaluations
from disk instead of recomputing them.  A fresh process is simulated by
clearing the process-wide memo between builds; the counters then show a
>= 90% memo hit rate and an order-of-magnitude drop in kernel pair
evaluations on the warm build.
"""

import json

import pytest

from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.constants import GHz, um
from repro.library import LoopTableJob, build_library
from repro.peec.kernel import lp_memo_cache
from repro.telemetry import (
    LP_DISK_MEMO_FLUSH,
    LP_DISK_MEMO_WARM,
    LP_MEMO_HIT,
    LP_MEMO_MISS,
    LP_PAIR_EVAL,
    get_registry,
)


def _job():
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    return LoopTableJob(
        config=config, frequency=GHz(6.4),
        widths=(um(8), um(10)), lengths=(um(500), um(1000)),
        n_width=3, n_thickness=2,
    )


@pytest.fixture(autouse=True)
def _fresh_memo_and_registry():
    cache = lp_memo_cache()
    cache.clear()
    cache.reset_stats()
    get_registry().reset()
    yield
    cache.clear()
    get_registry().reset()


def counter(name):
    return get_registry().counter_value(name)


def test_second_build_replays_shard_with_high_hit_rate(tmp_path):
    shard = tmp_path / "memo.json"
    job = _job()

    build_library(tmp_path / "kit-cold", [job], parallel=False,
                  disk_memo=shard)
    cold_evals = counter(LP_PAIR_EVAL)
    assert cold_evals > 0
    assert shard.exists()
    flushed = counter(LP_DISK_MEMO_FLUSH)
    assert flushed > 0

    # Simulate a fresh process: drop the in-memory memo entirely.
    lp_memo_cache().clear()
    lp_memo_cache().reset_stats()
    get_registry().reset()

    build_library(tmp_path / "kit-warm", [job], parallel=False,
                  disk_memo=shard)

    warmed = counter(LP_DISK_MEMO_WARM)
    assert warmed > 0, "warm build must load the shard"
    hits = counter(LP_MEMO_HIT)
    misses = counter(LP_MEMO_MISS)
    hit_rate = hits / (hits + misses)
    assert hit_rate >= 0.9, (
        f"disk-warmed build hit rate {hit_rate:.1%}; expected >= 90%"
    )
    # The assembly work measurably shrinks: almost every pair value is
    # replayed from the shard instead of re-evaluated.
    warm_evals = counter(LP_PAIR_EVAL)
    assert warm_evals <= 0.1 * cold_evals, (
        f"warm build evaluated {warm_evals} pairs vs {cold_evals} cold"
    )


def test_shard_is_valid_json_document(tmp_path):
    shard = tmp_path / "memo.json"
    build_library(tmp_path / "kit", [_job()], parallel=False,
                  disk_memo=shard)
    document = json.loads(shard.read_text())
    assert document["version"] == 1
    assert len(document["entries"]) == counter(LP_DISK_MEMO_FLUSH)


def test_build_without_disk_memo_touches_no_shard(tmp_path):
    build_library(tmp_path / "kit", [_job()], parallel=False)
    assert counter(LP_DISK_MEMO_WARM) == 0
    assert counter(LP_DISK_MEMO_FLUSH) == 0
    assert list(tmp_path.glob("*.json")) == []


def test_parallel_workers_warm_and_flush_shard(tmp_path):
    """Pool workers warm from and flush to the shard; the counters ride
    back on the chunk metric deltas, not the parent registry."""
    shard = tmp_path / "memo.json"
    job = _job()
    build_library(tmp_path / "kit-seed", [job], parallel=False,
                  disk_memo=shard)
    get_registry().reset()
    lp_memo_cache().clear()

    stats = build_library(tmp_path / "kit-pool", [job], parallel=True,
                          workers=2, disk_memo=shard)

    worker = stats.worker_metrics
    if worker is None:
        pytest.skip("pool degraded to serial in this environment")
    assert worker.counter(LP_DISK_MEMO_WARM) > 0
    assert worker.counter(LP_DISK_MEMO_FLUSH) > 0
    # Workers replayed the seeded shard rather than re-evaluating.
    lookups = worker.counter(LP_MEMO_HIT) + worker.counter(LP_MEMO_MISS)
    assert worker.counter(LP_MEMO_HIT) / lookups >= 0.9
