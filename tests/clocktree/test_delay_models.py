"""Analytic delay models against transient simulation."""

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource
from repro.circuit.transient import transient_analysis
from repro.clocktree.delay_models import (
    damping_factor,
    elmore_delay,
    rlc_delay,
    segment_delay,
)
from repro.clocktree.extractor import SegmentRLC
from repro.errors import CircuitError


def simulated_step_delay(r, l, c, rs, cl, include_l=True):
    """Reference 50 % delay of a 5-section ladder driven by a step."""
    circuit = Circuit()
    circuit.add_voltage_source(
        "V1", "src", "0", PulseSource(0, 1.0, rise=1e-13, width=1.0)
    )
    circuit.add_resistor("Rs", "src", "n0", rs)
    sections = 5
    for k in range(sections):
        circuit.add_capacitor(f"Ca{k}", f"n{k}", "0", c / sections / 2)
        if include_l:
            circuit.add_resistor(f"R{k}", f"n{k}", f"m{k}", r / sections)
            circuit.add_inductor(f"L{k}", f"m{k}", f"n{k + 1}", l / sections)
        else:
            circuit.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", r / sections)
        circuit.add_capacitor(f"Cb{k}", f"n{k + 1}", "0", c / sections / 2)
    circuit.add_capacitor("CL", f"n{sections}", "0", cl)
    flight = np.sqrt(max(l, 1e-12) * (c + cl))
    t_stop = max(40 * (rs + r) * (c + cl), 20 * flight)
    result = transient_analysis(circuit, t_stop=t_stop, dt=t_stop / 8000)
    crossing = result.voltage(f"n{sections}").threshold_crossing(0.5)
    assert crossing is not None
    return crossing


class TestElmore:
    def test_matches_rc_simulation(self):
        r, c, rs, cl = 20.0, 2e-12, 40.0, 50e-15
        estimate = elmore_delay(r, c, rs, cl)
        reference = simulated_step_delay(r, 0.0, c, rs, cl, include_l=False)
        assert estimate == pytest.approx(reference, rel=0.15)

    def test_zero_when_no_parasitics(self):
        assert elmore_delay(0.0, 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(CircuitError):
            elmore_delay(-1.0, 1e-12)


class TestDampingFactor:
    def test_overdamped_case(self):
        # big driver into small L: zeta >> 1
        zeta = damping_factor(10.0, 0.1e-9, 2e-12, drive_resistance=200.0)
        assert zeta > 3.0

    def test_underdamped_case(self):
        # strong driver into a high-Z0 line: zeta < 1
        zeta = damping_factor(5.0, 2e-9, 1e-12, drive_resistance=10.0)
        assert zeta < 1.0

    def test_rejects_nonpositive_inductance(self):
        with pytest.raises(CircuitError):
            damping_factor(1.0, 0.0, 1e-12)


class TestRLCDelay:
    def test_matches_underdamped_simulation(self):
        r, l, c, rs, cl = 10.0, 1.5e-9, 1.5e-12, 15.0, 20e-15
        estimate = rlc_delay(r, l, c, rs, cl)
        reference = simulated_step_delay(r, l, c, rs, cl)
        assert estimate == pytest.approx(reference, rel=0.25)

    def test_matches_overdamped_simulation(self):
        r, l, c, rs, cl = 20.0, 0.2e-9, 2e-12, 100.0, 50e-15
        estimate = rlc_delay(r, l, c, rs, cl)
        reference = simulated_step_delay(r, l, c, rs, cl)
        assert estimate == pytest.approx(reference, rel=0.25)

    def test_floors_at_flight_time(self):
        # nearly lossless line: delay ~ time of flight, not Elmore
        l, c = 2e-9, 2e-12
        flight = np.sqrt(l * c)
        estimate = rlc_delay(0.5, l, c, drive_resistance=1.0)
        assert 0.5 * flight < estimate < 3.0 * flight

    def test_reduces_to_elmore_without_inductance(self):
        assert rlc_delay(10.0, 0.0, 1e-12, 40.0) == pytest.approx(
            elmore_delay(10.0, 1e-12, 40.0)
        )

    def test_inductance_increases_delay_when_underdamped(self):
        rc_est = elmore_delay(10.0, 1.5e-12, 15.0, 20e-15)
        rlc_est = rlc_delay(10.0, 1.5e-9, 1.5e-12, 15.0, 20e-15)
        assert rlc_est > rc_est


class TestSegmentDelay:
    def test_uses_extracted_totals(self):
        rlc = SegmentRLC(length=1e-3, resistance=12.0, inductance=1e-9,
                         capacitance=1e-12)
        with_l = segment_delay(rlc, drive_resistance=15.0,
                               load_capacitance=30e-15)
        without_l = segment_delay(rlc, drive_resistance=15.0,
                                  load_capacitance=30e-15,
                                  include_inductance=False)
        assert with_l > 0 and without_l > 0
        assert with_l != without_l
