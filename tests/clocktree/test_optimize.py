"""Clocktree width optimization on extraction tables."""

import pytest

from repro.constants import GHz, fF, ps, um
from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.htree import HTree
from repro.clocktree.optimize import WidthOptimizer
from repro.core.extraction import TableBasedExtractor
from repro.errors import GeometryError


@pytest.fixture(scope="module")
def extractor():
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    return TableBasedExtractor.characterize(
        config, frequency=GHz(6.4),
        widths=[um(2), um(6), um(10), um(16)],
        lengths=[um(500), um(1000), um(2000), um(4000)],
    )


def make_tree(drive=25.0):
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    buffer = ClockBuffer(drive_resistance=drive, input_capacitance=fF(30),
                         supply=1.8, rise_time=ps(50))
    return HTree.generate(levels=2, root_length=um(3000), config=config,
                          buffer=buffer, sink_capacitance=fF(50))


class TestPathDelay:
    def test_positive_delay(self, extractor):
        optimizer = WidthOptimizer(extractor)
        candidate = optimizer.path_delay(make_tree(), um(8))
        assert candidate.path_delay > 0
        assert candidate.worst_damping > 0

    def test_weak_drive_is_damped(self, extractor):
        optimizer = WidthOptimizer(extractor)
        weak = optimizer.path_delay(make_tree(drive=120.0), um(8))
        assert not weak.rings

    def test_strong_drive_rings(self, extractor):
        optimizer = WidthOptimizer(extractor)
        strong = optimizer.path_delay(make_tree(drive=5.0), um(8))
        assert strong.rings


class TestOptimize:
    def test_best_minimizes_delay(self, extractor):
        optimizer = WidthOptimizer(extractor)
        result = optimizer.optimize(make_tree(),
                                    widths=[um(3), um(6), um(10), um(14)])
        delays = [c.path_delay for c in result.candidates]
        assert result.best.path_delay == pytest.approx(min(delays))

    def test_default_width_grid_from_table(self, extractor):
        optimizer = WidthOptimizer(extractor)
        result = optimizer.optimize(make_tree())
        assert len(result.candidates) == 12
        axis = extractor.inductance_table.axes[0]
        assert result.candidates[0].width == pytest.approx(axis[0])
        assert result.candidates[-1].width == pytest.approx(axis[-1])

    def test_damping_constraint(self, extractor):
        optimizer = WidthOptimizer(extractor)
        tree = make_tree(drive=60.0)
        constrained = optimizer.optimize(tree, require_damped=True)
        assert not constrained.best.rings

    def test_impossible_constraint_raises(self, extractor):
        optimizer = WidthOptimizer(extractor)
        tree = make_tree(drive=2.0)   # everything rings
        with pytest.raises(GeometryError):
            optimizer.optimize(tree, require_damped=True)

    def test_delay_of_lookup(self, extractor):
        optimizer = WidthOptimizer(extractor)
        result = optimizer.optimize(make_tree(),
                                    widths=[um(4), um(8), um(12)])
        assert result.delay_of(um(8)) == pytest.approx(
            next(c.path_delay for c in result.candidates
                 if c.width == pytest.approx(um(8)))
        )
