"""H-tree generation (Fig. 7)."""

import pytest

from repro.constants import um
from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.htree import HTree
from repro.errors import CircuitError, GeometryError


def config():
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


def tree(levels=2, **kwargs):
    return HTree.generate(levels=levels, root_length=um(4000),
                          config=config(), **kwargs)


class TestBuffer:
    def test_significant_frequency(self):
        buffer = ClockBuffer(rise_time=100e-12)
        assert buffer.significant_frequency == pytest.approx(3.2e9)

    @pytest.mark.parametrize("kwargs", [
        {"drive_resistance": 0.0},
        {"input_capacitance": -1e-15},
        {"supply": 0.0},
        {"rise_time": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(CircuitError):
            ClockBuffer(**kwargs)


class TestGeneration:
    def test_sink_count_doubles_per_level(self):
        assert tree(levels=1).num_sinks == 2
        assert tree(levels=2).num_sinks == 4
        assert tree(levels=3).num_sinks == 8

    def test_segment_count(self):
        # binary tree: 2 + 4 + ... + 2^levels
        assert len(tree(levels=3).segments) == 2 + 4 + 8

    def test_lengths_halve_by_default(self):
        t = tree(levels=2)
        root = t.segment("s_L")
        child = t.segment("s_LL")
        assert child.length == pytest.approx(root.length / 2)

    def test_custom_ratio(self):
        t = tree(levels=2, length_ratio=0.7)
        assert t.segment("s_LL").length == pytest.approx(um(4000) * 0.7)

    def test_orientation_alternates(self):
        t = tree(levels=2)
        assert t.segment("s_L").axis == "x"
        assert t.segment("s_LL").axis == "y"

    def test_mirror_symmetry_positions(self):
        t = tree(levels=1)
        left = t.segment("s_L")
        right = t.segment("s_R")
        assert left.end[0] == pytest.approx(-right.end[0])

    def test_children_start_at_parent_end(self):
        t = tree(levels=2)
        parent = t.segment("s_L")
        child = t.segment("s_LL")
        assert child.start == parent.end

    def test_branch_scale_asymmetry(self):
        t = tree(levels=2, branch_scale={"s_LL": 1.5})
        assert t.segment("s_LL").length == pytest.approx(
            1.5 * t.segment("s_LR").length
        )

    @pytest.mark.parametrize("kwargs", [
        {"levels": 0},
        {"root_length": 0.0},
        {"length_ratio": 0.0},
        {"length_ratio": 1.5},
    ])
    def test_invalid_generation(self, kwargs):
        defaults = dict(levels=2, root_length=um(1000), config=config())
        defaults.update(kwargs)
        with pytest.raises(GeometryError):
            HTree.generate(**defaults)


class TestQueries:
    def test_roots_and_leaves(self):
        t = tree(levels=2)
        assert {s.name for s in t.roots()} == {"s_L", "s_R"}
        assert {s.name for s in t.leaves()} == {"s_LL", "s_LR", "s_RL", "s_RR"}

    def test_total_wire_length(self):
        t = tree(levels=2)
        expected = 2 * um(4000) + 4 * um(2000)
        assert t.total_wire_length() == pytest.approx(expected)

    def test_path_to_root(self):
        t = tree(levels=3)
        path = [s.name for s in t.path_to_root("s_LRL")]
        assert path == ["s_LRL", "s_LR", "s_L"]

    def test_num_levels(self):
        assert tree(levels=3).num_levels == 3

    def test_unknown_segment(self):
        with pytest.raises(GeometryError):
            tree().segment("s_XX")
