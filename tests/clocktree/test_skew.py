"""Clocktree skew simulation and the RC-vs-RLC comparison."""

import pytest

from repro.constants import GHz, fF, ps, um
from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.clocktree.htree import HTree
from repro.clocktree.skew import compare_rc_vs_rlc, simulate_clocktree
from repro.errors import CircuitError


def config():
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


def strong_buffer():
    return ClockBuffer(drive_resistance=15.0, input_capacitance=fF(30),
                       supply=1.8, rise_time=ps(50))


def make_tree(branch_scale=None, levels=1):
    return HTree.generate(
        levels=levels, root_length=um(3000), config=config(),
        buffer=strong_buffer(), sink_capacitance=fF(50),
        branch_scale=branch_scale,
    )


def make_extractor():
    return ClocktreeRLCExtractor(config(), frequency=GHz(6.4))


class TestSimulation:
    @pytest.fixture(scope="class")
    def symmetric_result(self):
        netlist = make_extractor().build_netlist(make_tree())
        return simulate_clocktree(netlist, supply=1.8, t_stop=ps(2000), dt=ps(0.5))

    def test_all_sinks_measured(self, symmetric_result):
        assert set(symmetric_result.arrivals) == {"s_L", "s_R"}

    def test_symmetric_tree_zero_skew(self, symmetric_result):
        assert symmetric_result.skew < ps(0.1)

    def test_delays_positive(self, symmetric_result):
        for delay in symmetric_result.delays.values():
            assert delay > 0

    def test_sink_waveform_access(self, symmetric_result):
        wave = symmetric_result.sink_waveform("s_L")
        assert wave.final_value == pytest.approx(1.8, rel=0.05)

    def test_too_short_simulation_raises(self):
        netlist = make_extractor().build_netlist(make_tree())
        with pytest.raises(CircuitError):
            simulate_clocktree(netlist, supply=1.8, t_stop=ps(20), dt=ps(0.5))


class TestAsymmetricSkew:
    @pytest.fixture(scope="class")
    def comparison(self):
        tree = make_tree(branch_scale={"s_L": 1.4})
        return compare_rc_vs_rlc(
            make_extractor(), tree, t_stop=ps(3000), dt=ps(0.5)
        )

    def test_asymmetry_creates_skew(self, comparison):
        assert comparison.rlc.skew > ps(1)

    def test_stretched_branch_arrives_later(self, comparison):
        delays = comparison.rlc.delays
        assert delays["s_L"] > delays["s_R"]

    def test_rc_netlist_underestimates_delay(self, comparison):
        # inductive flight time is missing from the RC netlist
        assert comparison.rlc.max_delay > comparison.rc.max_delay

    def test_skew_discrepancy_exceeds_10_percent(self, comparison):
        # the paper's headline claim for this regime
        assert comparison.skew_discrepancy > 0.10

    def test_per_sink_errors_positive(self, comparison):
        errors = comparison.per_sink_delay_errors()
        assert set(errors) == {"s_L", "s_R"}
        assert all(e > 0 for e in errors.values())
