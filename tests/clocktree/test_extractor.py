"""Per-segment extraction and cascaded netlist formulation."""

import pytest

from repro.constants import GHz, um
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.extractor import ClocktreeRLCExtractor, SegmentRLC
from repro.clocktree.htree import HTree
from repro.core.extraction import TableBasedExtractor
from repro.errors import CircuitError, GeometryError


def config():
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


def extractor(**kwargs):
    return ClocktreeRLCExtractor(config(), frequency=GHz(3.2), **kwargs)


def htree(levels=1):
    return HTree.generate(levels=levels, root_length=um(2000), config=config())


class TestSegmentRLC:
    def test_validation(self):
        with pytest.raises(GeometryError):
            SegmentRLC(length=0.0, resistance=1.0, inductance=1e-9,
                       capacitance=1e-12)
        with pytest.raises(GeometryError):
            SegmentRLC(length=1e-3, resistance=1.0, inductance=-1e-9,
                       capacitance=1e-12)


class TestDirectExtraction:
    def test_positive_rlc(self):
        rlc = extractor().segment_rlc(um(1000))
        assert rlc.resistance > 0
        assert rlc.inductance > 0
        assert rlc.capacitance > 0

    def test_capacitance_linear_in_length(self):
        ex = extractor()
        c1 = ex.segment_rlc(um(1000)).capacitance
        c2 = ex.segment_rlc(um(2000)).capacitance
        assert c2 == pytest.approx(2 * c1, rel=1e-6)

    def test_inductance_superlinear_in_length(self):
        ex = extractor()
        l1 = ex.segment_rlc(um(1000)).inductance
        l2 = ex.segment_rlc(um(2000)).inductance
        assert l2 > 1.9 * l1

    def test_direct_solve_cached(self):
        ex = extractor()
        ex.segment_rlc(um(1000))
        assert (config().signal_width, um(1000)) in ex._direct_cache

    def test_invalid_length(self):
        with pytest.raises(GeometryError):
            extractor().segment_rlc(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(GeometryError):
            ClocktreeRLCExtractor(config(), frequency=0.0)
        with pytest.raises(GeometryError):
            ClocktreeRLCExtractor(config(), sections_per_segment=0)


class TestTableDrivenExtraction:
    @pytest.fixture(scope="class")
    def tables(self):
        return TableBasedExtractor.characterize(
            config(), frequency=GHz(3.2),
            widths=[um(5), um(10), um(15)],
            lengths=[um(500), um(1000), um(2000)],
        )

    def test_table_lookup_matches_direct(self, tables):
        ex_table = tables.as_clocktree_extractor()
        ex_direct = extractor()
        l_table = ex_table.segment_rlc(um(1000)).inductance
        l_direct = ex_direct.segment_rlc(um(1000)).inductance
        assert l_table == pytest.approx(l_direct, rel=0.02)

    def test_resistance_from_table(self, tables):
        ex = tables.as_clocktree_extractor()
        rlc = ex.segment_rlc(um(1000))
        direct_r, _ = config().loop_problem(um(10), um(1000)).loop_rl(GHz(3.2))
        assert rlc.resistance == pytest.approx(direct_r, rel=0.02)


class TestNetlistFormulation:
    def test_rlc_netlist_structure(self):
        netlist = extractor().build_netlist(htree(), include_inductance=True)
        names = {e.name for e in netlist.circuit.elements}
        assert "Vclk" in names
        assert "Rdrv_root" in names
        assert any(n.startswith("L_s_L") for n in names)
        assert netlist.includes_inductance

    def test_rc_netlist_has_no_inductors(self):
        netlist = extractor().build_netlist(htree(), include_inductance=False)
        from repro.circuit.elements import Inductor
        inductors = [e for e in netlist.circuit.elements
                     if isinstance(e, Inductor)]
        assert inductors == []

    def test_sink_nodes_per_leaf(self):
        tree = htree(levels=2)
        netlist = extractor().build_netlist(tree)
        assert set(netlist.sink_nodes) == {s.name for s in tree.leaves()}

    def test_total_rlc_preserved_across_sections(self):
        ex = extractor(sections_per_segment=5)
        tree = htree(levels=1)
        rlc = ex.segment_rlc(tree.segments[0].length)
        netlist = ex.build_netlist(tree)
        circuit = netlist.circuit
        r_total = sum(
            e.resistance for e in circuit.elements
            if e.name.startswith("R_s_L_")
        )
        l_total = sum(
            e.inductance for e in circuit.elements
            if e.name.startswith("L_s_L_")
        )
        c_total = sum(
            e.capacitance for e in circuit.elements
            if e.name.startswith("C_s_L_")
        )
        assert r_total == pytest.approx(rlc.resistance, rel=1e-9)
        assert l_total == pytest.approx(rlc.inductance, rel=1e-9)
        assert c_total == pytest.approx(rlc.capacitance, rel=1e-9)

    def test_buffers_inserted_at_internal_junctions(self):
        netlist = extractor().build_netlist(htree(levels=2))
        names = {e.name for e in netlist.circuit.elements}
        assert "Ebuf_s_L" in names
        assert "Rdrv_s_L" in names
        assert "Cin_s_L" in names
        # leaves carry sinks, not buffers
        assert "Ebuf_s_LL" not in names
        assert "Csink_s_LL" in names

    def test_sections_validated(self):
        with pytest.raises(CircuitError):
            extractor().build_netlist(htree(), sections=0)

    def test_netlist_simulates(self):
        from repro.circuit.transient import transient_analysis

        netlist = extractor().build_netlist(htree())
        result = transient_analysis(netlist.circuit, t_stop=2e-9, dt=1e-12)
        sink_node = next(iter(netlist.sink_nodes.values()))
        final = result.voltage(sink_node).final_value
        assert final == pytest.approx(1.8, rel=0.05)
