"""RLC-aware repeater insertion."""

import pytest

from repro.constants import GHz, fF, ps, um
from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.repeaters import optimal_repeaters
from repro.core.extraction import TableBasedExtractor
from repro.errors import GeometryError


@pytest.fixture(scope="module")
def extractor():
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    tables = TableBasedExtractor.characterize(
        config, frequency=GHz(6.4),
        widths=[um(5), um(10), um(15)],
        lengths=[um(250), um(1000), um(4000), um(10000)],
    )
    return tables.as_clocktree_extractor()


def buffer(drive=40.0):
    return ClockBuffer(drive_resistance=drive, input_capacitance=fF(30),
                       supply=1.8, rise_time=ps(50))


class TestPlans:
    def test_candidate_sweep_complete(self, extractor):
        plan = optimal_repeaters(extractor, um(8000), buffer(), max_count=6)
        assert [c.count for c in plan.candidates] == [1, 2, 3, 4, 5, 6]
        assert plan.best in plan.candidates

    def test_repeaters_help_long_rc_lines(self, extractor):
        plan = optimal_repeaters(extractor, um(10000), buffer(),
                                 include_inductance=False)
        assert plan.optimal_count > 1
        assert plan.best.total_delay < plan.delay_of(1)

    def test_rlc_wants_no_more_repeaters_than_rc(self, extractor):
        # the companion-paper conclusion: the inductive flight-time floor
        # cannot be bought down by repeaters
        rc = optimal_repeaters(extractor, um(10000), buffer(),
                               include_inductance=False)
        rlc = optimal_repeaters(extractor, um(10000), buffer(),
                                include_inductance=True)
        assert rlc.optimal_count <= rc.optimal_count

    def test_rlc_delay_never_below_rc(self, extractor):
        rc = optimal_repeaters(extractor, um(10000), buffer(),
                               include_inductance=False)
        rlc = optimal_repeaters(extractor, um(10000), buffer())
        assert rlc.best.total_delay >= rc.best.total_delay

    @pytest.mark.filterwarnings("ignore::repro.errors.ExtrapolationWarning")
    def test_short_line_needs_no_repeaters(self, extractor):
        # sub-grid stage lengths extrapolate (warned); the conclusion --
        # one stage is best for a short line -- is robust to that
        plan = optimal_repeaters(extractor, um(500), buffer(), max_count=5)
        assert plan.optimal_count == 1

    def test_delay_of_lookup(self, extractor):
        plan = optimal_repeaters(extractor, um(8000), buffer(), max_count=4)
        assert plan.delay_of(2) == plan.candidates[1].total_delay
        with pytest.raises(GeometryError):
            plan.delay_of(99)

    def test_validation(self, extractor):
        with pytest.raises(GeometryError):
            optimal_repeaters(extractor, 0.0, buffer())
        with pytest.raises(GeometryError):
            optimal_repeaters(extractor, um(1000), buffer(), max_count=0)
