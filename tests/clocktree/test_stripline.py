"""Stripline configuration (the paper's third transmission-line form)."""

import pytest

from repro.constants import GHz, um
from repro.clocktree.configs import MicrostripConfig, StriplineConfig
from repro.errors import GeometryError


def stripline(**kwargs):
    defaults = dict(signal_width=um(8), thickness=um(1),
                    gap_below=um(3), gap_above=um(3))
    defaults.update(kwargs)
    return StriplineConfig(**defaults)


class TestConstruction:
    def test_invalid_dimensions(self):
        with pytest.raises(GeometryError):
            stripline(gap_above=0.0)
        with pytest.raises(GeometryError):
            stripline(signal_width=-um(1))

    def test_with_signal_width(self):
        narrow = stripline().with_signal_width(um(4))
        assert narrow.signal_width == um(4)
        assert narrow.gap_below == um(3)

    def test_trace_block_single_signal(self):
        block = stripline().trace_block(um(500))
        assert len(block) == 1
        assert block.traces[0].name == "SIG"


class TestLoopPhysics:
    def test_two_planes_in_return_group(self):
        problem = stripline().loop_problem(um(8), um(500))
        assert len(problem.planes) == 2
        r, l = problem.loop_rl(GHz(3.2))
        assert r > 0 and l > 0

    def test_stripline_below_microstrip_inductance(self):
        # two return planes beat one: the stripline loop is tighter
        strip = stripline().loop_problem(um(8), um(1000))
        micro = MicrostripConfig(
            signal_width=um(8), thickness=um(1), plane_gap=um(3)
        ).loop_problem(um(8), um(1000))
        l_strip = strip.loop_rl(GHz(1))[1]
        l_micro = micro.loop_rl(GHz(1))[1]
        assert l_strip < l_micro

    def test_symmetric_gaps_tightest(self):
        l_sym = stripline(gap_below=um(3), gap_above=um(3)).loop_problem(
            um(8), um(1000)
        ).loop_rl(GHz(1))[1]
        l_asym = stripline(gap_below=um(1.5), gap_above=um(12)).loop_problem(
            um(8), um(1000)
        ).loop_rl(GHz(1))[1]
        # the close plane dominates; both configurations stay in the same
        # ballpark but the symmetric one keeps the loop smaller than the
        # average gap suggests
        assert l_sym > 0 and l_asym > 0

    def test_cross_section_bounded_by_planes(self):
        cs = stripline().cross_section()
        assert cs.height == pytest.approx(um(3) + um(1) + um(3))
        assert cs.conductors[0].name == "SIG"

    def test_capacitance_model_uses_lower_gap(self):
        model = stripline(gap_below=um(2)).capacitance_model()
        assert model.height_below == pytest.approx(um(2))


class TestTableCharacterization:
    def test_loop_tables_build(self):
        from repro.tables.builder import LoopInductanceTableBuilder

        config = stripline()
        builder = LoopInductanceTableBuilder(config.loop_problem, GHz(3.2))
        l_table, r_table = builder.build_loop_tables(
            [um(4), um(8)], [um(300), um(800)]
        )
        assert l_table.lookup(um(6), um(500)) > 0
        assert r_table.lookup(um(6), um(500)) > 0
