"""CPW and microstrip clocktree configurations (Figs. 8 and 9)."""

import pytest

from repro.constants import GHz, um
from repro.clocktree.configs import (
    CoplanarWaveguideConfig,
    MicrostripConfig,
    replace_spacings,
)
from repro.errors import GeometryError


def cpw(**kwargs):
    defaults = dict(signal_width=um(10), ground_width=um(5), spacing=um(1),
                    thickness=um(2), height_below=um(2))
    defaults.update(kwargs)
    return CoplanarWaveguideConfig(**defaults)


def microstrip(**kwargs):
    defaults = dict(signal_width=um(8), thickness=um(2), plane_gap=um(3))
    defaults.update(kwargs)
    return MicrostripConfig(**defaults)


class TestCPWConfig:
    def test_invalid_dimensions(self):
        with pytest.raises(GeometryError):
            cpw(signal_width=0.0)
        with pytest.raises(GeometryError):
            cpw(plane_gap=-um(1))

    def test_trace_block_layout(self):
        block = cpw().trace_block(um(1000))
        assert len(block) == 3
        assert block.signal_traces[0].width == pytest.approx(um(10))
        assert block.length == pytest.approx(um(1000))

    def test_width_override(self):
        block = cpw().trace_block(um(1000), signal_width=um(6))
        assert block.signal_traces[0].width == pytest.approx(um(6))

    def test_with_signal_width_copy(self):
        narrow = cpw().with_signal_width(um(4))
        assert narrow.signal_width == um(4)
        assert narrow.ground_width == um(5)

    def test_loop_problem_solves(self):
        problem = cpw().loop_problem(um(10), um(500))
        r, l = problem.loop_rl(GHz(3.2))
        assert r > 0 and l > 0

    def test_plane_gap_adds_plane_return(self):
        no_plane = cpw().loop_problem(um(10), um(500))
        with_plane = cpw(plane_gap=um(2)).loop_problem(um(10), um(500))
        assert len(no_plane.planes) == 0
        assert len(with_plane.planes) == 1
        l_no = no_plane.loop_rl(GHz(1))[1]
        l_with = with_plane.loop_rl(GHz(1))[1]
        assert l_with < l_no

    def test_cross_section_names_signal(self):
        cs = cpw().cross_section()
        assert {c.name for c in cs.conductors} == {"GND_L", "SIG", "GND_R"}

    def test_capacitance_model(self):
        model = cpw().capacitance_model()
        assert model.height_below == pytest.approx(um(2))


class TestMicrostripConfig:
    def test_invalid_dimensions(self):
        with pytest.raises(GeometryError):
            microstrip(plane_gap=0.0)
        with pytest.raises(GeometryError):
            microstrip(neighbour_count=2)   # needs neighbour_spacing

    def test_single_trace_block(self):
        block = microstrip().trace_block(um(500))
        assert len(block) == 1
        assert block.traces[0].name == "SIG"
        assert not block.traces[0].is_ground

    def test_neighbours_added_symmetrically(self):
        config = microstrip(neighbour_count=1, neighbour_spacing=um(4))
        block = config.trace_block(um(500))
        assert [t.name for t in block.traces] == ["N-1", "SIG", "N+1"]

    def test_loop_problem_uses_plane_return(self):
        problem = microstrip().loop_problem(um(8), um(500))
        assert problem.return_traces == []
        assert len(problem.planes) == 1
        r, l = problem.loop_rl(GHz(3.2))
        assert r > 0 and l > 0

    def test_closer_plane_less_inductance(self):
        near = microstrip(plane_gap=um(2)).loop_problem(um(8), um(500))
        far = microstrip(plane_gap=um(10)).loop_problem(um(8), um(500))
        assert near.loop_rl(GHz(1))[1] < far.loop_rl(GHz(1))[1]

    def test_height_below_is_plane_gap(self):
        assert microstrip(plane_gap=um(4)).height_below == pytest.approx(um(4))

    def test_neighbours_open_in_loop_problem(self):
        config = microstrip(neighbour_count=1, neighbour_spacing=um(4))
        problem = config.loop_problem(um(8), um(500))
        assert {t.name for t in problem.open_traces} == {"N-1", "N+1"}


class TestReplaceSpacings:
    def test_spacing_changed(self):
        config = microstrip(neighbour_count=1, neighbour_spacing=um(4))
        block = config.trace_block(um(500))
        rebuilt = replace_spacings(block, um(9))
        assert rebuilt.spacing(0) == pytest.approx(um(9))
        assert [t.name for t in rebuilt.traces] == [t.name for t in block.traces]
