"""Shared test fixtures.

Every test gets a throwaway run ledger: the scenario-routed CLI
commands (``repro run``, and the ``fig1``/``skew``/``accuracy``
aliases) record provenance into ``$REPRO_LEDGER``, and without this
fixture they would write ``.repro/runs`` into the working tree.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_run_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "run-ledger"))
