"""Unit tests of the shared dense/sparse factorization backend."""

import numpy as np
import pytest
from scipy import sparse

from repro.circuit.backend import (
    DENSE_SIZE_CUTOFF,
    SPARSE_DENSITY_CUTOFF,
    DenseFactorization,
    SparseFactorization,
    factorize,
    gmin_loaded,
    resolve_method,
    system_matrices,
    validate_solver,
)
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource
from repro.errors import CircuitError, SolverError
from repro.telemetry import (
    SOLVER_FACTOR_DENSE,
    SOLVER_FACTOR_SPARSE,
    get_registry,
)


def spd_matrix(n, seed=0):
    """A well-conditioned random SPD test matrix."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestResolveMethod:
    def test_explicit_override_wins(self):
        assert resolve_method(10, solver="sparse") == "sparse"
        assert resolve_method(10**6, solver="dense") == "dense"

    def test_auto_small_is_dense(self):
        assert resolve_method(DENSE_SIZE_CUTOFF) == "dense"
        assert resolve_method(3, nnz=9) == "dense"

    def test_auto_large_is_sparse(self):
        assert resolve_method(DENSE_SIZE_CUTOFF + 1) == "sparse"
        assert resolve_method(100_000, nnz=700_000) == "sparse"

    def test_auto_large_but_dense_pattern_stays_dense(self):
        n = DENSE_SIZE_CUTOFF + 1
        nnz = int(SPARSE_DENSITY_CUTOFF * n * n) + n
        assert resolve_method(n, nnz=nnz) == "dense"

    def test_unknown_solver_rejected(self):
        with pytest.raises(CircuitError, match="unknown solver"):
            validate_solver("cholesky")
        with pytest.raises(CircuitError, match="unknown solver"):
            resolve_method(10, solver="LU")


class TestDenseFactorization:
    def test_solve_matches_numpy(self):
        a = spd_matrix(12)
        b = np.arange(12.0)
        lu = DenseFactorization(a)
        assert lu.method == "dense"
        np.testing.assert_allclose(lu.solve(b), np.linalg.solve(a, b),
                                   rtol=1e-12)

    def test_solve_many_columns(self):
        a = spd_matrix(8)
        rhs = np.random.default_rng(1).standard_normal((8, 5))
        out = DenseFactorization(a).solve_many(rhs)
        np.testing.assert_allclose(a @ out, rhs, atol=1e-9)

    def test_solve_many_rejects_bad_shape(self):
        lu = DenseFactorization(spd_matrix(4))
        with pytest.raises(SolverError, match="multi-RHS"):
            lu.solve_many(np.zeros(4))
        with pytest.raises(SolverError, match="multi-RHS"):
            lu.solve_many(np.zeros((5, 2)))

    def test_rejects_non_square(self):
        with pytest.raises(SolverError, match="square"):
            DenseFactorization(np.zeros((3, 4)))

    def test_singular_raises_solver_error(self):
        singular = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SolverError, match="singular"):
            DenseFactorization(singular)

    def test_exactly_zero_matrix_raises(self):
        # getrf only *warns* here; the backend must still hard-error.
        with pytest.raises(SolverError, match="singular"):
            DenseFactorization(np.zeros((3, 3)))

    def test_factor_counter_ticks(self):
        registry = get_registry()
        registry.reset()
        DenseFactorization(spd_matrix(3))
        assert registry.counter_value(SOLVER_FACTOR_DENSE) == 1
        assert registry.counter_value(SOLVER_FACTOR_SPARSE) == 0


class TestSparseFactorization:
    def test_solve_matches_dense(self):
        a = spd_matrix(20)
        a[np.abs(a) < 0.5] = 0.0  # sparsify off-diagonals
        np.fill_diagonal(a, np.diag(spd_matrix(20)))
        b = np.linspace(-1, 1, 20)
        lu = SparseFactorization(sparse.csc_matrix(a))
        assert lu.method == "sparse"
        np.testing.assert_allclose(lu.solve(b), np.linalg.solve(a, b),
                                   rtol=1e-10)

    def test_solve_many_columns(self):
        a = sparse.eye(6, format="csc") * 3.0
        rhs = np.random.default_rng(2).standard_normal((6, 4))
        out = SparseFactorization(a).solve_many(rhs)
        np.testing.assert_allclose(out, rhs / 3.0, rtol=1e-12)

    def test_solve_many_rejects_bad_shape(self):
        lu = SparseFactorization(sparse.eye(4, format="csc"))
        with pytest.raises(SolverError, match="multi-RHS"):
            lu.solve_many(np.zeros((3, 2)))

    def test_rejects_dense_input(self):
        with pytest.raises(SolverError, match="scipy.sparse"):
            SparseFactorization(np.eye(3))

    def test_singular_raises_solver_error(self):
        singular = sparse.csc_matrix(
            np.array([[1.0, 2.0], [2.0, 4.0]]))
        with pytest.raises(SolverError, match="singular"):
            SparseFactorization(singular)

    def test_factor_counter_ticks(self):
        registry = get_registry()
        registry.reset()
        SparseFactorization(sparse.eye(3, format="csc"))
        assert registry.counter_value(SOLVER_FACTOR_SPARSE) == 1
        assert registry.counter_value(SOLVER_FACTOR_DENSE) == 0


class TestFactorize:
    def test_dispatches_on_representation(self):
        assert isinstance(factorize(np.eye(3)), DenseFactorization)
        assert isinstance(factorize(sparse.eye(3, format="csc")),
                          SparseFactorization)

    def test_both_paths_agree(self):
        a = spd_matrix(15, seed=4)
        b = np.random.default_rng(4).standard_normal(15)
        dense = factorize(a).solve(b)
        sp = factorize(sparse.csc_matrix(a)).solve(b)
        np.testing.assert_allclose(sp, dense, rtol=1e-11)


class TestSystemMatrices:
    def _stamps(self):
        circuit = Circuit()
        circuit.add_voltage_source(
            "V1", "in", "0", PulseSource(0.0, 1.0, rise=1e-12, width=1.0))
        circuit.add_resistor("R1", "in", "out", 50.0)
        circuit.add_inductor("L1", "out", "m", 1e-9)
        circuit.add_capacitor("C1", "m", "0", 1e-12)
        return circuit.assemble().stamps

    def test_sparse_matches_dense_assembly(self):
        stamps = self._stamps()
        g_dense, c_dense = system_matrices(stamps, "dense")
        g_sparse, c_sparse = system_matrices(stamps, "sparse")
        assert sparse.issparse(g_sparse) and sparse.issparse(c_sparse)
        np.testing.assert_array_equal(g_sparse.toarray(), g_dense)
        np.testing.assert_array_equal(c_sparse.toarray(), c_dense)


class TestGminLoaded:
    def test_dense_matches_seed_recipe(self):
        g = spd_matrix(6, seed=5)
        n_nodes, gmin = 4, 1e-12
        expected = g.copy()
        expected[:n_nodes, :n_nodes] += np.eye(n_nodes) * gmin
        np.testing.assert_array_equal(
            gmin_loaded(g, n_nodes, gmin), expected)

    def test_sparse_matches_dense(self):
        g = spd_matrix(6, seed=6)
        loaded_dense = gmin_loaded(g, 3, 1e-9)
        loaded_sparse = gmin_loaded(sparse.csc_matrix(g), 3, 1e-9)
        assert sparse.issparse(loaded_sparse)
        np.testing.assert_allclose(loaded_sparse.toarray(), loaded_dense,
                                   rtol=1e-15)

    def test_input_not_mutated(self):
        g = spd_matrix(4, seed=7)
        before = g.copy()
        gmin_loaded(g, 2, 1e-6)
        np.testing.assert_array_equal(g, before)
