"""Source waveforms (DC / PULSE / PWL / SIN)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.sources import DCSource, PulseSource, PWLSource, SineSource
from repro.errors import CircuitError


class TestDCSource:
    def test_constant(self):
        src = DCSource(1.8)
        assert src(0.0) == 1.8
        assert src(1e-6) == 1.8


class TestPulseSource:
    def make(self, **kwargs):
        defaults = dict(v1=0.0, v2=1.0, delay=1e-9, rise=1e-10,
                        fall=2e-10, width=5e-10, period=0.0)
        defaults.update(kwargs)
        return PulseSource(**defaults)

    def test_before_delay(self):
        assert self.make()(0.5e-9) == 0.0

    def test_mid_rise(self):
        src = self.make()
        assert src(1e-9 + 0.5e-10) == pytest.approx(0.5)

    def test_plateau(self):
        src = self.make()
        assert src(1e-9 + 1e-10 + 2e-10) == pytest.approx(1.0)

    def test_mid_fall(self):
        src = self.make()
        t = 1e-9 + 1e-10 + 5e-10 + 1e-10   # halfway down the 2e-10 fall
        assert src(t) == pytest.approx(0.5)

    def test_after_fall_single_pulse(self):
        src = self.make()
        assert src(1e-6) == pytest.approx(0.0)

    def test_periodic_repeats(self):
        src = self.make(period=2e-9)
        assert src(1e-9 + 0.5e-10) == pytest.approx(src(3e-9 + 0.5e-10))

    def test_negative_going_pulse(self):
        src = self.make(v1=1.8, v2=0.0)
        assert src(0.0) == 1.8
        assert src(1e-9 + 1e-10 + 1e-10) == pytest.approx(0.0)

    def test_invalid_edges(self):
        with pytest.raises(CircuitError):
            self.make(rise=0.0)
        with pytest.raises(CircuitError):
            self.make(width=-1e-9)

    @given(st.floats(0, 1e-8))
    @settings(max_examples=50)
    def test_bounded_output(self, t):
        src = self.make()
        assert 0.0 <= src(t) <= 1.0


class TestPWLSource:
    def test_interpolates(self):
        src = PWLSource([0.0, 1e-9, 2e-9], [0.0, 1.0, 0.5])
        assert src(0.5e-9) == pytest.approx(0.5)
        assert src(1.5e-9) == pytest.approx(0.75)

    def test_clamps_outside(self):
        src = PWLSource([1e-9, 2e-9], [1.0, 2.0])
        assert src(0.0) == pytest.approx(1.0)
        assert src(5e-9) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(CircuitError):
            PWLSource([0.0], [1.0])
        with pytest.raises(CircuitError):
            PWLSource([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(CircuitError):
            PWLSource([0.0, 1.0], [1.0])


class TestSineSource:
    def test_offset_before_delay(self):
        src = SineSource(offset=0.5, amplitude=1.0, frequency=1e9, delay=1e-9)
        assert src(0.0) == pytest.approx(0.5)

    def test_quarter_period_peak(self):
        src = SineSource(offset=0.0, amplitude=2.0, frequency=1e9)
        assert src(0.25e-9) == pytest.approx(2.0, rel=1e-9)

    def test_phase_shift(self):
        src = SineSource(amplitude=1.0, frequency=1e9, phase_degrees=90.0)
        assert src(0.0) == pytest.approx(1.0)

    def test_invalid_frequency(self):
        with pytest.raises(CircuitError):
            SineSource(frequency=0.0)
