"""Moments and AC analysis must describe the same transfer function.

The moment expansion x(s) = m0 + m1 s + m2 s^2 + ... and the AC solve
(G + j omega C) x = b are two views of one system; at low frequency the
truncated series must converge to the AC phasor.  This is a strong
cross-check of both the moment recursion and the AC stamping.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit.ac import ac_analysis
from repro.circuit.moments import compute_moments
from repro.circuit.netlist import Circuit

FAST = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def ladder_circuit(r, c, l=None, stages=3):
    circuit = Circuit()
    circuit.add_voltage_source("V1", "n0", "0", 1.0, ac_magnitude=1.0)
    for k in range(stages):
        if l is not None:
            circuit.add_resistor(f"R{k}", f"n{k}", f"m{k}", r)
            circuit.add_inductor(f"L{k}", f"m{k}", f"n{k + 1}", l)
        else:
            circuit.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", r)
        circuit.add_capacitor(f"C{k}", f"n{k + 1}", "0", c)
    return circuit, f"n{stages}"


@given(
    r=st.floats(10.0, 5e3),
    c=st.floats(1e-14, 5e-12),
)
@FAST
def test_rc_series_converges_to_ac(r, c):
    circuit, out = ladder_circuit(r, c)
    expansion = compute_moments(circuit, order=6)
    m = expansion.node_moments(out)
    # evaluate well inside the radius of convergence (|s| tau << 1)
    tau = r * c
    f = 0.01 / (2 * np.pi * tau)
    s = 2j * np.pi * f
    series = sum(m[k] * s ** k for k in range(7))
    ac = ac_analysis(circuit, [f]).voltage(out)[0]
    assert series == pytest.approx(ac, rel=1e-4)


@given(
    r=st.floats(5.0, 200.0),
    c=st.floats(1e-13, 2e-12),
    l=st.floats(1e-11, 2e-9),
)
@FAST
def test_rlc_series_converges_to_ac(r, c, l):
    circuit, out = ladder_circuit(r, c, l=l)
    expansion = compute_moments(circuit, order=8)
    m = expansion.node_moments(out)
    scale = max(r * c, np.sqrt(l * c))
    f = 0.005 / (2 * np.pi * scale)
    s = 2j * np.pi * f
    series = sum(m[k] * s ** k for k in range(9))
    ac = ac_analysis(circuit, [f]).voltage(out)[0]
    assert series == pytest.approx(ac, rel=1e-4)


def test_elmore_equals_minus_slope_of_phase():
    """-m1/m0 equals the low-frequency group-delay of the AC response."""
    circuit, out = ladder_circuit(1e3, 1e-12)
    expansion = compute_moments(circuit)
    elmore = expansion.elmore_delay(out)

    f1, f2 = 1e4, 2e4
    result = ac_analysis(circuit, [f1, f2])
    phase = np.angle(result.voltage(out))
    group_delay = -(phase[1] - phase[0]) / (2 * np.pi * (f2 - f1))
    assert elmore == pytest.approx(group_delay, rel=1e-3)
