"""SPICE deck export."""

import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.sources import DCSource, PulseSource, PWLSource, SineSource
from repro.circuit.spice_export import to_spice, write_spice
from repro.errors import CircuitError


def rlc_circuit():
    c = Circuit("demo")
    c.add_voltage_source("Vin", "in", "0",
                         PulseSource(0.0, 1.8, delay=1e-10, rise=5e-11,
                                     fall=5e-11, width=1e-9))
    c.add_resistor("R1", "in", "a", 25.0)
    c.add_inductor("L1", "a", "out", 1e-9)
    c.add_inductor("L2", "b", "0", 2e-9)
    c.add_capacitor("C1", "out", "0", 1e-12)
    c.add_resistor("R2", "b", "0", 50.0)
    c.add_mutual("K1", "L1", "L2", coupling=0.4)
    return c


class TestDeckContents:
    @pytest.fixture(scope="class")
    def deck(self):
        return to_spice(rlc_circuit(), analyses=("tran 1p 2n",),
                        probes=("out", "b"))

    def test_title_first_and_end_last(self, deck):
        lines = deck.strip().splitlines()
        assert lines[0].startswith("*")
        assert lines[-1] == ".end"

    def test_element_cards_present(self, deck):
        assert "R1 in a 2.500000e+01" in deck
        assert "L1 a out 1.000000e-09" in deck
        assert "C1 out 0 1.000000e-12" in deck

    def test_pulse_source_card(self, deck):
        assert "Vin in 0 PULSE(" in deck

    def test_coupling_card_uses_k_coefficient(self, deck):
        assert "K1 L1 L2 4.000000e-01" in deck

    def test_analysis_and_probe_cards(self, deck):
        assert ".tran 1p 2n" in deck
        assert ".print tran v(out) v(b)" in deck


class TestSourceForms:
    def test_dc_source(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", DCSource(2.5))
        c.add_resistor("R1", "a", "0", 1.0)
        assert "V1 a 0 DC 2.500000e+00" in to_spice(c)

    def test_plain_float_becomes_dc(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.8)
        c.add_resistor("R1", "a", "0", 1.0)
        assert "DC 1.800000e+00" in to_spice(c)

    def test_pwl_source(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", PWLSource([0, 1e-9], [0.0, 1.0]))
        c.add_resistor("R1", "a", "0", 1.0)
        assert "PWL(0.000000e+00 0.000000e+00 1.000000e-09 1.000000e+00)" in to_spice(c)

    def test_sine_source(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0",
                             SineSource(offset=0.9, amplitude=0.1,
                                        frequency=1e9))
        c.add_resistor("R1", "a", "0", 1.0)
        assert "SIN(" in to_spice(c)

    def test_unsupported_source_rejected(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", lambda t: t)
        c.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(CircuitError):
            to_spice(c)


class TestNaming:
    def test_wrong_prefix_gets_type_letter(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_resistor("wire", "a", "0", 1.0)
        assert "Rwire a 0" in to_spice(c)

    def test_ics_exported(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 0.0)
        c.add_resistor("R1", "a", "b", 1.0)
        c.add_capacitor("C1", "b", "0", 1e-12, initial_voltage=0.7)
        c.add_inductor("L1", "b", "0", 1e-9, initial_current=1e-3)
        deck = to_spice(c)
        assert "IC=7.000000e-01" in deck
        assert "IC=1.000000e-03" in deck


class TestFileOutput:
    def test_write_spice(self, tmp_path):
        path = write_spice(rlc_circuit(), tmp_path / "bus.sp",
                           title="exported")
        text = path.read_text()
        assert text.startswith("* exported")
        assert text.rstrip().endswith(".end")

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            to_spice(Circuit())


class TestRoundTripConsistency:
    def test_extracted_clocktree_exports(self):
        from repro.constants import GHz, um
        from repro.clocktree.configs import CoplanarWaveguideConfig
        from repro.clocktree.extractor import ClocktreeRLCExtractor
        from repro.clocktree.htree import HTree

        config = CoplanarWaveguideConfig(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            thickness=um(2), height_below=um(2),
        )
        extractor = ClocktreeRLCExtractor(config, frequency=GHz(3.2))
        htree = HTree.generate(levels=1, root_length=um(1000), config=config)
        netlist = extractor.build_netlist(htree)
        deck = to_spice(netlist.circuit, analyses=("tran 1p 3n",))
        assert deck.count("\n") > 20
        assert ".end" in deck
