"""Transient analysis against closed-form responses."""

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource, SineSource
from repro.circuit.transient import transient_analysis
from repro.errors import CircuitError


def rc_step(r=1e3, c=1e-12):
    circuit = Circuit()
    circuit.add_voltage_source(
        "V1", "in", "0", PulseSource(0.0, 1.0, rise=1e-13, width=1.0)
    )
    circuit.add_resistor("R1", "in", "out", r)
    circuit.add_capacitor("C1", "out", "0", c)
    return circuit


def series_rlc(r=10.0, l=2e-9, c=1e-12):
    circuit = Circuit()
    circuit.add_voltage_source(
        "V1", "in", "0", PulseSource(0.0, 1.0, rise=1e-13, width=1.0)
    )
    circuit.add_resistor("R1", "in", "m", r)
    circuit.add_inductor("L1", "m", "out", l)
    circuit.add_capacitor("C1", "out", "0", c)
    return circuit


class TestRCStep:
    def test_time_constant(self):
        result = transient_analysis(rc_step(), t_stop=5e-9, dt=1e-12)
        wave = result.voltage("out")
        t63 = wave.threshold_crossing(1.0 - np.exp(-1.0))
        assert t63 == pytest.approx(1e-9, rel=0.01)

    def test_final_value(self):
        result = transient_analysis(rc_step(), t_stop=10e-9, dt=2e-12)
        assert result.voltage("out").final_value == pytest.approx(1.0, abs=1e-4)

    def test_monotone_rise(self):
        result = transient_analysis(rc_step(), t_stop=5e-9, dt=1e-12)
        values = result.voltage("out").values
        assert np.all(np.diff(values) >= -1e-12)

    def test_backward_euler_close_to_trapezoidal(self):
        trap = transient_analysis(rc_step(), 5e-9, 1e-12)
        be = transient_analysis(rc_step(), 5e-9, 1e-12, method="backward_euler")
        v_trap = trap.voltage("out").at(2e-9)
        v_be = be.voltage("out").at(2e-9)
        assert v_be == pytest.approx(v_trap, rel=0.01)


class TestSeriesRLC:
    def test_underdamped_overshoot_matches_theory(self):
        r, l, c = 10.0, 2e-9, 1e-12
        result = transient_analysis(series_rlc(r, l, c), 2e-9, 0.2e-12)
        zeta = r / 2.0 * np.sqrt(c / l)
        expected = np.exp(-np.pi * zeta / np.sqrt(1 - zeta ** 2))
        overshoot = result.voltage("out").overshoot(reference=1.0)
        assert overshoot == pytest.approx(expected, rel=0.01)

    def test_ring_frequency(self):
        r, l, c = 2.0, 2e-9, 1e-12
        result = transient_analysis(series_rlc(r, l, c), 3e-9, 0.1e-12)
        wave = result.voltage("out")
        # consecutive *rising* crossings of the settled value are one
        # damped period apart
        t1 = wave.threshold_crossing(1.0, occurrence=1)
        t2 = wave.threshold_crossing(1.0, occurrence=2)
        f_damped = 1.0 / (t2 - t1)
        omega0 = 1.0 / np.sqrt(l * c)
        zeta = r / 2.0 * np.sqrt(c / l)
        expected = omega0 * np.sqrt(1 - zeta ** 2) / (2 * np.pi)
        assert f_damped == pytest.approx(expected, rel=0.02)

    def test_overdamped_no_overshoot(self):
        result = transient_analysis(series_rlc(r=200.0), 10e-9, 2e-12)
        assert result.voltage("out").overshoot(reference=1.0) < 1e-3

    def test_inductor_current_settles_to_zero(self):
        result = transient_analysis(series_rlc(), 50e-9, 10e-12)
        assert result.current("L1").final_value == pytest.approx(0.0, abs=1e-6)


class TestCoupledInductors:
    def test_transformer_induces_secondary_voltage(self):
        circuit = Circuit()
        circuit.add_voltage_source(
            "V1", "a", "0", SineSource(amplitude=1.0, frequency=1e9)
        )
        circuit.add_inductor("L1", "a", "0", 1e-9)
        circuit.add_inductor("L2", "b", "0", 1e-9)
        circuit.add_resistor("RL", "b", "0", 50.0)
        circuit.add_mutual("K1", "L1", "L2", coupling=0.8)
        result = transient_analysis(circuit, 5e-9, 1e-12)
        secondary = result.voltage("b").values
        assert np.max(np.abs(secondary)) > 0.3   # significant coupling

    def test_zero_coupling_no_transfer(self):
        circuit = Circuit()
        circuit.add_voltage_source(
            "V1", "a", "0", SineSource(amplitude=1.0, frequency=1e9)
        )
        circuit.add_inductor("L1", "a", "0", 1e-9)
        circuit.add_inductor("L2", "b", "0", 1e-9)
        circuit.add_resistor("RL", "b", "0", 50.0)
        circuit.add_mutual("K1", "L1", "L2", coupling=1e-6)
        result = transient_analysis(circuit, 3e-9, 1e-12)
        assert np.max(np.abs(result.voltage("b").values)) < 1e-5


class TestEnergyAndPassivity:
    def test_passive_network_bounded_response(self):
        # a passive RLC ladder driven by a bounded source stays bounded
        circuit = Circuit()
        circuit.add_voltage_source("V1", "n0", "0", PulseSource(0, 1, rise=1e-12))
        for k in range(5):
            circuit.add_resistor(f"R{k}", f"n{k}", f"m{k}", 1.0)
            circuit.add_inductor(f"L{k}", f"m{k}", f"n{k + 1}", 0.5e-9)
            circuit.add_capacitor(f"C{k}", f"n{k + 1}", "0", 0.2e-12)
        result = transient_analysis(circuit, 20e-9, 5e-12)
        for k in range(1, 6):
            values = result.voltage(f"n{k}").values
            assert np.max(np.abs(values)) < 3.0


class TestDCInitialization:
    def test_starts_from_operating_point(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0", 1.0)   # DC source
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_capacitor("C1", "out", "0", 1e-12)
        result = transient_analysis(circuit, 1e-9, 1e-12)
        # already settled: no transient at all
        assert result.voltage("out").values[0] == pytest.approx(1.0, abs=1e-6)
        assert result.voltage("out").final_value == pytest.approx(1.0, abs=1e-6)

    def test_zero_start_with_initial_conditions(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0", 0.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_capacitor("C1", "out", "0", 1e-12, initial_voltage=0.5)
        result = transient_analysis(circuit, 12e-9, 1e-12, initial="zero")
        assert result.voltage("out").values[0] == pytest.approx(0.5, abs=1e-9)
        # discharges through R1 (tau = 1 ns)
        assert result.voltage("out").final_value == pytest.approx(0.0, abs=1e-3)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"t_stop": 0.0, "dt": 1e-12},
        {"t_stop": 1e-9, "dt": 0.0},
        {"t_stop": 1e-9, "dt": 2e-9},
        {"t_stop": 1e-9, "dt": 1e-12, "method": "magic"},
        {"t_stop": 1e-9, "dt": 1e-12, "initial": "hot"},
    ])
    def test_bad_arguments(self, kwargs):
        with pytest.raises(CircuitError):
            transient_analysis(rc_step(), **kwargs)

    def test_unknown_probe_rejected(self):
        result = transient_analysis(rc_step(), 1e-9, 1e-12)
        with pytest.raises(CircuitError):
            result.voltage("nope")
        with pytest.raises(CircuitError):
            result.current("R1")
