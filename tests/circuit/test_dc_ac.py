"""DC operating point and AC analysis against hand-solved circuits."""

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis, input_impedance
from repro.circuit.dc import operating_point
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError


def divider():
    c = Circuit()
    c.add_voltage_source("V1", "in", "0", 10.0, ac_magnitude=1.0)
    c.add_resistor("R1", "in", "mid", 1e3)
    c.add_resistor("R2", "mid", "0", 3e3)
    return c


class TestOperatingPoint:
    def test_resistive_divider(self):
        v = operating_point(divider())
        assert v["mid"] == pytest.approx(7.5)
        assert v["in"] == pytest.approx(10.0)
        assert v["0"] == 0.0

    def test_inductor_is_dc_short(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 5.0)
        c.add_resistor("R1", "in", "a", 1e3)
        c.add_inductor("L1", "a", "b", 1e-9)
        c.add_resistor("R2", "b", "0", 1e3)
        v = operating_point(c)
        assert v["a"] == pytest.approx(v["b"], abs=1e-9)
        assert v["b"] == pytest.approx(2.5)

    def test_capacitor_is_dc_open(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 5.0)
        c.add_resistor("R1", "in", "a", 1e3)
        c.add_capacitor("C1", "a", "0", 1e-12)
        v = operating_point(c)
        assert v["a"] == pytest.approx(5.0, abs=1e-5)

    def test_current_source(self):
        c = Circuit()
        c.add_current_source("I1", "0", "a", 1e-3)
        c.add_resistor("R1", "a", "0", 2e3)
        v = operating_point(c)
        assert v["a"] == pytest.approx(2.0)

    def test_sources_evaluated_at_time(self):
        from repro.circuit.sources import PWLSource
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", PWLSource([0, 1e-9], [1.0, 3.0]))
        c.add_resistor("R1", "in", "0", 1e3)
        assert operating_point(c, time=0.0)["in"] == pytest.approx(1.0)
        assert operating_point(c, time=1e-9)["in"] == pytest.approx(3.0)

    def test_vcvs_gain(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 2.0)
        c.add_resistor("Rin", "in", "0", 1e6)
        c.add_vcvs("E1", "out", "0", "in", "0", 3.0)
        c.add_resistor("RL", "out", "0", 1e3)
        v = operating_point(c)
        assert v["out"] == pytest.approx(6.0)


class TestACAnalysis:
    def test_rc_pole(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 0.0, ac_magnitude=1.0)
        c.add_resistor("R1", "in", "out", 1e3)
        c.add_capacitor("C1", "out", "0", 1e-12)
        f_pole = 1.0 / (2 * np.pi * 1e3 * 1e-12)
        result = ac_analysis(c, [f_pole])
        assert abs(result.voltage("out")[0]) == pytest.approx(
            1 / np.sqrt(2), rel=1e-6
        )

    def test_lc_resonance_peak(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 0.0, ac_magnitude=1.0)
        c.add_resistor("R1", "in", "m", 1.0)
        c.add_inductor("L1", "m", "out", 1e-9)
        c.add_capacitor("C1", "out", "0", 1e-12)
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-9 * 1e-12))
        freqs = np.linspace(0.5 * f0, 1.5 * f0, 301)
        result = ac_analysis(c, freqs)
        peak_f = freqs[np.argmax(np.abs(result.voltage("out")))]
        assert peak_f == pytest.approx(f0, rel=0.01)

    def test_requires_ac_source(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 1.0)   # no ac_magnitude
        c.add_resistor("R1", "in", "0", 1e3)
        with pytest.raises(CircuitError):
            ac_analysis(c, [1e9])

    def test_invalid_frequencies(self):
        with pytest.raises(CircuitError):
            ac_analysis(divider(), [])
        with pytest.raises(CircuitError):
            ac_analysis(divider(), [-1.0])

    def test_magnitude_db(self):
        result = ac_analysis(divider(), [1e6])
        assert result.magnitude_db("mid")[0] == pytest.approx(
            20 * np.log10(0.75), rel=1e-9
        )

    def test_branch_current_available(self):
        result = ac_analysis(divider(), [1e6])
        i = result.current("V1")[0]
        assert abs(i) == pytest.approx(1.0 / 4e3, rel=1e-9)

    def test_unknown_node_rejected(self):
        result = ac_analysis(divider(), [1e6])
        with pytest.raises(CircuitError):
            result.voltage("zzz")


class TestInputImpedance:
    def test_series_rlc(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 0.0, ac_magnitude=1.0)
        c.add_resistor("R1", "in", "a", 10.0)
        c.add_inductor("L1", "a", "b", 2e-9)
        c.add_capacitor("C1", "b", "0", 1e-12)
        f = 1e9
        omega = 2 * np.pi * f
        z = input_impedance(c, "V1", [f])[0]
        expected = 10.0 + 1j * omega * 2e-9 + 1.0 / (1j * omega * 1e-12)
        assert z == pytest.approx(expected, rel=1e-9)

    def test_pure_resistance(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 0.0, ac_magnitude=1.0)
        c.add_resistor("R1", "in", "0", 42.0)
        z = input_impedance(c, "V1", [1e9])[0]
        assert z == pytest.approx(42.0, rel=1e-12)
