"""Property-based transient-solver invariants (hypothesis, PR 5).

Two families of invariants over randomized passive RLC ladders:

* **Method agreement at steady state.**  Trapezoidal and backward-Euler
  integration are different discretizations of the same ODE; once the
  transient has died out, both must settle to the circuit's DC
  operating point.  Run long enough (many times the slowest ladder time
  constant), the final values agree with each other and with
  :func:`operating_point` regardless of the random component values.

* **LTE estimate shrinks with dt.**  The step-doubling local truncation
  error estimate attached to :class:`TransientDiagnostics` measures the
  O(dt^2)/O(dt) discretization error; halving dt on a smooth
  sine-driven circuit must (weakly, and in practice strictly) shrink
  it, and the energy-balance residual must shrink along with it.
"""

import warnings

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit import (
    Circuit,
    SineSource,
    operating_point,
    transient_analysis,
)

inductances = st.floats(1e-10, 1e-8)
capacitances = st.floats(1e-14, 1e-12)

FAST = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])
SLOW = settings(max_examples=8, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _ladder(stages):
    """A passive RLC ladder: DC source -> (R -> L -> C-to-ground)*n.

    Each stage is ``(zeta, l, cap)``: parameterizing by the damping
    ratio (``r = 2 zeta sqrt(l/cap)``) keeps random ladders reasonably
    damped.  A raw random R can produce Q ~ 600 resonators whose
    ringing a fixed 2000-step grid can neither resolve nor damp
    (the trapezoidal amplification magnitude tends to 1 as
    ``|lambda| dt`` grows), so "settled by t_stop" would be false for
    reasons that have nothing to do with solver correctness.
    """
    c = Circuit("ladder")
    c.add_voltage_source("Vs", "n0", "0", 1.0)
    node = "n0"
    for i, (zeta, l, cap) in enumerate(stages):
        r = 2.0 * zeta * np.sqrt(l / cap)
        mid = f"m{i}"
        nxt = f"n{i + 1}"
        c.add_resistor(f"R{i}", node, mid, r)
        c.add_inductor(f"L{i}", mid, nxt, l)
        c.add_capacitor(f"C{i}", nxt, "0", cap)
        node = nxt
    return c, node


def _settle_time(stages):
    """Generous settling horizon: sum of each stage's time scales."""
    total = 0.0
    for zeta, l, cap in stages:
        r = 2.0 * zeta * np.sqrt(l / cap)
        total += r * cap + l / r + np.sqrt(l * cap)
    return 50.0 * total


dampings = st.floats(0.3, 2.0)
stage = st.tuples(dampings, inductances, capacitances)
ladders = st.lists(stage, min_size=1, max_size=3)


class TestSteadyStateAgreement:
    @given(stages=ladders)
    @FAST
    def test_methods_agree_with_dc_operating_point(self, stages):
        circuit, out = _ladder(stages)
        t_stop = _settle_time(stages)
        dt = t_stop / 2000
        finals = {}
        for method in ("trapezoidal", "backward_euler"):
            result = transient_analysis(
                circuit, t_stop=t_stop, dt=dt, method=method,
                initial="zero", diagnostics=False,
            )
            finals[method] = result.voltage(out).final_value
        dc = operating_point(circuit)[out]
        # a passive ladder driven by 1 V DC settles to 1 V everywhere
        # (gmin leakage perturbs the operating point by ~1e-12)
        assert abs(dc - 1.0) < 1e-6
        for method, value in finals.items():
            assert abs(value - dc) < 5e-2, (method, value, dc)
        assert abs(finals["trapezoidal"]
                   - finals["backward_euler"]) < 5e-2

    @given(stages=ladders)
    @FAST
    def test_passive_ladder_voltages_stay_bounded(self, stages):
        # Worst-case RLC ringing overshoot of a 1 V step stays finite
        # and small for a passive network; wild values flag instability.
        circuit, out = _ladder(stages)
        t_stop = _settle_time(stages)
        result = transient_analysis(
            circuit, t_stop=t_stop, dt=t_stop / 2000,
            initial="zero", diagnostics=False,
        )
        v = result.voltage(out).values
        assert np.all(np.isfinite(v))
        assert np.max(np.abs(v)) < 10.0


class TestLTEShrinksWithDt:
    @given(
        zeta=st.floats(0.2, 2.0),
        l=st.floats(1e-9, 1e-8),
        cap=st.floats(4e-13, 1e-12),
        periods=st.integers(3, 6),
    )
    @SLOW
    def test_halving_dt_shrinks_lte_estimate(self, zeta, l, cap, periods):
        # The monotone-shrink claim is an *asymptotic* property: the
        # starting grid must already resolve both the 1 GHz drive and
        # the circuit's own resonance (dt <~ 1/(8 omega_0)), and the
        # damping ratio is drawn directly so no random high-Q resonator
        # pushes the run out of the asymptotic regime.
        freq = 1e9
        r = 2.0 * zeta * np.sqrt(l / cap)
        c = Circuit("sine")
        c.add_voltage_source("Vs", "in", "0", SineSource(
            offset=0.0, amplitude=1.0, frequency=freq))
        c.add_resistor("R1", "in", "mid", r)
        c.add_inductor("L1", "mid", "out", l)
        c.add_capacitor("C1", "out", "0", cap)
        t_stop = periods / freq
        dt0 = min(t_stop / 200, np.sqrt(l * cap) / 8.0)
        dts = [dt0, dt0 / 2, dt0 / 4]
        ltes = []
        residuals = []
        for dt in dts:
            with warnings.catch_warnings():
                # a random dt0 rarely divides t_stop: snapping (to a
                # marginally finer dt) is expected, not interesting
                warnings.simplefilter("ignore", UserWarning)
                result = transient_analysis(c, t_stop=t_stop, dt=dt)
            diag = result.diagnostics
            assert np.isfinite(diag.lte_max)
            ltes.append(diag.lte_max)
            residuals.append(diag.energy_residual)
        # Step-doubling LTE tracks the O(dt^3) per-step trapezoidal
        # error: each halving must shrink it (tiny absolute slack for
        # estimates already at the machine-noise floor).
        for coarse, fine in zip(ltes, ltes[1:]):
            assert fine <= coarse * 1.05 + 1e-12, ltes
        # and with a fine grid the estimate is genuinely small
        assert ltes[-1] < 1e-2
        # the energy-balance residual is integration error too
        assert residuals[-1] <= residuals[0] * 1.5 + 1e-12, residuals
