"""SPICE export -> import round-trip regression tests (PR 5).

The paper's deliverable is a SPICE-ready netlist, so the exporter and
importer must agree: K coupling cards and source waveforms have to
survive a round trip, and the round-tripped circuit must be *exactly*
as healthy as the original -- verified by asserting identical
:class:`~repro.circuit.lint.NetlistHealthReport` dicts, which cover
element values, couplings, L-matrix passivity and connectivity in one
comparison.

All component values are chosen representable in the exporter's
``%.6e`` format, so the round trip is bit-exact and the health reports
(including the L-matrix eigenvalue) compare with ``==``.
"""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    PulseSource,
    PWLSource,
    SineSource,
    from_spice,
    lint_circuit,
    to_spice,
)


def _reference_circuit():
    """Every exportable element kind, with K coupling and rich sources."""
    c = Circuit("roundtrip reference")
    c.add_voltage_source("Vclk", "in", "0", PulseSource(
        v1=0.0, v2=1.8, delay=5e-11, rise=5e-11, fall=5e-11,
        width=1e-9, period=4e-9,
    ))
    c.add_resistor("R1", "in", "a", 100.0)
    c.add_inductor("L1", "a", "b", 1e-9, initial_current=0.001)
    c.add_inductor("L2", "b", "c", 4e-9)
    # M = 0.5 * sqrt(1n * 4n) = 1 nH exactly: k survives %.6e unchanged
    c.add_mutual("K1", "L1", "L2", coupling=0.5)
    c.add_capacitor("C1", "c", "0", 2e-13, initial_voltage=0.5)
    c.add_vcvs("E1", "buf", "0", "c", "0", 1.0)
    c.add_resistor("R2", "buf", "d", 25.0)
    c.add_capacitor("C2", "d", "0", 5e-14)
    c.add_voltage_source("Vsin", "e", "0", SineSource(
        offset=0.0, amplitude=0.25, frequency=1e9, delay=1e-10))
    c.add_resistor("R3", "e", "0", 50.0)
    c.add_current_source("Inoise", "d", "0", PWLSource(
        times=[0.0, 1e-10, 2e-10], values=[0.0, 0.001, 0.0]))
    return c


class TestRoundTrip:
    def test_deck_is_idempotent(self):
        deck1 = to_spice(_reference_circuit())
        deck2 = to_spice(from_spice(deck1).circuit)
        assert deck1 == deck2

    def test_k_line_preserved(self):
        deck = to_spice(_reference_circuit())
        k_lines = [l for l in deck.splitlines() if l.startswith("K")]
        assert k_lines == ["K1 L1 L2 5.000000e-01"]
        back = from_spice(deck).circuit
        assert len(back.mutuals) == 1
        mutual = back.mutuals[0]
        assert {mutual.inductor1, mutual.inductor2} == {"L1", "L2"}
        assert mutual.mutual == pytest.approx(1e-9)

    def test_source_waveforms_preserved(self):
        original = _reference_circuit()
        back = from_spice(to_spice(original)).circuit
        times = np.linspace(0.0, 5e-9, 701)
        for name in ("Vclk", "Vsin", "Inoise"):
            w1 = original.element(name).waveform
            w2 = back.element(name).waveform
            for t in times:
                assert w1(t) == pytest.approx(w2(t), abs=1e-12), name

    def test_initial_conditions_preserved(self):
        back = from_spice(to_spice(_reference_circuit())).circuit
        assert back.element("L1").initial_current == pytest.approx(0.001)
        assert back.element("C1").initial_voltage == pytest.approx(0.5)

    def test_health_reports_identical(self):
        """The lint report covers values, couplings, passivity and
        connectivity in one shot: identical reports == faithful trip."""
        original = _reference_circuit()
        back = from_spice(to_spice(original)).circuit
        report1 = lint_circuit(original, name="ref")
        report2 = lint_circuit(back, name="ref")
        assert report1.to_dict() == report2.to_dict()
        assert report1.clean

    def test_unhealthy_deck_health_also_survives(self):
        # A structurally broken (but parseable) deck must lint the same
        # before and after a round trip.
        c = Circuit("stubby")
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "0", 10.0)
        c.add_resistor("Rstub", "a", "stub", 5.0)  # dangling node
        back = from_spice(to_spice(c)).circuit
        r1 = lint_circuit(c, name="s")
        r2 = lint_circuit(back, name="s")
        assert r1.to_dict() == r2.to_dict()
        assert [f.code for f in r2.findings] == ["dangling_node"]

    def test_pulse_period_coercion_is_stable(self):
        # period <= 0 exports as 1.0 s; the *second* trip must be a
        # fixed point even though the first changes the value.
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", PulseSource(
            v1=0.0, v2=1.0, delay=0.0, rise=1e-11, fall=1e-11,
            width=1e-9, period=0.0))
        c.add_resistor("R1", "a", "0", 10.0)
        deck1 = to_spice(c)
        deck2 = to_spice(from_spice(deck1).circuit)
        deck3 = to_spice(from_spice(deck2).circuit)
        assert deck2 == deck3
