"""Waveform measurement: crossings, delay, overshoot, skew."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.waveform import Waveform, arrival_times, skew
from repro.errors import CircuitError


def ramp(t_end=1e-9, n=101, v_end=1.0):
    t = np.linspace(0.0, t_end, n)
    return Waveform(t, v_end * t / t_end)


def ringing(final=1.0, overshoot=0.3, n=1000):
    t = np.linspace(0.0, 10.0, n)
    v = final * (1.0 - np.exp(-t) * np.cos(3.0 * t) * (1 + overshoot))
    return Waveform(t, v)


class TestConstruction:
    def test_mismatched_shapes(self):
        with pytest.raises(CircuitError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0, 2.0]))

    def test_non_monotone_time(self):
        with pytest.raises(CircuitError):
            Waveform(np.array([0.0, 1.0, 0.5]), np.zeros(3))

    def test_too_few_samples(self):
        with pytest.raises(CircuitError):
            Waveform(np.array([0.0]), np.array([1.0]))


class TestCrossings:
    def test_linear_interpolation(self):
        w = ramp()
        assert w.threshold_crossing(0.5) == pytest.approx(0.5e-9, rel=1e-9)

    def test_occurrence_selection(self):
        t = np.linspace(0, 6 * np.pi, 3000)
        w = Waveform(t, np.sin(t))
        first = w.threshold_crossing(0.5, rising=True, occurrence=1)
        second = w.threshold_crossing(0.5, rising=True, occurrence=2)
        assert second - first == pytest.approx(2 * np.pi, rel=1e-3)

    def test_falling_crossing(self):
        t = np.linspace(0, 1, 101)
        w = Waveform(t, 1.0 - t)
        assert w.threshold_crossing(0.5, rising=False) == pytest.approx(0.5)

    def test_no_crossing_returns_none(self):
        assert ramp().threshold_crossing(2.0) is None

    def test_bad_occurrence(self):
        with pytest.raises(CircuitError):
            ramp().threshold_crossing(0.5, occurrence=0)

    def test_at_interpolates(self):
        w = ramp()
        assert w.at(0.25e-9) == pytest.approx(0.25)


class TestDelay:
    def test_shifted_copy(self):
        t = np.linspace(0, 10e-9, 1001)
        v = np.clip((t - 1e-9) / 1e-10, 0, 1)
        source = Waveform(t, v)
        sink = Waveform(t, np.clip((t - 3e-9) / 1e-10, 0, 1))
        assert source.delay_to(sink) == pytest.approx(2e-9, rel=1e-6)

    def test_fraction_validated(self):
        w = ramp()
        with pytest.raises(CircuitError):
            w.delay_to(w, fraction=0.0)

    def test_never_crossing_raises(self):
        t = np.linspace(0, 1e-9, 100)
        low = Waveform(t, np.full(100, 0.1))
        with pytest.raises(CircuitError):
            ramp().delay_to(low)


class TestOvershoot:
    def test_ringing_overshoot_positive(self):
        w = ringing(overshoot=0.3)
        assert w.overshoot(reference=1.0) > 0.1

    def test_monotone_no_overshoot(self):
        assert ramp().overshoot(reference=1.0) == 0.0

    def test_undershoot_after_peak(self):
        w = ringing(overshoot=0.5)
        assert w.undershoot(reference=1.0) > 0.0

    def test_monotone_no_undershoot(self):
        assert ramp().undershoot(reference=1.0) == 0.0

    def test_zero_reference_rejected(self):
        t = np.linspace(0, 1, 10)
        w = Waveform(t, np.zeros(10))
        with pytest.raises(CircuitError):
            w.overshoot()

    def test_negative_swing_overshoot(self):
        t = np.linspace(0, 10, 500)
        v = -(1.0 - np.exp(-t) * np.cos(3 * t) * 1.4)
        w = Waveform(t, v)
        assert w.overshoot(reference=-1.0) > 0.1


class TestSettling:
    def test_settles_eventually(self):
        w = ringing()
        t_settle = w.settling_time(tolerance=0.05)
        assert t_settle is not None
        assert 0 < t_settle < w.time[-1]

    def test_already_settled(self):
        t = np.linspace(0, 1, 10)
        w = Waveform(t, np.ones(10))
        assert w.settling_time() == pytest.approx(0.0)

    def test_tighter_tolerance_settles_later(self):
        w = ringing()
        loose = w.settling_time(tolerance=0.2)
        tight = w.settling_time(tolerance=0.02)
        assert tight >= loose


class TestSkew:
    def test_max_minus_min(self):
        assert skew({"a": 10e-12, "b": 17e-12, "c": 12e-12}) == pytest.approx(
            7e-12
        )

    def test_single_sink_zero_skew(self):
        assert skew({"a": 5e-12}) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            skew({})

    def test_arrival_times_helper(self):
        t = np.linspace(0, 10e-9, 1001)
        source = Waveform(t, np.clip((t - 1e-9) / 1e-10, 0, 1))
        sinks = {
            "near": Waveform(t, np.clip((t - 2e-9) / 1e-10, 0, 1)),
            "far": Waveform(t, np.clip((t - 4e-9) / 1e-10, 0, 1)),
        }
        arrivals = arrival_times(source, sinks)
        assert arrivals["near"] == pytest.approx(1e-9, rel=1e-6)
        assert arrivals["far"] == pytest.approx(3e-9, rel=1e-6)
        assert skew(arrivals) == pytest.approx(2e-9, rel=1e-6)


@given(st.floats(0.1, 0.9))
@settings(max_examples=25)
def test_ramp_crossing_property(level):
    w = ramp()
    crossing = w.threshold_crossing(level)
    assert crossing == pytest.approx(level * 1e-9, rel=1e-6)
