"""CSV export of waveforms."""

import numpy as np
import pytest

from repro.circuit.waveform import Waveform, write_csv
from repro.errors import CircuitError


def make_wave(scale=1.0):
    t = np.linspace(0, 1e-9, 11)
    return Waveform(t, scale * t * 1e9)


class TestWriteCSV:
    def test_header_and_rows(self, tmp_path):
        path = tmp_path / "waves.csv"
        write_csv(path, {"a": make_wave(), "b": make_wave(2.0)})
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,a,b"
        assert len(lines) == 12

    def test_values_parse_back(self, tmp_path):
        path = tmp_path / "waves.csv"
        wave = make_wave()
        write_csv(path, {"v": wave})
        data = np.genfromtxt(path, delimiter=",", names=True)
        assert np.allclose(data["time"], wave.time)
        assert np.allclose(data["v"], wave.values)

    def test_time_unit_rescaling(self, tmp_path):
        path = tmp_path / "waves.csv"
        write_csv(path, {"v": make_wave()}, time_unit=1e-12)
        data = np.genfromtxt(path, delimiter=",", names=True)
        assert data["time"][-1] == pytest.approx(1000.0)  # 1 ns in ps

    def test_mismatched_time_bases_rejected(self, tmp_path):
        other = Waveform(np.linspace(0, 2e-9, 11), np.zeros(11))
        with pytest.raises(CircuitError):
            write_csv(tmp_path / "x.csv", {"a": make_wave(), "b": other})

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(CircuitError):
            write_csv(tmp_path / "x.csv", {})

    def test_transient_result_waveforms(self, tmp_path):
        from repro.circuit.netlist import Circuit
        from repro.circuit.sources import PulseSource
        from repro.circuit.transient import transient_analysis

        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0",
                                   PulseSource(0, 1, rise=1e-11, width=1.0))
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_capacitor("C1", "out", "0", 1e-13)
        result = transient_analysis(circuit, t_stop=1e-9, dt=1e-12)
        path = tmp_path / "sim.csv"
        write_csv(path, {"in": result.voltage("in"),
                         "out": result.voltage("out")})
        assert path.exists()
        assert path.read_text().startswith("time,in,out")
