"""Transient diagnostics, dt snapping and circuit spans (PR 5)."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    PulseSource,
    SineSource,
    operating_point,
    transient_analysis,
)
from repro.circuit.diagnostics import TransientDiagnostics, dt_adequacy
from repro.errors import CircuitError
from repro.telemetry import get_tracer, metrics_meter, spans_disabled


def _rlc_circuit(rise=50e-12):
    c = Circuit("diag")
    c.add_voltage_source("Vin", "in", "0", PulseSource(
        v1=0.0, v2=1.0, delay=0.0, rise=rise, fall=rise,
        width=2e-9, period=0.0,
    ))
    c.add_resistor("R1", "in", "mid", 50.0)
    c.add_inductor("L1", "mid", "out", 1e-9)
    c.add_capacitor("C1", "out", "0", 2e-13)
    return c


def _find_span(node, name):
    if node["name"] == name:
        return node
    for child in node.get("children", ()):
        found = _find_span(child, name)
        if found is not None:
            return found
    return None


class TestStepSnapping:
    def test_non_integer_ratio_snaps_and_lands_on_t_stop(self):
        circuit = _rlc_circuit()
        with metrics_meter() as meter:
            with pytest.warns(UserWarning, match="dt snapped"):
                result = transient_analysis(circuit, t_stop=1e-9, dt=0.3e-10)
        assert result.time[-1] == 1e-9
        assert meter.delta.counter("circuit_dt_snapped") == 1
        diag = result.diagnostics
        assert diag.dt_snapped
        assert diag.requested_dt == 0.3e-10
        assert diag.dt < diag.requested_dt
        # grid is uniform with the snapped dt
        assert np.allclose(np.diff(result.time), diag.dt)
        assert any("snapped" in flag for flag in diag.flags())

    def test_integer_ratio_does_not_snap(self):
        circuit = _rlc_circuit()
        import warnings

        with metrics_meter() as meter:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                result = transient_analysis(circuit, t_stop=1e-9, dt=1e-12)
        assert meter.delta.counter("circuit_dt_snapped") == 0
        assert not result.diagnostics.dt_snapped
        assert result.time[-1] == 1e-9
        assert len(result.time) == 1001

    def test_float_noise_ratio_counts_as_integer(self):
        # 3e-9 / 1e-11 = 299.99999999999994 in floats: must not snap.
        circuit = _rlc_circuit()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = transient_analysis(circuit, t_stop=3e-9, dt=1e-11)
        assert len(result.time) == 301
        assert result.time[-1] == 3e-9


class TestTransientDiagnostics:
    def test_fields_and_serialization(self):
        circuit = _rlc_circuit()
        result = transient_analysis(circuit, t_stop=2e-9, dt=1e-12)
        diag = result.diagnostics
        assert isinstance(diag, TransientDiagnostics)
        assert diag.method == "trapezoidal"
        assert diag.steps == 2000
        # 3 non-ground nodes + 2 branch currents (Vin, L1)
        assert diag.matrix_size == 5
        assert diag.num_nodes == 3
        assert diag.num_branches == 2
        assert diag.factor_seconds >= 0.0
        data = diag.to_dict()
        assert TransientDiagnostics.from_dict(data) == diag

    def test_lte_estimate_finite_and_small_for_fine_dt(self):
        circuit = _rlc_circuit()
        result = transient_analysis(circuit, t_stop=2e-9, dt=0.5e-12)
        diag = result.diagnostics
        assert 0.0 <= diag.lte_p95 <= diag.lte_max
        assert np.isfinite(diag.lte_max)
        assert diag.lte_probes > 0
        assert diag.lte_max < 1e-2

    def test_energy_balance_residual_small(self):
        circuit = _rlc_circuit()
        result = transient_analysis(circuit, t_stop=3e-9, dt=1e-12)
        diag = result.diagnostics
        assert diag.energy_input > 0.0
        assert diag.energy_dissipated > 0.0
        # Tellegen: the residual measures integration error only.
        assert diag.energy_residual < 1e-4

    def test_dt_adequacy_flags_undersampling(self):
        circuit = _rlc_circuit(rise=50e-12)  # f_s = 6.4 GHz
        fine = transient_analysis(circuit, t_stop=2e-9, dt=1e-12)
        assert fine.diagnostics.dt_adequate
        coarse = transient_analysis(circuit, t_stop=2e-9, dt=5e-11)
        assert not coarse.diagnostics.dt_adequate
        assert coarse.diagnostics.steps_per_significant_period < 10.0
        assert any("undersample" in f for f in coarse.diagnostics.flags())

    def test_dt_adequacy_helper_without_timed_sources(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)  # DC: no frequency
        c.add_resistor("R1", "a", "0", 10.0)
        info = dt_adequacy(c, 1e-12)
        assert info["frequency"] is None
        assert info["adequate"] is True

    def test_dt_adequacy_from_sine_source(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", SineSource(
            offset=0.0, amplitude=1.0, frequency=1e9))
        c.add_resistor("R1", "a", "0", 10.0)
        info = dt_adequacy(c, 1e-11)
        assert info["frequency"] == pytest.approx(1e9)
        assert info["steps_per_period"] == pytest.approx(100.0)

    def test_diagnostics_disabled(self):
        result = transient_analysis(
            _rlc_circuit(), t_stop=1e-9, dt=1e-12, diagnostics=False
        )
        assert result.diagnostics is None

    def test_dc_start_fallback_flag_and_counter(self):
        # An inductor directly across the source makes DC singular; the
        # least-squares start must be taken and flagged.
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", PulseSource(
            v1=0.0, v2=1.0, delay=1e-10, rise=1e-10, fall=1e-10,
            width=1e-9, period=0.0,
        ))
        c.add_inductor("L1", "a", "0", 1e-9)
        c.add_resistor("R1", "a", "0", 100.0)
        with metrics_meter() as meter:
            result = transient_analysis(c, t_stop=1e-9, dt=1e-12)
        assert result.diagnostics.dc_start_fallback
        assert meter.delta.counter("circuit_dc_start_fallback") == 1
        assert any("fallback" in f for f in result.diagnostics.flags())

    def test_transient_steps_counter(self):
        with metrics_meter() as meter:
            transient_analysis(_rlc_circuit(), t_stop=1e-9, dt=1e-12,
                               diagnostics=False)
        assert meter.delta.counter("circuit_transient_steps") == 1000


class TestCircuitSpans:
    def test_transient_and_assemble_spans_recorded(self):
        tracer = get_tracer()
        tracer.reset()
        previous = tracer.enabled
        tracer.enabled = True
        try:
            circuit = _rlc_circuit()
            transient_analysis(circuit, t_stop=1e-9, dt=1e-12)
            operating_point(circuit)
            roots = [sp.to_dict() for sp in tracer.drain()]
        finally:
            tracer.enabled = previous
        names = [r["name"] for r in roots]
        assert "circuit.assemble" in names
        assert "circuit.transient" in names
        assert "circuit.dc" in names
        transient = next(r for r in roots if r["name"] == "circuit.transient")
        assert transient["tags"]["steps"] == 1000
        assert transient["tags"]["factor_seconds"] >= 0.0
        assert transient["tags"]["size"] > 0
        # diagnostics execute under their own child span
        assert _find_span(transient, "circuit.diagnostics") is not None

    def test_spans_disabled_still_produces_diagnostics(self):
        with spans_disabled():
            result = transient_analysis(_rlc_circuit(), t_stop=1e-9, dt=1e-12)
        assert result.diagnostics is not None
        assert result.diagnostics.steps == 1000


class TestValidation:
    def test_bad_arguments_rejected(self):
        circuit = _rlc_circuit()
        with pytest.raises(CircuitError):
            transient_analysis(circuit, t_stop=0.0, dt=1e-12)
        with pytest.raises(CircuitError):
            transient_analysis(circuit, t_stop=1e-9, dt=2e-9)
        with pytest.raises(CircuitError):
            transient_analysis(circuit, t_stop=1e-9, dt=1e-12, method="rk4")
        with pytest.raises(CircuitError):
            transient_analysis(circuit, t_stop=1e-9, dt=1e-12, initial="warm")
