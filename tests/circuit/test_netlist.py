"""Circuit construction and MNA assembly."""

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.errors import CircuitError


def rc_circuit():
    c = Circuit("rc")
    c.add_voltage_source("V1", "in", "0", 1.0)
    c.add_resistor("R1", "in", "out", 1e3)
    c.add_capacitor("C1", "out", "0", 1e-12)
    return c


class TestConstruction:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(CircuitError):
            c.add_capacitor("R1", "a", "0", 1e-12)

    def test_self_connection_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().add_resistor("R1", "a", "a", 1.0)

    def test_nonpositive_values_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.add_resistor("R1", "a", "0", 0.0)
        with pytest.raises(CircuitError):
            c.add_capacitor("C1", "a", "0", -1e-12)
        with pytest.raises(CircuitError):
            c.add_inductor("L1", "a", "0", 0.0)

    def test_nodes_in_first_use_order(self):
        c = rc_circuit()
        assert c.nodes == ["in", "out"]

    def test_element_lookup(self):
        c = rc_circuit()
        assert c.element("R1").resistance == 1e3
        with pytest.raises(CircuitError):
            c.element("R9")

    def test_branch_elements(self):
        c = rc_circuit()
        c.add_inductor("L1", "out", "0", 1e-9)
        assert [e.name for e in c.branch_elements] == ["V1", "L1"]


class TestMutuals:
    def make_pair(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_inductor("L1", "a", "0", 4e-9)
        c.add_inductor("L2", "b", "0", 1e-9)
        c.add_resistor("RL", "b", "0", 50.0)
        return c

    def test_coupling_coefficient_form(self):
        c = self.make_pair()
        k = c.add_mutual("K1", "L1", "L2", coupling=0.5)
        assert k.mutual == pytest.approx(0.5 * np.sqrt(4e-9 * 1e-9))

    def test_direct_mutual_form(self):
        c = self.make_pair()
        k = c.add_mutual("K1", "L1", "L2", mutual=1e-9)
        assert k.mutual == 1e-9

    def test_passivity_guard(self):
        c = self.make_pair()
        with pytest.raises(CircuitError):
            c.add_mutual("K1", "L1", "L2", mutual=3e-9)   # > sqrt(L1 L2)
        with pytest.raises(CircuitError):
            c.add_mutual("K2", "L1", "L2", coupling=1.0)

    def test_unknown_inductor(self):
        c = self.make_pair()
        with pytest.raises(CircuitError):
            c.add_mutual("K1", "L1", "L9", coupling=0.5)

    def test_exactly_one_spec(self):
        c = self.make_pair()
        with pytest.raises(CircuitError):
            c.add_mutual("K1", "L1", "L2")
        with pytest.raises(CircuitError):
            c.add_mutual("K1", "L1", "L2", mutual=1e-10, coupling=0.1)


class TestAssembly:
    def test_size_counts_nodes_and_branches(self):
        c = rc_circuit()
        assembled = c.assemble()
        assert assembled.num_nodes == 2
        assert assembled.size == 3    # 2 nodes + 1 V-source branch

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().assemble()

    def test_no_ground_rejected(self):
        c = Circuit()
        c.add_resistor("R1", "a", "b", 1.0)
        with pytest.raises(CircuitError):
            c.assemble()

    def test_g_matrix_resistor_stamp(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 2.0)
        c.add_resistor("R2", "b", "0", 2.0)
        assembled = c.assemble()
        g = assembled.stamps.g_matrix
        ia, ib = assembled.node_row("a"), assembled.node_row("b")
        assert g[ia, ia] == pytest.approx(0.5)
        assert g[ib, ib] == pytest.approx(1.0)
        assert g[ia, ib] == pytest.approx(-0.5)

    def test_c_matrix_symmetric(self):
        c = rc_circuit()
        c.add_inductor("L1", "out", "0", 1e-9)
        c.add_inductor("L2", "in", "0", 1e-9)
        c.add_mutual("K", "L1", "L2", coupling=0.3)
        stamps = c.assemble().stamps
        assert np.allclose(stamps.c_matrix, stamps.c_matrix.T)

    def test_branch_row_lookup(self):
        assembled = rc_circuit().assemble()
        assert assembled.branch_row("V1") == assembled.num_nodes
        with pytest.raises(CircuitError):
            assembled.branch_row("R1")

    def test_node_row_unknown(self):
        assembled = rc_circuit().assemble()
        with pytest.raises(CircuitError):
            assembled.node_row("zzz")

    def test_initial_state_from_ics(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 0.0)
        c.add_resistor("R1", "a", "b", 1.0)
        c.add_capacitor("C1", "b", "0", 1e-12, initial_voltage=0.7)
        c.add_inductor("L1", "b", "0", 1e-9, initial_current=1e-3)
        assembled = c.assemble()
        x0 = assembled.initial_state()
        assert x0[assembled.node_row("b")] == pytest.approx(0.7)
        assert x0[assembled.branch_row("L1")] == pytest.approx(1e-3)
