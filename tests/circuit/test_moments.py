"""Moment computation and moment-based delay estimates."""

import numpy as np
import pytest

from repro.circuit.moments import compute_moments
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource
from repro.circuit.transient import transient_analysis
from repro.errors import CircuitError, SolverError


def rc_ladder(n=3, r=1e3, c=1e-12):
    circuit = Circuit()
    circuit.add_voltage_source("V1", "n0", "0", 1.0)
    for k in range(n):
        circuit.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", r)
        circuit.add_capacitor(f"C{k}", f"n{k + 1}", "0", c)
    return circuit


def rlc_line(r=10.0, l=1.5e-9, c=1.5e-12, rs=15.0, sections=4):
    circuit = Circuit()
    circuit.add_voltage_source("V1", "src", "0", 1.0)
    circuit.add_resistor("Rs", "src", "n0", rs)
    for k in range(sections):
        circuit.add_capacitor(f"Ca{k}", f"n{k}", "0", c / sections / 2)
        circuit.add_resistor(f"R{k}", f"n{k}", f"m{k}", r / sections)
        circuit.add_inductor(f"L{k}", f"m{k}", f"n{k + 1}", l / sections)
        circuit.add_capacitor(f"Cb{k}", f"n{k + 1}", "0", c / sections / 2)
    return circuit, f"n{sections}"


class TestMomentRecursion:
    def test_m0_is_dc_solution(self):
        expansion = compute_moments(rc_ladder())
        assert expansion.node_moments("n3")[0] == pytest.approx(1.0, abs=1e-6)

    def test_elmore_of_single_rc(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "a", "0", 1.0)
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_capacitor("C1", "b", "0", 1e-12)
        expansion = compute_moments(circuit)
        assert expansion.elmore_delay("b") == pytest.approx(1e-9, rel=1e-9)

    def test_elmore_of_ladder_matches_formula(self):
        # Elmore delay of node j in a uniform ladder: sum_k R_upstream C_k
        n, r, c = 3, 1e3, 1e-12
        expansion = compute_moments(rc_ladder(n, r, c))
        expected = sum(r * (i + 1) * c for i in range(n))  # to the far node:
        # node n sees R1(C1+C2+C3) + R2(C2+C3) + R3(C3) = rc(3+2+1)
        expected = r * c * (3 + 2 + 1)
        assert expansion.elmore_delay("n3") == pytest.approx(expected, rel=1e-9)

    def test_moment_signs_alternate_for_rc(self):
        expansion = compute_moments(rc_ladder(), order=4)
        m = expansion.node_moments("n3")
        assert m[1] < 0 < m[0]
        assert m[2] > 0
        assert m[3] < 0

    def test_order_validation(self):
        with pytest.raises(CircuitError):
            compute_moments(rc_ladder(), order=0)

    def test_unknown_node(self):
        expansion = compute_moments(rc_ladder())
        with pytest.raises(CircuitError):
            expansion.node_moments("zzz")


class TestDelayEstimates:
    def test_two_pole_tracks_simulation_rc(self):
        circuit = rc_ladder(4)
        expansion = compute_moments(circuit)
        estimate = expansion.two_pole_delay("n4")
        # reference transient with a fast step
        sim = Circuit()
        sim.add_voltage_source("V1", "n0", "0",
                               PulseSource(0, 1, rise=1e-13, width=1.0))
        for k in range(4):
            sim.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", 1e3)
            sim.add_capacitor(f"C{k}", f"n{k + 1}", "0", 1e-12)
        result = transient_analysis(sim, t_stop=60e-9, dt=10e-12)
        reference = result.voltage("n4").threshold_crossing(0.5)
        assert estimate == pytest.approx(reference, rel=0.25)

    def test_two_pole_beats_elmore_for_rlc(self):
        circuit, out = rlc_line()
        expansion = compute_moments(circuit)
        two_pole = expansion.two_pole_delay(out)

        sim, sim_out = rlc_line()
        sim.elements[0].waveform = PulseSource(0, 1, rise=1e-13, width=1.0)
        result = transient_analysis(sim, t_stop=10e-9, dt=1e-12)
        reference = result.voltage(sim_out).threshold_crossing(0.5)

        elmore = expansion.elmore_delay(out)
        assert abs(two_pole - reference) < abs(elmore - reference)

    def test_zero_dc_response_rejected(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "a", "0", 0.0)   # zero source
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_capacitor("C1", "b", "0", 1e-12)
        expansion = compute_moments(circuit)
        with pytest.raises(SolverError):
            expansion.elmore_delay("b")

    def test_two_pole_needs_order_two(self):
        expansion = compute_moments(rc_ladder(), order=1)
        with pytest.raises(SolverError):
            expansion.two_pole_delay("n3")
