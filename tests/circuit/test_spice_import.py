"""SPICE deck parsing and export/import round trips."""

import numpy as np
import pytest

from repro.circuit.elements import Capacitor, Inductor, Resistor
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource, PWLSource, SineSource
from repro.circuit.spice_export import to_spice
from repro.circuit.spice_import import from_spice, parse_value
from repro.circuit.transient import transient_analysis
from repro.errors import CircuitError


class TestValueParsing:
    @pytest.mark.parametrize("token,expected", [
        ("1", 1.0),
        ("2.5", 2.5),
        ("-3e-9", -3e-9),
        ("1k", 1e3),
        ("2.2n", 2.2e-9),
        ("10meg", 10e6),
        ("100p", 100e-12),
        ("4.7u", 4.7e-6),
        ("1M", 1e-3),          # SPICE: m/M is milli
        ("5ohm", 5.0),
        ("3.3G", 3.3e9),
        ("2f", 2e-15),
    ])
    def test_values(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage_rejected(self):
        with pytest.raises(CircuitError):
            parse_value("abc")


class TestParsing:
    def test_basic_rlc(self):
        deck = """* test
V1 in 0 DC 1.8
R1 in a 1k
L1 a out 2n IC=1m
C1 out 0 100f IC=0.5
.tran 1p 1n
.end
"""
        parsed = from_spice(deck)
        assert parsed.title == "test"
        assert parsed.controls == ["tran 1p 1n"]
        circuit = parsed.circuit
        assert circuit.element("R1").resistance == pytest.approx(1e3)
        assert circuit.element("L1").inductance == pytest.approx(2e-9)
        assert circuit.element("L1").initial_current == pytest.approx(1e-3)
        assert circuit.element("C1").capacitance == pytest.approx(100e-15)
        assert circuit.element("C1").initial_voltage == pytest.approx(0.5)

    def test_continuation_lines(self):
        deck = """* cont
V1 in 0 PWL(0 0
+ 1n 1.0
+ 2n 0.5)
R1 in 0 50
.end
"""
        circuit = from_spice(deck).circuit
        source = circuit.element("V1").waveform
        assert isinstance(source, PWLSource)
        assert source(1e-9) == pytest.approx(1.0)

    def test_pulse_source(self):
        deck = "* t\nV1 a 0 PULSE(0 1.8 1n 50p 50p 2n 8n)\nR1 a 0 50\n.end"
        source = from_spice(deck).circuit.element("V1").waveform
        assert isinstance(source, PulseSource)
        assert source(0.0) == 0.0
        assert source(1e-9 + 50e-12 + 1e-9) == pytest.approx(1.8)

    def test_sine_source(self):
        deck = "* t\nV1 a 0 SIN(0.9 0.1 1g)\nR1 a 0 50\n.end"
        source = from_spice(deck).circuit.element("V1").waveform
        assert isinstance(source, SineSource)
        assert source.frequency == pytest.approx(1e9)

    def test_coupling_card(self):
        deck = """* k
V1 a 0 DC 0
L1 a 0 1n
L2 b 0 4n
R1 b 0 50
K1 L1 L2 0.5
.end
"""
        circuit = from_spice(deck).circuit
        assert len(circuit.mutuals) == 1
        assert circuit.mutuals[0].mutual == pytest.approx(
            0.5 * np.sqrt(1e-9 * 4e-9)
        )

    def test_vcvs(self):
        deck = "* e\nV1 a 0 DC 1\nRi a 0 1k\nE1 b 0 a 0 2.0\nRL b 0 1k\n.end"
        circuit = from_spice(deck).circuit
        from repro.circuit.dc import operating_point
        assert operating_point(circuit)["b"] == pytest.approx(2.0)

    def test_unknown_card_rejected(self):
        with pytest.raises(CircuitError):
            from_spice("* t\nQ1 a b c model\n.end")

    def test_orphan_continuation_rejected(self):
        with pytest.raises(CircuitError):
            from_spice("+ R1 a 0 1k")


class TestRoundTrip:
    def build_original(self):
        c = Circuit("round trip")
        c.add_voltage_source("Vin", "in", "0",
                             PulseSource(0.0, 1.0, delay=1e-10,
                                         rise=5e-11, fall=5e-11, width=1e-9))
        c.add_resistor("R1", "in", "a", 25.0)
        c.add_inductor("L1", "a", "out", 1e-9)
        c.add_inductor("L2", "b", "0", 1e-9)
        c.add_resistor("R2", "b", "0", 50.0)
        c.add_capacitor("C1", "out", "0", 1e-12)
        c.add_mutual("K1", "L1", "L2", coupling=0.3)
        return c

    def test_element_values_preserved(self):
        original = self.build_original()
        rebuilt = from_spice(to_spice(original)).circuit
        for name in ("R1", "L1", "C1"):
            a, b = original.element(name), rebuilt.element(name)
            for attr in ("resistance", "inductance", "capacitance"):
                if hasattr(a, attr):
                    assert getattr(b, attr) == pytest.approx(getattr(a, attr))
        assert rebuilt.mutuals[0].mutual == pytest.approx(
            original.mutuals[0].mutual
        )

    def test_simulation_equivalence(self):
        original = self.build_original()
        rebuilt = from_spice(to_spice(original)).circuit
        res_a = transient_analysis(original, t_stop=2e-9, dt=1e-12)
        res_b = transient_analysis(rebuilt, t_stop=2e-9, dt=1e-12)
        va = res_a.voltage("out").values
        vb = res_b.voltage("out").values
        assert np.max(np.abs(va - vb)) < 1e-9

    def test_extracted_clocktree_round_trip(self):
        from repro.constants import GHz, um
        from repro.clocktree.configs import CoplanarWaveguideConfig
        from repro.clocktree.extractor import ClocktreeRLCExtractor
        from repro.clocktree.htree import HTree

        config = CoplanarWaveguideConfig(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            thickness=um(2), height_below=um(2),
        )
        extractor = ClocktreeRLCExtractor(config, frequency=GHz(3.2))
        htree = HTree.generate(levels=1, root_length=um(1000), config=config)
        netlist = extractor.build_netlist(htree)
        rebuilt = from_spice(to_spice(netlist.circuit)).circuit
        assert len(rebuilt.elements) == len(netlist.circuit.elements)
