"""Netlist health lint (PR 5)."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    NetlistHealthReport,
    PulseSource,
    lint_circuit,
    lint_spice,
    to_spice,
)
from repro.circuit.lint import LintFinding
from repro.errors import CircuitError
from repro.telemetry import metrics_meter


def _healthy_circuit():
    c = Circuit("healthy")
    c.add_voltage_source("Vin", "in", "0", PulseSource(
        v1=0.0, v2=1.8, delay=0.0, rise=5e-11, fall=5e-11,
        width=1e-9, period=0.0,
    ))
    c.add_resistor("R1", "in", "a", 50.0)
    c.add_inductor("L1", "a", "b", 1e-9)
    c.add_inductor("L2", "b", "c", 1e-9)
    c.add_mutual("K1", "L1", "L2", coupling=0.3)
    c.add_capacitor("C1", "c", "0", 1e-13)
    return c


def _codes(report):
    return [f.code for f in report.findings]


class TestHealthyCircuit:
    def test_clean_report(self):
        report = lint_circuit(_healthy_circuit())
        assert report.clean
        assert report.findings == []
        assert report.stats["resistors"] == 1
        assert report.stats["inductors"] == 2
        assert report.stats["mutuals"] == 1
        assert report.stats["nodes"] == 4
        assert report.max_coupling == pytest.approx(0.3)
        assert report.l_min_eigenvalue == pytest.approx(0.7e-9)
        assert "clean" in report.summary()

    def test_lint_counters(self):
        with metrics_meter() as meter:
            lint_circuit(_healthy_circuit())
        assert meter.delta.counter("netlist_lint") == 1
        assert meter.delta.counter("netlist_lint_finding") == 0
        # lint is observational: it must not count as solver work
        assert meter.total == 0

    def test_serialization_roundtrip(self):
        report = lint_circuit(_healthy_circuit())
        clone = NetlistHealthReport.from_dict(report.to_dict())
        assert clone == report


class TestStructuralFindings:
    def test_empty_circuit(self):
        report = lint_circuit(Circuit("void"))
        assert not report.clean
        assert _codes(report) == ["empty_circuit"]

    def test_no_ground(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "b", 1.0)
        c.add_resistor("R1", "a", "b", 10.0)
        report = lint_circuit(c)
        assert "no_ground" in _codes(report)
        assert not report.clean

    def test_current_source_only_node_is_disconnected(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "0", 10.0)
        c.add_current_source("I1", "a", "x", 1e-3)  # x has no return path
        report = lint_circuit(c)
        assert "disconnected_from_ground" in _codes(report)
        finding = next(f for f in report.findings
                       if f.code == "disconnected_from_ground")
        assert finding.subject == "x"

    def test_dangling_node_warning(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "0", 10.0)
        c.add_resistor("Rstub", "a", "stub", 5.0)  # dead-end stub
        report = lint_circuit(c)
        assert report.clean  # warning-only
        assert "dangling_node" in _codes(report)
        assert report.warnings[0].subject == "stub"

    def test_vcvs_control_only_node(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "0", 10.0)
        c.add_vcvs("E1", "out", "0", "phantom", "0", 2.0)
        c.add_resistor("R2", "out", "0", 10.0)
        report = lint_circuit(c)
        assert "control_only_node" in _codes(report)
        assert not report.clean


class TestValueFindings:
    def test_mutated_negative_resistance(self):
        c = _healthy_circuit()
        c.element("R1").resistance = -5.0  # bypasses the constructor
        report = lint_circuit(c)
        assert "non_positive_value" in _codes(report)
        assert report.errors[0].subject == "R1"

    def test_non_finite_capacitance(self):
        c = _healthy_circuit()
        c.element("C1").capacitance = float("nan")
        report = lint_circuit(c)
        assert "non_finite_value" in _codes(report)


class TestCouplingAndPassivity:
    def test_mutated_coupling_above_unity(self):
        c = _healthy_circuit()
        c.mutuals[0].mutual = 1.5e-9  # |k| = 1.5 for L1 = L2 = 1 nH
        report = lint_circuit(c)
        assert "coupling_exceeds_unity" in _codes(report)
        assert report.max_coupling == pytest.approx(1.5)
        assert not report.clean

    def test_near_unity_coupling_warns(self):
        c = _healthy_circuit()
        c.mutuals[0].mutual = 0.97e-9
        report = lint_circuit(c)
        assert "coupling_near_unity" in _codes(report)
        assert report.clean  # warning-only

    def test_collectively_non_passive_l_matrix(self):
        # Pairwise-legal couplings (|k| = 0.9 each) whose signs make the
        # assembled 3x3 inductance matrix indefinite: only the PSD check
        # can catch this, constructor validation cannot.
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_inductor("L1", "a", "b", 1e-9)
        c.add_inductor("L2", "b", "c", 1e-9)
        c.add_inductor("L3", "c", "0", 1e-9)
        c.add_mutual("K12", "L1", "L2", coupling=0.9)
        c.add_mutual("K23", "L2", "L3", coupling=0.9)
        c.add_mutual("K13", "L1", "L3", coupling=-0.9)
        report = lint_circuit(c)
        assert "l_matrix_not_psd" in _codes(report)
        assert report.l_min_eigenvalue < 0.0
        assert not report.clean
        # sanity: the eigenvalue really is what numpy says
        m = 0.9e-9
        l_mat = np.array([[1e-9, m, -m], [m, 1e-9, m], [-m, m, 1e-9]])
        assert report.l_min_eigenvalue == pytest.approx(
            float(np.linalg.eigvalsh(l_mat)[0]))


class TestSpiceLint:
    def test_good_deck_is_clean(self):
        deck = to_spice(_healthy_circuit())
        report = lint_spice(deck, name="deck.sp")
        assert report.clean
        assert report.name == "deck.sp"

    def test_negative_capacitance_deck_flagged(self):
        deck = "* bad\nV1 in 0 DC 1\nR1 in out 10\nC1 out 0 -1p\n.end\n"
        report = lint_spice(deck)
        assert not report.clean
        assert _codes(report) == ["parse_error"]

    def test_coupling_above_unity_deck_flagged(self):
        deck = ("* bad\nV1 in 0 DC 1\nL1 in x 1n\nL2 x 0 1n\n"
                "K1 L1 L2 1.2\n.end\n")
        report = lint_spice(deck)
        assert not report.clean
        assert "rejected by importer" in report.findings[0].message

    def test_render_mentions_findings(self):
        deck = "* bad\nV1 in 0 DC 1\nR1 in out 10\nC1 out 0 -1p\n.end\n"
        text = lint_spice(deck, name="bad.sp").render()
        assert "bad.sp" in text
        assert "ERROR" in text
        assert "parse_error" in text


class TestLintFinding:
    def test_unknown_severity_rejected(self):
        with pytest.raises(CircuitError):
            LintFinding("fatal", "x", "y")
