"""Sparse and dense MNA backends must be two views of one solver.

The sparse path exists for chip-scale capacity, not different numbers:
on any circuit both backends factor the same assembled system, so their
results must agree to solver roundoff (<= 1e-10 relative -- far tighter
than any physical tolerance in the suite).  Hypothesis drives randomized
passive RLC ladders through dc, transient and moment analysis under both
backends; a seeded H-tree deck covers the extractor-generated netlist
shape (mutual inductances, buffer VCVS stages) the ladders do not.

Also pinned here: ``solver="auto"`` keeps tier-1-sized fixtures on the
dense path (so the sparse backend cannot move any seed number), and the
chip-scale LTE probe subsampling kicks in exactly above its size cutoff.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit.backend import DENSE_SIZE_CUTOFF
from repro.circuit.dc import operating_point
from repro.circuit.diagnostics import LTE_SUBSAMPLE_PROBES, LTE_SUBSAMPLE_SIZE
from repro.circuit.moments import compute_moments
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource
from repro.circuit.transient import transient_analysis
from repro.telemetry import (
    LTE_SUBSAMPLED,
    SOLVER_FACTOR_DENSE,
    SOLVER_FACTOR_SPARSE,
    get_registry,
)

#: Acceptance bound: sparse and dense agree to this relative tolerance.
AGREEMENT_RTOL = 1e-10

FAST = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

dampings = st.floats(0.3, 2.0)
inductances = st.floats(1e-10, 1e-8)
capacitances = st.floats(1e-14, 1e-12)
stage = st.tuples(dampings, inductances, capacitances)
ladders = st.lists(stage, min_size=1, max_size=4)


def _ladder(stages):
    """Step-driven RLC ladder parameterized by damping ratio per stage."""
    c = Circuit("ladder")
    c.add_voltage_source(
        "Vs", "n0", "0", PulseSource(0.0, 1.0, rise=1e-11, width=1.0)
    )
    node = "n0"
    for i, (zeta, l, cap) in enumerate(stages):
        r = 2.0 * zeta * np.sqrt(l / cap)
        mid = f"m{i}"
        nxt = f"n{i + 1}"
        c.add_resistor(f"R{i}", node, mid, r)
        c.add_inductor(f"L{i}", mid, nxt, l)
        c.add_capacitor(f"C{i}", nxt, "0", cap)
        node = nxt
    return c


def assert_agreement(sparse_values, dense_values):
    """Relative agreement against the scale of the dense reference."""
    sparse_values = np.asarray(sparse_values, dtype=float)
    dense_values = np.asarray(dense_values, dtype=float)
    scale = np.max(np.abs(dense_values))
    if scale == 0.0:
        scale = 1.0
    np.testing.assert_allclose(
        sparse_values, dense_values,
        rtol=AGREEMENT_RTOL, atol=AGREEMENT_RTOL * scale,
    )


class TestLadderAgreement:
    @given(stages=ladders)
    @FAST
    def test_dc_operating_point(self, stages):
        circuit = _ladder(stages)
        dense = operating_point(circuit, solver="dense")
        sparse = operating_point(circuit, solver="sparse")
        assert sparse.keys() == dense.keys()
        assert_agreement([sparse[n] for n in dense],
                         [dense[n] for n in dense])

    @given(stages=ladders, method=st.sampled_from(
        ["trapezoidal", "backward_euler"]))
    @FAST
    def test_transient_waveforms(self, stages, method):
        circuit = _ladder(stages)
        runs = {}
        for solver in ("dense", "sparse"):
            runs[solver] = transient_analysis(
                circuit, t_stop=2e-9, dt=1e-11, method=method,
                diagnostics=False, solver=solver,
            )
        for node, dense_wave in runs["dense"].node_voltages.items():
            assert_agreement(runs["sparse"].node_voltages[node], dense_wave)
        for name, dense_wave in runs["dense"].branch_currents.items():
            assert_agreement(runs["sparse"].branch_currents[name], dense_wave)

    @given(stages=ladders)
    @FAST
    def test_moments(self, stages):
        circuit = _ladder(stages)
        dense = compute_moments(circuit, order=4, solver="dense")
        sparse = compute_moments(circuit, order=4, solver="sparse")
        # Moment magnitudes fall as (RC)^k; compare order by order.
        for k in range(dense.moments.shape[0]):
            assert_agreement(sparse.moments[k], dense.moments[k])


@pytest.fixture(scope="module")
def htree_netlist():
    """A seeded H-tree RLC deck from the real extraction flow."""
    from repro.clocktree.extractor import ClocktreeRLCExtractor
    from repro.core.frequency import significant_frequency
    from repro.experiments.htree_skew import default_htree

    htree = default_htree(levels=2)
    extractor = ClocktreeRLCExtractor(
        htree.config, frequency=significant_frequency(htree.buffer.rise_time)
    )
    return extractor.build_netlist(htree, include_inductance=True)


class TestHTreeDeckAgreement:
    def test_transient_sparse_matches_dense(self, htree_netlist):
        runs = {}
        for solver in ("dense", "sparse"):
            runs[solver] = transient_analysis(
                htree_netlist.circuit, t_stop=3e-10, dt=5e-13,
                diagnostics=False, solver=solver,
            )
        for node, dense_wave in runs["dense"].node_voltages.items():
            assert_agreement(runs["sparse"].node_voltages[node], dense_wave)

    def test_dc_sparse_matches_dense(self, htree_netlist):
        dense = operating_point(htree_netlist.circuit, solver="dense")
        sparse = operating_point(htree_netlist.circuit, solver="sparse")
        assert_agreement([sparse[n] for n in dense],
                         [dense[n] for n in dense])

    def test_auto_picks_dense_on_extracted_fixture(self, htree_netlist):
        assembled = htree_netlist.circuit.assemble()
        assert assembled.size <= DENSE_SIZE_CUTOFF
        registry = get_registry()
        registry.reset()
        transient_analysis(htree_netlist.circuit, t_stop=2e-10, dt=1e-12,
                           diagnostics=False, solver="auto")
        assert registry.counter_value(SOLVER_FACTOR_DENSE) >= 1
        assert registry.counter_value(SOLVER_FACTOR_SPARSE) == 0


def _rc_chain(stages):
    """A long RC chain: one node per stage, chip-scale-sized cheaply."""
    c = Circuit("chain")
    c.add_voltage_source(
        "Vs", "n0", "0", PulseSource(0.0, 1.0, rise=1e-11, width=1.0)
    )
    node = "n0"
    for i in range(stages):
        nxt = f"n{i + 1}"
        c.add_resistor(f"R{i}", node, nxt, 10.0)
        c.add_capacitor(f"C{i}", nxt, "0", 1e-15)
        node = nxt
    return c


class TestLTESubsampling:
    def test_large_circuit_caps_probes_and_ticks_counter(self):
        circuit = _rc_chain(LTE_SUBSAMPLE_SIZE + 50)
        registry = get_registry()
        registry.reset()
        result = transient_analysis(
            circuit, t_stop=1e-9, dt=5e-11, diagnostics=True, lte_probes=16,
        )
        assert registry.counter_value(LTE_SUBSAMPLED) == 1
        assert result.diagnostics.lte_probes <= LTE_SUBSAMPLE_PROBES
        # A circuit this size also auto-selects the sparse backend.
        assert registry.counter_value(SOLVER_FACTOR_SPARSE) >= 1

    def test_small_circuit_keeps_requested_probes(self):
        circuit = _rc_chain(20)
        registry = get_registry()
        registry.reset()
        result = transient_analysis(
            circuit, t_stop=1e-9, dt=5e-11, diagnostics=True, lte_probes=16,
        )
        assert registry.counter_value(LTE_SUBSAMPLED) == 0
        assert result.diagnostics.lte_probes == 16

    def test_explicit_probe_request_below_cap_unchanged(self):
        circuit = _rc_chain(LTE_SUBSAMPLE_SIZE + 50)
        registry = get_registry()
        registry.reset()
        result = transient_analysis(
            circuit, t_stop=1e-9, dt=5e-11, diagnostics=True, lte_probes=2,
        )
        assert registry.counter_value(LTE_SUBSAMPLED) == 0
        assert result.diagnostics.lte_probes <= 2
