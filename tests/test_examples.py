"""The shipped examples stay importable and the quick ones run."""

import os
import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
SRC_DIR = EXAMPLES_DIR.parent / "src"


def _example_env() -> dict:
    """Subprocess env with an absolute import path for ``repro``.

    The examples run with a throwaway cwd, so a relative
    ``PYTHONPATH=src`` inherited from the test invocation would no
    longer resolve.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
    return env


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 6


@pytest.mark.parametrize("script", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(script, tmp_path):
    # Compile into tmp so the check never litters examples/__pycache__.
    py_compile.compile(str(script), cfile=str(tmp_path / (script.name + "c")),
                       doraise=True)


def test_quickstart_runs_end_to_end(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300, cwd=tmp_path,
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr
    assert "delay with inductance" in result.stdout
    assert "extracted L" in result.stdout


def test_shielding_example_runs_end_to_end(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "shielding_cascading.py")],
        capture_output=True, text=True, timeout=300, cwd=tmp_path,
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr
    assert "Foundation 1 error" in result.stdout
    assert "Table I" in result.stdout
