"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig1", "fig5", "table1", "scaling", "skew",
                        "variation", "accuracy"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_characterize_needs_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize"])


class TestExecution:
    def test_scaling_runs(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "2.2" in out or "2.3" in out
        assert "Super-linear" in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "fig6a" in out
        assert "fig6b" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--traces", "3"]) == 0
        out = capsys.readouterr().out
        assert "Foundation 1" in out
        assert "Foundation 2" in out

    def test_accuracy_runs(self, capsys):
        assert main(["accuracy"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "characterization time" in out

    def test_variation_runs(self, capsys):
        assert main(["variation"]) == 0
        out = capsys.readouterr().out
        assert "L spread" in out or "L is" in out

    def test_crosstalk_runs(self, capsys):
        assert main(["crosstalk", "--traces", "5", "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "aggressor T3" in out
        assert "mV" in out

    def test_spice_export(self, tmp_path, capsys):
        path = tmp_path / "tree.sp"
        assert main(["spice", "--output", str(path), "--levels", "1",
                     "--root-length", "1000"]) == 0
        text = path.read_text()
        assert text.rstrip().endswith(".end")
        assert "PULSE(" in text

    def test_spice_rc_only(self, tmp_path):
        path = tmp_path / "rc.sp"
        assert main(["spice", "--output", str(path), "--levels", "1",
                     "--root-length", "1000", "--rc-only"]) == 0
        text = path.read_text()
        assert "\nL_" not in text

    def test_characterize_writes_tables(self, tmp_path, capsys):
        code = main([
            "characterize", "--output", str(tmp_path),
            "--widths", "5", "10",
            "--lengths", "500", "1000",
        ])
        assert code == 0
        assert (tmp_path / "inductance.json").exists()
        assert (tmp_path / "resistance.json").exists()
