"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig1", "fig5", "table1", "scaling", "skew",
                        "variation", "accuracy"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_lint_command_known(self):
        args = build_parser().parse_args(["lint", "deck.sp"])
        assert callable(args.func)
        assert args.netlist == "deck.sp"
        assert not args.strict

    def test_characterize_needs_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize"])


class TestExecution:
    def test_scaling_runs(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "2.2" in out or "2.3" in out
        assert "Super-linear" in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "fig6a" in out
        assert "fig6b" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--traces", "3"]) == 0
        out = capsys.readouterr().out
        assert "Foundation 1" in out
        assert "Foundation 2" in out

    def test_accuracy_runs(self, capsys):
        assert main(["accuracy"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "characterization time" in out

    def test_variation_runs(self, capsys):
        assert main(["variation"]) == 0
        out = capsys.readouterr().out
        assert "L spread" in out or "L is" in out

    def test_crosstalk_runs(self, capsys):
        assert main(["crosstalk", "--traces", "5", "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "aggressor T3" in out
        assert "mV" in out

    def test_spice_export(self, tmp_path, capsys):
        path = tmp_path / "tree.sp"
        assert main(["spice", "--output", str(path), "--levels", "1",
                     "--root-length", "1000"]) == 0
        text = path.read_text()
        assert text.rstrip().endswith(".end")
        assert "PULSE(" in text

    def test_spice_rc_only(self, tmp_path):
        path = tmp_path / "rc.sp"
        assert main(["spice", "--output", str(path), "--levels", "1",
                     "--root-length", "1000", "--rc-only"]) == 0
        text = path.read_text()
        assert "\nL_" not in text

    def test_characterize_writes_tables(self, tmp_path, capsys):
        code = main([
            "characterize", "--output", str(tmp_path),
            "--widths", "5", "10",
            "--lengths", "500", "1000",
        ])
        assert code == 0
        assert (tmp_path / "inductance.json").exists()
        assert (tmp_path / "resistance.json").exists()


_BAD_DECK = "* bad\nV1 in 0 DC 1\nR1 in out 10\nC1 out 0 -1p\n.end\n"
_OVERCOUPLED_DECK = ("* bad\nV1 in 0 DC 1\nL1 in x 1n\nL2 x 0 1n\n"
                     "K1 L1 L2 1.2\n.end\n")
_STUBBY_DECK = ("* warn\nV1 a 0 DC 1\nR1 a 0 10\nRstub a stub 5\n.end\n")


class TestLintCLI:
    def _extracted_deck(self, tmp_path):
        path = tmp_path / "tree.sp"
        assert main(["spice", "--output", str(path), "--levels", "1",
                     "--root-length", "1000"]) == 0
        return path

    def test_extracted_htree_deck_is_clean(self, tmp_path, capsys):
        path = self._extracted_deck(tmp_path)
        capsys.readouterr()
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert path.name in out

    def test_negative_capacitance_deck_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.sp"
        path.write_text(_BAD_DECK)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "parse_error" in out
        assert "ERROR" in out

    def test_overcoupled_deck_fails(self, tmp_path, capsys):
        path = tmp_path / "k.sp"
        path.write_text(_OVERCOUPLED_DECK)
        assert main(["lint", str(path)]) == 1
        assert "rejected by importer" in capsys.readouterr().out

    def test_json_mode(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.sp"
        path.write_text(_BAD_DECK)
        assert main(["lint", str(path), "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "bad.sp"
        assert [f["code"] for f in data["findings"]] == ["parse_error"]

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        path = tmp_path / "stub.sp"
        path.write_text(_STUBBY_DECK)
        assert main(["lint", str(path)]) == 0  # warning-only: passes
        assert main(["lint", str(path), "--strict"]) == 1
        assert "dangling_node" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.sp")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_telemetry_report_carries_health(self, tmp_path, capsys):
        from repro.telemetry import load_report

        deck = self._extracted_deck(tmp_path)
        out = tmp_path / "lint.json"
        assert main(["lint", str(deck), "--telemetry", str(out)]) == 0
        capsys.readouterr()
        report = load_report(out)
        assert report.to_dict()["schema_version"] == 5
        health = report.simulation[deck.name]["netlist_health"]
        assert health["findings"] == []
        assert main(["report", str(out)]) == 0
        assert "netlist health" in capsys.readouterr().out


class TestSimulationTelemetry:
    def test_skew_report_has_clean_simulation_section(self, tmp_path, capsys):
        from repro.telemetry import load_report

        out = tmp_path / "skew.json"
        assert main(["skew", "--telemetry", str(out)]) == 0
        capsys.readouterr()
        report = load_report(out)
        assert report.to_dict()["schema_version"] == 5
        assert set(report.simulation) == {"rc", "rlc"}
        for label in ("rc", "rlc"):
            section = report.simulation[label]
            assert section["netlist_health"]["findings"] == []
            assert section["diagnostics"]["steps"] > 0
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "simulation (2 netlist(s))" in text
        assert "netlist health [clocktree_rlc]: clean" in text

    def test_report_trace_json_emits_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "skew.json"
        assert main(["skew", "--telemetry", str(out)]) == 0
        trace_path = tmp_path / "trace.json"
        capsys.readouterr()
        assert main(["report", str(out),
                     "--trace-json", str(trace_path)]) == 0
        assert "chrome trace" in capsys.readouterr().out
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "circuit.transient" in names
        assert any(n.startswith("htree.") for n in names)
        assert trace["otherData"]["command"] == "repro skew"


class TestServeCLI:
    def test_serve_parser(self):
        args = build_parser().parse_args(
            ["serve", "--library", "kit", "--port", "9999",
             "--max-inflight", "4"])
        assert callable(args.func)
        assert args.library == "kit"
        assert args.port == 9999
        assert args.max_inflight == 4
        assert args.frequency is None  # default: the kit's frequency

    def test_serve_requires_library(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_bench_serve_parser(self):
        args = build_parser().parse_args(
            ["bench", "serve", "--library", "kit",
             "--threads", "2", "--requests", "5",
             "--record", "BENCH_serve.json"])
        assert callable(args.func)
        assert args.endpoint == "extract"
        assert args.threads == 2
        assert args.record == "BENCH_serve.json"

    def test_bench_serve_rejects_unknown_endpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bench", "serve", "--endpoint", "teleport"])

    def test_bench_serve_needs_a_target(self, capsys):
        assert main(["bench", "serve"]) == 2
        assert "--url or --library" in capsys.readouterr().err

    def test_bench_serve_rejects_non_object_payload(self, capsys):
        assert main(["bench", "serve", "--url", "http://x",
                     "--payload", "[1]"]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        from repro.version import get_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert get_version() in capsys.readouterr().out


class TestObservabilityCLI:
    def test_serve_parser_observability_flags(self):
        args = build_parser().parse_args(
            ["serve", "--library", "kit", "--log-file", "serve.log",
             "--log-level", "debug", "--slo-latency-ms", "250",
             "--profile", "prof.txt", "--profile-interval", "2"])
        assert args.log_file == "serve.log"
        assert args.log_level == "debug"
        assert args.slo_latency_ms == 250.0
        assert args.profile == "prof.txt"
        assert args.profile_interval == 2.0

    def test_serve_rejects_bad_log_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--library", "kit", "--log-level", "loud"])

    def test_serve_rejects_bad_slo_latency(self, capsys):
        from repro.telemetry.logs import configure_logging

        try:
            assert main(["serve", "--library", "/nonexistent",
                         "--slo-latency-ms", "0"]) == 2
        finally:
            configure_logging(stream=None, path=None, level="info")
        assert "--slo-latency-ms" in capsys.readouterr().err

    def test_library_build_profile_writes_collapsed_stacks(
        self, tmp_path, capsys
    ):
        from repro.telemetry import load_report

        profile = tmp_path / "build.collapsed"
        report_path = tmp_path / "build.json"
        assert main([
            "library", "build", "--root", str(tmp_path / "kit"),
            "--widths", "6", "10", "--lengths", "500", "1500",
            "--serial", "--quiet",
            "--profile", str(profile), "--profile-interval", "1",
            "--telemetry", str(report_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "profile (" in out
        text = profile.read_text()
        assert text.strip()
        for line in text.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert "." in stack
        # the run report embeds the same profile summary (schema v4)
        report = load_report(report_path)
        assert report.profile["samples"] > 0
        assert report.profile["interval_seconds"] == pytest.approx(1e-3)
        assert report.profile["hottest"]


class TestRunCLI:
    def test_run_records_then_skips(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger")
        args = ["run", "fig1-delay", "--SECTIONS=4", "--ledger", ledger]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Fig. 1 co-planar waveguide clock net" in out
        assert "run recorded:" in out
        # equivalent spelling of the same request -> ledger hit
        assert main(["run", "fig1-delay", "--SECTIONS=4.0",
                     "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "ledger hit" in out
        assert "run recorded:" not in out
        # --force executes again
        assert main(args + ["--force"]) == 0
        assert "run recorded:" in capsys.readouterr().out

    def test_run_list_shows_catalog(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "htree-skew" in out
        assert "TOTAL_LENGTH" in out

    def test_run_without_scenario_is_usage_error(self, capsys):
        assert main(["run"]) == 2
        assert "usage: repro run" in capsys.readouterr().err

    def test_unknown_scenario_and_param_are_errors(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger")
        assert main(["run", "nope", "--ledger", ledger]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        assert main(["run", "fig1-delay", "--NOPE=1",
                     "--ledger", ledger]) == 2
        assert "no parameter 'NOPE'" in capsys.readouterr().err

    def test_param_override_rejected_outside_run(self, capsys):
        assert main(["fig1", "--SECTIONS=4"]) == 2
        assert "only valid with" in capsys.readouterr().err

    def test_runs_list_show_diff_roundtrip(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger")
        assert main(["run", "fig1-delay", "--SECTIONS=4",
                     "--ledger", ledger]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "fig1-delay" in out and "completed" in out
        assert main(["runs", "show", "fig1-delay", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "SECTIONS" in out and "delay_ratio" in out
        assert main(["runs", "diff", "fig1-delay", "fig1-delay",
                     "--ledger", ledger]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_runs_gc_prunes(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger")
        assert main(["run", "fig1-delay", "--SECTIONS=4",
                     "--ledger", ledger]) == 0
        assert main(["run", "fig1-delay", "--SECTIONS=5",
                     "--ledger", ledger]) == 0
        capsys.readouterr()
        assert main(["runs", "gc", "--keep", "1", "--ledger", ledger]) == 0
        assert "pruned 1 run(s)" in capsys.readouterr().out
        assert main(["runs", "list", "--ledger", ledger]) == 0
        assert "1 run(s)" in capsys.readouterr().out

    def test_runs_missing_ledger_is_usage_error(self, tmp_path, capsys):
        assert main(["runs", "list", "--ledger",
                     str(tmp_path / "absent")]) == 2
        assert "no run ledger" in capsys.readouterr().err

    def test_alias_records_provenance_run(self, tmp_path, monkeypatch,
                                          capsys):
        from repro.scenarios import RunLedger

        root = tmp_path / "alias-ledger"
        monkeypatch.setenv("REPRO_LEDGER", str(root))
        assert main(["fig1"]) == 0
        entries = RunLedger(root).entries(scenario="fig1-delay")
        assert len(entries) == 1
        assert entries[0].status == "completed"
        # aliases always execute -- no skip message even when repeated
        capsys.readouterr()
        assert main(["fig1"]) == 0
        assert "ledger hit" not in capsys.readouterr().out
        assert len(RunLedger(root).entries(scenario="fig1-delay")) == 2

class TestSweepCLI:
    """`repro sweep run|status|report|diff` + the runs --json satellite."""

    @pytest.fixture
    def toy(self):
        from repro.scenarios import Scenario, register, unregister
        from repro.telemetry.registry import get_registry

        def run(params, session):
            get_registry().inc("loop_solve")
            return {"delay_seconds": params["X"] * 2.0}

        register(Scenario(name="test-cli-sweep", figure="test",
                          description="toy", defaults={"X": 1.0},
                          run=run))
        try:
            yield
        finally:
            unregister("test-cli-sweep")

    def test_sweep_run_resume_report_diff(self, toy, tmp_path, capsys):
        import json

        ledger = str(tmp_path / "ledger")
        base = ["sweep", "run", "test-cli-sweep", "--grid", "X=1.0,2.0",
                "--ledger", ledger, "--quiet"]
        assert main(base + ["--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["completed"] == 2
        assert first["solver_call_count"] == 2
        # Equivalent spelling -> full ledger replay, zero solver calls.
        assert main(["sweep", "run", "test-cli-sweep", "--grid", "X=1,2e0",
                     "--ledger", ledger, "--quiet", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["skipped"] == 2
        assert second["solver_call_count"] == 0
        assert second["sweep_id"] == first["sweep_id"]

        assert main(["sweep", "status", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "2 campaign(s)" in out
        assert first["campaign_id"] in out
        assert main(["sweep", "report", "test-cli-sweep",
                     "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "per-axis" in out and "X=1" in out
        assert main(["sweep", "diff", first["campaign_id"],
                     second["campaign_id"], "--ledger", ledger]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_sweep_run_plain_output_and_telemetry(self, toy, tmp_path,
                                                  capsys):
        from repro.telemetry import load_report

        ledger = str(tmp_path / "ledger")
        out_path = tmp_path / "sweep.json"
        assert main(["sweep", "run", "test-cli-sweep", "--grid", "X=1,2",
                     "--ledger", ledger, "--quiet",
                     "--telemetry", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign recorded:" in out
        assert "2 completed" in out
        report = load_report(out_path)
        assert report.campaign["points"] == 2
        assert report.campaign["solver_call_count"] == 2
        assert report.metrics.counters["loop_solve"] == 2

    def test_sweep_base_param_overrides(self, toy, tmp_path, capsys):
        import json

        ledger = str(tmp_path / "ledger")
        assert main(["sweep", "run", "test-cli-sweep", "--point", "X=5",
                     "--ledger", ledger, "--quiet", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["completed"] == 1

    def test_sweep_usage_errors(self, toy, tmp_path, capsys):
        ledger = str(tmp_path / "ledger")
        assert main(["sweep", "run", "test-cli-sweep",
                     "--ledger", ledger, "--quiet"]) == 2
        assert "no points" in capsys.readouterr().err
        assert main(["sweep", "run", "test-cli-sweep", "--grid", "bogus",
                     "--ledger", ledger, "--quiet"]) == 2
        assert "bad --grid" in capsys.readouterr().err
        assert main(["sweep", "run", "test-cli-sweep",
                     "--grid", "NOPE=1,2",
                     "--ledger", ledger, "--quiet"]) == 2
        assert "no parameter" in capsys.readouterr().err
        assert main(["sweep", "run", "test-cli-sweep",
                     "--mc", "X=triangle(1,2)",
                     "--ledger", ledger, "--quiet"]) == 2
        assert "Monte-Carlo" in capsys.readouterr().err
        assert main(["sweep", "report", "nope",
                     "--ledger", str(tmp_path / "absent")]) == 2
        assert "no run ledger" in capsys.readouterr().err

    def test_runs_list_and_show_json(self, toy, tmp_path, capsys):
        import json

        ledger = str(tmp_path / "ledger")
        assert main(["sweep", "run", "test-cli-sweep", "--grid", "X=1,2",
                     "--ledger", ledger, "--quiet", "--json"]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--ledger", ledger, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert all(r["scenario"] == "test-cli-sweep" for r in rows)
        assert main(["runs", "show", rows[0]["run_id"],
                     "--ledger", ledger, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["run_id"] == rows[0]["run_id"]
        assert record["metrics"]["delay_seconds"] == 2.0

    def test_runs_diff_nothing_compared_exits_3(self, tmp_path, capsys):
        from repro.scenarios import Scenario, register, unregister

        ledger = str(tmp_path / "ledger")
        for name, metric in (("test-cli-a", "alpha"),
                             ("test-cli-b", "beta")):
            register(Scenario(name=name, figure="test", description="t",
                              defaults={},
                              run=lambda p, s, m=metric: {m: 1.0}))
        try:
            assert main(["run", "test-cli-a", "--ledger", ledger]) == 0
            assert main(["run", "test-cli-b", "--ledger", ledger]) == 0
            capsys.readouterr()
            assert main(["runs", "diff", "test-cli-a", "test-cli-b",
                         "--ledger", ledger]) == 3
            out = capsys.readouterr().out
            assert "NOTHING COMPARED" in out
            assert "no common metrics" in out
        finally:
            unregister("test-cli-a")
            unregister("test-cli-b")

    def test_bench_diff_nothing_compared_exits_3(self, tmp_path, capsys):
        import json

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"a": {"x_seconds": 1.0}}))
        new.write_text(json.dumps({"b": {"y_seconds": 1.0}}))
        assert main(["bench", "diff", str(old), str(new)]) == 3
        assert "NOTHING COMPARED" in capsys.readouterr().out
