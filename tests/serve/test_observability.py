"""Operational observability end-to-end: one request id everywhere.

The PR-8 acceptance test lives here: a single HTTP request must surface
the same request id in (a) the structured JSON access log, (b) the
``/debug/requests`` span tree and (c) the Perfetto trace export -- plus
the SLO monitor flipping ok -> page under fault injection.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ReproError, ServeError
from repro.serve import ExtractionService, start_server
from repro.serve.requestlog import RequestRecord
from repro.telemetry import (
    SLOConfig,
    SLOMonitor,
    chrome_trace,
    get_log_ring,
    get_registry,
    get_tracer,
)
from repro.telemetry.logs import configure_logging, log_to_stream


@pytest.fixture(autouse=True)
def clean_observability_state():
    get_registry().reset()
    get_tracer().reset()
    get_log_ring().clear()
    configure_logging(stream=None, path=None, level="info")
    yield
    get_registry().reset()
    get_tracer().reset()
    get_log_ring().clear()
    configure_logging(stream=None, path=None, level="info")


@pytest.fixture
def server(service):
    server = start_server(service)
    yield server
    server.shutdown()
    server.server_close()


def get(url: str, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return (response.status, response.read().decode("utf-8"),
                dict(response.headers))


def post(url: str, payload, headers=None):
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers=all_headers, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return (response.status,
                    json.loads(response.read().decode()),
                    dict(response.headers))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), dict(exc.headers)


def access_records(stream: io.StringIO):
    """Parse the captured stream back into access-log records."""
    records = [json.loads(line) for line in
               stream.getvalue().strip().splitlines() if line]
    return [r for r in records if r.get("logger") == "repro.serve.access"]


class TestRequestCorrelation:
    def test_one_id_in_log_debug_ring_and_trace(self, server, service):
        """THE acceptance path: access log, /debug/requests and the
        Perfetto export all carry the same request id."""
        get_tracer().reset()
        stream = io.StringIO()
        with log_to_stream(stream):
            status, envelope, headers = post(
                server.url + "/extract",
                {"root_length_um": 1500.0},
                headers={"X-Request-Id": "req-e2e-test-001"},
            )
        assert status == 200
        rid = "req-e2e-test-001"

        # (0) echoed on the wire and in the envelope
        assert headers["X-Request-Id"] == rid
        assert envelope["request_id"] == rid

        # (a) the JSON access log line
        records = access_records(stream)
        assert len(records) == 1
        line = records[0]
        assert line["request_id"] == rid
        assert line["event"] == "request"
        assert line["method"] == "POST"
        assert line["status"] == 200
        assert line["endpoint"] == "extract"
        assert line["latency_ms"] > 0
        assert line["cache_hit"] in (True, False)
        assert "inflight" in line

        # (b) the /debug/requests span tree
        status, body, _ = get(server.url + "/debug/requests")
        assert status == 200
        debug = json.loads(body)
        match = [r for r in debug["recent"] if r["request_id"] == rid]
        assert len(match) == 1
        record = match[0]
        assert record["endpoint"] == "extract"
        assert record["status"] == 200
        assert record["spans"]["name"] == "serve.extract"
        assert record["spans"]["tags"]["request_id"] == rid

        # (c) the Perfetto export of the server's spans
        spans = [root.to_dict() for root in get_tracer().drain()]
        trace = chrome_trace(spans)
        tagged = [
            e for e in trace["traceEvents"]
            if e.get("args", {}).get("request_id") == rid
        ]
        assert any(e["name"] == "serve.extract" for e in tagged)

    def test_request_id_minted_when_absent(self, server):
        status, envelope, headers = post(
            server.url + "/extract", {"root_length_um": 1500.0})
        assert status == 200
        rid = envelope["request_id"]
        assert rid.startswith("req-")
        assert headers["X-Request-Id"] == rid

    def test_oversized_client_id_truncated(self, server):
        status, envelope, _ = post(
            server.url + "/extract", {"root_length_um": 1500.0},
            headers={"X-Request-Id": "x" * 500})
        assert status == 200
        assert len(envelope["request_id"]) == 128

    def test_error_responses_carry_the_id(self, server):
        status, body, headers = post(
            server.url + "/extract", {},
            headers={"X-Request-Id": "req-err-1"})
        assert status == 400
        assert body["request_id"] == "req-err-1"
        assert headers["X-Request-Id"] == "req-err-1"
        status, body, _ = get(server.url + "/healthz",
                              headers={"X-Request-Id": "req-get-1"})
        assert status == 200

    def test_get_404_logs_and_carries_id(self, server):
        stream = io.StringIO()
        with log_to_stream(stream):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server.url + "/nope")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read().decode())
        assert body["request_id"].startswith("req-")
        records = access_records(stream)
        assert records[-1]["status"] == 404
        assert records[-1]["level"] == "info"


class TestAccessLog:
    def test_every_request_leaves_exactly_one_json_line(self, server):
        stream = io.StringIO()
        with log_to_stream(stream):
            post(server.url + "/extract", {"root_length_um": 1500.0})
            post(server.url + "/extract", {"root_length_um": 1500.0})
            get(server.url + "/healthz")
        records = access_records(stream)
        assert len(records) == 3
        posts = [r for r in records if r["method"] == "POST"]
        assert [r["cache_hit"] for r in posts] == [False, True]

    def test_rejections_log_warning_with_reason(self, kit_root):
        service = ExtractionService(kit_root, max_inflight=1)
        held = service.limiter.admit()  # saturate the only slot
        assert held.admitted
        server = start_server(service)
        stream = io.StringIO()
        try:
            with log_to_stream(stream):
                status, body, _ = post(
                    server.url + "/extract", {"root_length_um": 1500.0})
            assert status == 429
        finally:
            held.limiter.release()
            server.shutdown()
            server.server_close()
        records = access_records(stream)
        rejection = [r for r in records if r["status"] == 429]
        assert len(rejection) == 1
        assert rejection[0]["level"] == "warning"
        assert rejection[0]["reason"] == "overloaded"
        # the admission layer logs its own warning too
        limit_logs = [json.loads(line) for line in
                      stream.getvalue().strip().splitlines()
                      if '"repro.serve.limits"' in line]
        assert any(r["event"] == "admission_rejected" for r in limit_logs)
        # and the rejection counted against the SLO
        windows = service.slo.windows("extract")
        assert windows["availability"][0].bad == 1

    def test_draining_logs_warning(self, server, service):
        service.limiter.start_draining()
        stream = io.StringIO()
        with log_to_stream(stream):
            status, body, _ = post(
                server.url + "/extract", {"root_length_um": 1500.0})
        assert status == 503
        records = access_records(stream)
        assert records[-1]["level"] == "warning"
        assert records[-1]["reason"] == "draining"


class TestDebugRequests:
    def test_ring_tracks_slowest_and_errors(self, server):
        post(server.url + "/extract", {"root_length_um": 1500.0})
        post(server.url + "/extract", {})  # 400
        status, body, _ = get(server.url + "/debug/requests")
        debug = json.loads(body)
        assert debug["total"] >= 2
        statuses = [r["status"] for r in debug["recent"]]
        assert 200 in statuses and 400 in statuses
        bad = [r for r in debug["recent"] if r["status"] == 400][0]
        assert "root_length_um" in bad["error"]
        assert debug["slowest"][0]["latency_ms"] >= (
            debug["slowest"][-1]["latency_ms"]
        )


class TestStatusz:
    def test_statusz_renders_html_with_slo_and_requests(self, server):
        post(server.url + "/extract", {"root_length_um": 1500.0},
             headers={"X-Request-Id": "req-statusz-1"})
        status, body, headers = get(server.url + "/statusz")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert "repro serve" in body
        assert "[slo: ok]" in body
        assert "extract" in body
        assert "availability" in body and "latency" in body
        assert "req-statusz-1" in body

    def test_statusz_escapes_untrusted_fields(self, service):
        service.requests.add(RequestRecord(
            request_id="<script>alert(1)</script>",
            endpoint="extract", status=200, latency=0.01,
        ))
        html = service.statusz_html()
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_healthz_and_metrics_surface_slo(self, server):
        post(server.url + "/extract", {"root_length_um": 1500.0})
        status, body, _ = get(server.url + "/healthz")
        health = json.loads(body)
        assert health["slo"]["status"] == "ok"
        assert "extract" in health["slo"]["endpoints"]
        status, body, _ = get(server.url + "/metrics")
        assert "repro_slo_status" in body
        assert "repro_slo_burn_rate" in body


class TestSLOFaultInjection:
    def test_slo_flips_ok_to_page_when_endpoint_starts_failing(
        self, service
    ):
        """Acceptance: healthy traffic reads ok, then injected faults
        drive the endpoint's availability SLI to page."""
        clock_now = [1_000_000.0]
        service.slo = SLOMonitor(SLOConfig(), clock=lambda: clock_now[0])
        service.register("ping", lambda payload: {"pong": True})
        failures = {"on": False}

        def flaky(payload: dict) -> dict:
            if failures["on"]:
                raise RuntimeError("injected fault")
            return {"ok": True}

        service.register("flaky", flaky, cacheable=False)

        for _ in range(20):
            service.handle("flaky", {})
            clock_now[0] += 1.0
        assert service.slo.overall_status() == "ok"

        failures["on"] = True
        for _ in range(20):
            with pytest.raises(RuntimeError):
                service.handle("flaky", {})
            clock_now[0] += 1.0
        assert service.slo.status("flaky")["availability"]["status"] == "page"
        assert service.slo.overall_status() == "page"
        assert service.health()["slo"]["status"] == "page"

    def test_client_errors_do_not_burn_availability(self, service):
        """A fast 400 is the caller's fault: it counts as served (and
        latency-compliant, since it finished quickly) -- only 5xx and
        rejections burn the error budget."""
        service.slo = SLOMonitor()
        with pytest.raises(ServeError):
            service.handle("extract", {})  # missing root_length_um: 400
        windows = service.slo.windows("extract")
        assert windows["availability"][0].total == 1
        assert windows["availability"][0].bad == 0
        assert windows["latency"][0].bad == 0
        # a rejection, by contrast, is bad on both SLIs
        service.observe_rejection("extract")
        windows = service.slo.windows("extract")
        assert windows["availability"][0].bad == 1
        assert windows["latency"][0].bad == 1

    def test_every_handled_request_feeds_slo_exactly_once(self, service):
        service.slo = SLOMonitor()
        service.handle("lookup", {
            "quantity": "loop_inductance",
            "point": {"width_um": 10.0, "length_um": 2000.0},
        })
        with pytest.raises(ReproError):
            service.handle("lookup", {"quantity": "loop_inductance"})
        windows = service.slo.windows("lookup")
        assert windows["availability"][0].total == 2
