"""Shared fixtures: one small characterization kit per test session.

The kit covers the CLI's default CPW geometry at 3.2 GHz with loop R/L
tables only (capacitance comes from the closed-form fallback, which
performs no solver calls), so every serve test runs against a fully
warm table path.
"""

import pytest

from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.constants import GHz, um
from repro.library import build_library, standard_clocktree_jobs

KIT_FREQUENCY = GHz(3.2)


def default_config() -> CoplanarWaveguideConfig:
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


@pytest.fixture(scope="session")
def kit_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-kit")
    jobs = standard_clocktree_jobs(
        default_config(), frequency=KIT_FREQUENCY,
        widths=[um(6), um(10), um(14)],
        lengths=[um(400), um(1500), um(3000), um(6000)],
    )
    build_library(root, jobs, parallel=False)
    return root


@pytest.fixture
def service(kit_root):
    from repro.serve import ExtractionService

    return ExtractionService(kit_root)
