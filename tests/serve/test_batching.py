"""Request coalescer: single-flight semantics under real threads."""

import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve.batching import RequestCoalescer


class TestSingleFlight:
    def test_concurrent_same_key_computes_once(self):
        coalescer = RequestCoalescer()
        calls = []
        entered = threading.Event()
        release = threading.Event()

        def compute():
            calls.append(threading.get_ident())
            entered.set()
            release.wait(timeout=5.0)
            return {"n": 42}

        results = []

        def request():
            results.append(coalescer.run("key", compute))

        pool = [threading.Thread(target=request) for _ in range(6)]
        pool[0].start()
        assert entered.wait(timeout=5.0)
        for thread in pool[1:]:
            thread.start()
        # followers must be parked on the leader before it finishes
        deadline = time.time() + 5.0
        while coalescer._inflight["key"].followers < 5:
            assert time.time() < deadline
            time.sleep(0.001)
        release.set()
        for thread in pool:
            thread.join(timeout=5.0)

        assert len(calls) == 1
        assert results == [{"n": 42}] * 6
        assert coalescer.leaders == 1
        assert coalescer.coalesced == 5

    def test_sequential_same_key_computes_each_time(self):
        # no caching in the coalescer: sequential calls both compute
        coalescer = RequestCoalescer()
        calls = []

        def compute():
            calls.append(1)
            return {"n": len(calls)}

        assert coalescer.run("key", compute) == {"n": 1}
        assert coalescer.run("key", compute) == {"n": 2}
        assert coalescer.leaders == 2
        assert coalescer.coalesced == 0

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = RequestCoalescer(compute_width=4)
        barrier = threading.Barrier(3, timeout=5.0)
        results = []

        def request(key):
            barrier.wait()
            results.append(coalescer.run(key, lambda: {"key": key}))

        pool = [
            threading.Thread(target=request, args=(f"k{i}",))
            for i in range(3)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=5.0)
        assert coalescer.leaders == 3
        assert coalescer.coalesced == 0
        assert sorted(r["key"] for r in results) == ["k0", "k1", "k2"]

    def test_leader_exception_propagates_to_followers(self):
        coalescer = RequestCoalescer()
        entered = threading.Event()
        release = threading.Event()

        def compute():
            entered.set()
            release.wait(timeout=5.0)
            raise ValueError("boom")

        errors = []

        def request():
            try:
                coalescer.run("key", compute)
            except ValueError as exc:
                errors.append(str(exc))

        leader = threading.Thread(target=request)
        follower = threading.Thread(target=request)
        leader.start()
        assert entered.wait(timeout=5.0)
        follower.start()
        deadline = time.time() + 5.0
        while coalescer._inflight.get("key") is not None and \
                coalescer._inflight["key"].followers < 1:
            assert time.time() < deadline
            time.sleep(0.001)
        release.set()
        leader.join(timeout=5.0)
        follower.join(timeout=5.0)
        assert errors == ["boom", "boom"]

    def test_failed_key_can_be_retried(self):
        coalescer = RequestCoalescer()
        with pytest.raises(RuntimeError):
            coalescer.run("key", lambda: (_ for _ in ()).throw(
                RuntimeError("first")))
        assert coalescer.run("key", lambda: {"ok": True}) == {"ok": True}

    def test_compute_gate_serializes_distinct_keys(self):
        coalescer = RequestCoalescer(compute_width=1)
        active = []
        peak = []
        lock = threading.Lock()

        def compute():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.01)
            with lock:
                active.pop()
            return {}

        pool = [
            threading.Thread(
                target=lambda k=i: coalescer.run(f"k{k}", compute))
            for i in range(4)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=5.0)
        assert max(peak) == 1  # gate width 1: never two computes at once

    def test_compute_width_must_be_positive(self):
        with pytest.raises(ServeError):
            RequestCoalescer(compute_width=0)
