"""ExtractionService: endpoint handlers, envelopes, cache economics."""

import pytest

from repro import instrumentation
from repro.constants import GHz
from repro.errors import ServeError
from repro.serve import ExtractionService
from repro.serve.cache import result_key

KIT_FREQUENCY = GHz(3.2)  # matches the conftest kit build


class TestConstruction:
    def test_loads_kit_once_and_fingerprints_it(self, service, kit_root):
        assert len(service.kit_sha) == 64
        assert service.library.root == kit_root

    def test_default_frequency_is_the_kits(self, service):
        assert service.frequency == pytest.approx(KIT_FREQUENCY)

    def test_missing_kit_raises(self, tmp_path):
        from repro.errors import TableError

        with pytest.raises(TableError):
            ExtractionService(tmp_path / "nowhere")

    def test_endpoints_registered(self, service):
        assert service.endpoints == ["extract", "lookup", "skew"]


class TestDispatch:
    def test_unknown_endpoint_404(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.handle("nope", {})
        assert excinfo.value.status == 404

    def test_non_object_payload_rejected(self, service):
        with pytest.raises(ServeError):
            service.handle("extract", [1, 2, 3])

    def test_envelope_shape(self, service):
        envelope = service.handle("extract", {"root_length_um": 1500.0})
        assert envelope["endpoint"] == "extract"
        assert envelope["cache"]["hit"] is False
        assert envelope["cache"]["key"] == result_key(
            service.kit_sha, "extract", {"root_length_um": 1500.0})
        assert envelope["result"]["num_segments"] == 2

    def test_repeat_request_hits_cache(self, service):
        request = {"root_length_um": 1500.0}
        first = service.handle("extract", request)
        second = service.handle("extract", request)
        assert not first["cache"]["hit"]
        assert second["cache"]["hit"]
        assert second["result"] == first["result"]

    def test_key_order_equivalent_requests_share_entry(self, service):
        first = service.handle(
            "extract", {"root_length_um": 1500.0, "levels": 2})
        second = service.handle(
            "extract", {"levels": 2, "root_length_um": 1500.0})
        assert second["cache"]["hit"]
        assert second["cache"]["key"] == first["cache"]["key"]

    def test_cached_request_is_solver_free(self, service):
        request = {"root_length_um": 3000.0, "levels": 2}
        service.handle("extract", request)
        with instrumentation.solver_call_meter() as meter:
            envelope = service.handle("extract", request)
        assert envelope["cache"]["hit"]
        assert meter.total == 0, meter.counts

    def test_warm_kit_extract_is_solver_free_even_cold_cache(self, service):
        # the acceptance economics: tables answer everything, the cache
        # only removes the spline+netlist work
        with instrumentation.solver_call_meter() as meter:
            envelope = service.handle(
                "extract", {"root_length_um": 2000.0, "levels": 3})
        assert not envelope["cache"]["hit"]
        assert meter.total == 0, meter.counts

    def test_registered_custom_endpoint_is_served(self, service):
        service.register("echo", lambda payload: {"got": payload})
        envelope = service.handle("echo", {"x": 1})
        assert envelope["result"] == {"got": {"x": 1}}
        assert service.handle("echo", {"x": 1})["cache"]["hit"]

    def test_uncacheable_endpoint_has_no_cache_block(self, service):
        service.register("now", lambda payload: {"t": 0}, cacheable=False)
        envelope = service.handle("now", {})
        assert "cache" not in envelope


class TestExtract:
    def test_single_level_summary(self, service):
        # levels=1 is the minimal net: the H's two root arms
        result = service.handle(
            "extract", {"root_length_um": 6000.0})["result"]
        assert result["num_segments"] == 2
        assert result["num_sinks"] == 2
        for segment in result["segments"]:
            assert segment["length_um"] == pytest.approx(6000.0)
            assert segment["resistance_ohm"] > 0.0
            assert segment["inductance_h"] > 0.0
            assert segment["capacitance_f"] > 0.0
        assert result["tables"]["inductance"]
        assert result["tables"]["resistance"]

    def test_tree_has_structure(self, service):
        result = service.handle(
            "extract", {"root_length_um": 3000.0, "levels": 2})["result"]
        assert result["num_segments"] == 6
        assert result["num_sinks"] == 4
        assert len(result["netlist"]["sink_nodes"]) == 4

    def test_lint_report_attached_and_clean(self, service):
        result = service.handle(
            "extract", {"root_length_um": 1500.0, "levels": 2})["result"]
        assert result["health"]["clean"] is True

    def test_lint_can_be_skipped(self, service):
        result = service.handle(
            "extract", {"root_length_um": 1500.0, "lint": False})["result"]
        assert "health" not in result

    def test_spice_format(self, service):
        result = service.handle(
            "extract",
            {"root_length_um": 1500.0, "format": "spice"})["result"]
        assert ".end" in result["spice"].lower()
        assert ".tran" in result["spice"].lower()

    def test_rc_only(self, service):
        result = service.handle(
            "extract",
            {"root_length_um": 1500.0, "include_inductance": False},
        )["result"]
        assert result["netlist"]["includes_inductance"] is False

    def test_missing_root_length_rejected(self, service):
        with pytest.raises(ServeError, match="root_length_um"):
            service.handle("extract", {})

    def test_non_numeric_field_rejected(self, service):
        with pytest.raises(ServeError, match="must be a number"):
            service.handle("extract", {"root_length_um": "long"})

    def test_non_finite_field_rejected(self, service):
        with pytest.raises(ServeError, match="finite"):
            service.handle("extract", {"root_length_um": float("nan")})

    def test_bad_format_rejected(self, service):
        with pytest.raises(ServeError, match="format"):
            service.handle(
                "extract", {"root_length_um": 100.0, "format": "vhdl"})

    def test_unknown_config_field_rejected(self, service):
        with pytest.raises(ServeError, match="unknown config field"):
            service.handle("extract", {
                "root_length_um": 100.0, "config": {"widthh_um": 3.0}})

    def test_invalid_geometry_rejected(self, service):
        with pytest.raises(ServeError, match="invalid config"):
            service.handle("extract", {
                "root_length_um": 100.0,
                "config": {"signal_width_um": -4.0},
            })

    def test_levels_bounds_enforced(self, service):
        with pytest.raises(ServeError, match="levels"):
            service.handle("extract", {"root_length_um": 100.0, "levels": 0})

    def test_custom_frequency_respected(self, service):
        result = service.handle("extract", {
            "root_length_um": 1500.0, "frequency_ghz": 3.2})["result"]
        assert result["frequency_ghz"] == pytest.approx(3.2)


class TestLookup:
    def test_interior_lookup(self, service):
        result = service.handle("lookup", {
            "quantity": "loop_inductance",
            "point": {"width_um": 10.0, "length_um": 2000.0},
        })["result"]
        assert result["value"] > 0.0
        assert result["quantity"] == "loop_inductance"
        assert result["coverage"]["overall"] in ("interior", "edge")
        assert result["coverage"]["in_range"] is True
        assert result["domain"]["width"]["min_um"] == pytest.approx(6.0)
        assert result["domain"]["length"]["max_um"] == pytest.approx(6000.0)

    def test_extrapolated_lookup_is_flagged(self, service):
        from repro.errors import ExtrapolationWarning

        with pytest.warns(ExtrapolationWarning):
            result = service.handle("lookup", {
                "quantity": "loop_inductance",
                "point": {"width_um": 10.0, "length_um": 9000.0},
            })["result"]
        assert result["coverage"]["overall"] == "extrapolated"
        assert result["coverage"]["in_range"] is False
        assert result["coverage"]["axes"]["length"] == "high"

    def test_resistance_table_reachable(self, service):
        result = service.handle("lookup", {
            "quantity": "loop_resistance",
            "frequency_ghz": KIT_FREQUENCY / 1e9,
            "point": {"width_um": 10.0, "length_um": 2000.0},
        })["result"]
        assert result["value"] > 0.0

    def test_missing_table_404(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.handle("lookup", {
                "quantity": "loop_inductance",
                "frequency_ghz": 99.0,
                "point": {"width_um": 10.0, "length_um": 2000.0},
            })
        assert excinfo.value.status == 404

    def test_missing_axis_rejected(self, service):
        with pytest.raises(ServeError, match="length_um"):
            service.handle("lookup", {
                "quantity": "loop_inductance",
                "point": {"width_um": 10.0},
            })

    def test_unknown_axis_rejected(self, service):
        with pytest.raises(ServeError, match="unknown axis"):
            service.handle("lookup", {
                "quantity": "loop_inductance",
                "point": {"width_um": 10.0, "length_um": 2000.0,
                          "depth_um": 1.0},
            })

    def test_missing_point_rejected(self, service):
        with pytest.raises(ServeError, match="point"):
            service.handle("lookup", {"quantity": "loop_inductance"})


class TestSkew:
    def test_skew_summary(self, service):
        result = service.handle("skew", {
            "levels": 2, "root_length_um": 2000.0,
            "t_stop_ps": 1500.0, "dt_ps": 1.0,
        })["result"]
        assert result["num_sinks"] == 4
        assert result["rc_skew_ps"] > 0.0
        assert result["rlc_skew_ps"] > 0.0
        assert len(result["delays_ps"]["rc"]) == 4
        assert len(result["delays_ps"]["rlc"]) == 4

    def test_bad_timestep_rejected(self, service):
        with pytest.raises(ServeError, match="t_stop_ps"):
            service.handle("skew", {"t_stop_ps": 1.0, "dt_ps": 2.0})


class TestHealthAndMetrics:
    def test_health_payload(self, service):
        service.handle("extract", {"root_length_um": 1500.0})
        service.handle("extract", {"root_length_um": 1500.0})
        health = service.health()
        assert health["status"] == "ok"
        assert health["kit"]["manifest_sha"] == service.kit_sha
        assert health["kit"]["tables"] == 2
        assert health["frequency_ghz"] == pytest.approx(
            KIT_FREQUENCY / 1e9)
        assert health["uptime_seconds"] >= 0.0
        assert health["inflight"] == 0
        assert health["cache"]["hits"] == 1
        assert health["endpoints"] == ["extract", "lookup", "skew"]
        from repro.version import get_version

        assert health["version"] == get_version()

    def test_health_reports_draining(self, service):
        service.limiter.start_draining()
        assert service.health()["status"] == "draining"

    def test_metrics_text_exposes_serve_families(self, service):
        service.handle("extract", {"root_length_um": 1500.0})
        text = service.metrics_text()
        assert "# TYPE repro_serve_request counter" in text
        assert "# HELP repro_serve_request " in text
        assert "repro_serve_request_extract" in text
        assert "repro_serve_latency_seconds_count" in text

    def test_serve_counters_are_observational(self, service):
        # serve_* counters must never count as solver work
        instrumentation.reset_solver_calls()
        service.handle("extract", {"root_length_um": 1500.0})
        assert instrumentation.solver_call_count() == 0
