"""Load driver: percentile math, report shape, a real (tiny) run."""

import pytest

from repro.errors import ServeError
from repro.serve import start_server
from repro.serve.loadgen import LoadReport, percentile, run_load


class TestPercentile:
    def test_endpoints_and_median(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 5.0
        assert percentile(data, 0.5) == 3.0

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 0.25) == pytest.approx(0.25)

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ServeError):
            percentile([], 0.5)

    def test_bad_quantile_raises(self):
        with pytest.raises(ServeError):
            percentile([1.0], 1.5)


class TestLoadReport:
    def _report(self):
        return LoadReport(
            endpoint="extract", threads=2, requests=4, errors=0,
            cache_hits=3, duration_seconds=2.0,
            latencies_seconds=[0.010, 0.020, 0.030, 0.040],
            status_counts={200: 4},
        )

    def test_throughput(self):
        assert self._report().requests_per_second == 2.0

    def test_to_dict_is_regression_gateable(self):
        from repro.quality import flatten_metrics, metric_direction

        flat = flatten_metrics({"serve_load": self._report().to_dict()})
        assert metric_direction("serve_load.latency_p50_seconds") == "lower"
        assert metric_direction("serve_load.latency_p95_seconds") == "lower"
        assert metric_direction("serve_load.requests_per_second") == "higher"
        assert metric_direction("serve_load.cache_hit_rate") == "higher"
        assert flat["serve_load.requests_per_second"] == 2.0
        assert flat["serve_load.latency_p50_seconds"] == pytest.approx(0.025)

    def test_summary_mentions_the_headlines(self):
        text = self._report().summary()
        assert "p50" in text and "p99" in text and "req/s" in text

    def test_dict_percentiles_ordered(self):
        data = self._report().to_dict()
        assert (data["latency_p50_seconds"] <= data["latency_p95_seconds"]
                <= data["latency_p99_seconds"] <= data["latency_max_seconds"])


class TestRunLoad:
    def test_tiny_run_against_live_server(self, service):
        server = start_server(service)
        try:
            report = run_load(
                server.url, "extract", {"root_length_um": 1500.0},
                threads=2, requests_per_thread=3,
            )
        finally:
            server.shutdown()
            server.server_close()
        assert report.requests == 6
        assert report.errors == 0
        assert report.status_counts == {200: 6}
        # one computation, five cache hits (or coalesced followers that
        # report miss); either way most answers came from the cache
        assert report.cache_hits >= 4
        assert report.duration_seconds > 0.0
        assert report.latency(0.5) > 0.0

    def test_payload_for_varies_requests(self, service):
        server = start_server(service)
        try:
            report = run_load(
                server.url, "extract", {},
                threads=1, requests_per_thread=3,
                payload_for=lambda slot, i: {
                    "root_length_um": 1000.0 + 100.0 * i},
            )
        finally:
            server.shutdown()
            server.server_close()
        assert report.requests == 3
        assert report.cache_hits == 0  # all distinct -> all cold
        assert service.cache.stats()["entries"] == 3

    def test_error_statuses_are_counted(self, service):
        server = start_server(service)
        try:
            report = run_load(
                server.url, "extract", {},  # missing root_length_um
                threads=1, requests_per_thread=2,
            )
        finally:
            server.shutdown()
            server.server_close()
        assert report.errors == 2
        assert report.status_counts == {400: 2}

    def test_invalid_sizing_raises(self):
        with pytest.raises(ServeError):
            run_load("http://localhost:1", "extract", {}, threads=0)
