"""End-to-end HTTP: in-process daemon, concurrent clients, drain.

The acceptance test for the PR lives here: repeated identical
``/extract`` requests against a live server are served from the result
cache with **zero** field/loop-solver invocations, proven via
``solver_call_count``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import instrumentation
from repro.serve import ExtractionService, start_server


@pytest.fixture
def server(service):
    server = start_server(service)
    yield server
    server.shutdown()
    server.server_close()


def get(url: str):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        body = response.read().decode("utf-8")
        content_type = response.headers.get("Content-Type", "")
        return response.status, body, content_type


def post(url: str, payload, raw: bytes = None):
    data = raw if raw is not None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestRoutes:
    def test_healthz(self, server, service):
        status, body, content_type = get(server.url + "/healthz")
        assert status == 200
        assert content_type.startswith("application/json")
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["kit"]["manifest_sha"] == service.kit_sha

    def test_metrics_is_prometheus_text(self, server):
        post(server.url + "/extract", {"root_length_um": 1500.0})
        status, body, content_type = get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_serve_request counter" in body
        assert "# HELP repro_serve_latency_seconds " in body

    def test_extract_roundtrip(self, server):
        status, envelope = post(
            server.url + "/extract", {"root_length_um": 3000.0, "levels": 2})
        assert status == 200
        assert envelope["endpoint"] == "extract"
        assert envelope["result"]["num_sinks"] == 4

    def test_lookup_roundtrip(self, server):
        status, envelope = post(server.url + "/lookup", {
            "quantity": "loop_inductance",
            "point": {"width_um": 10.0, "length_um": 2000.0},
        })
        assert status == 200
        assert envelope["result"]["value"] > 0.0

    def test_unknown_get_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_unknown_post_404(self, server):
        status, body = post(server.url + "/nope", {})
        assert status == 404
        assert "error" in body

    def test_invalid_json_400(self, server):
        status, body = post(server.url + "/extract", None, raw=b"{nope")
        assert status == 400
        assert "invalid JSON" in body["error"]

    def test_non_object_body_400(self, server):
        status, body = post(server.url + "/extract", [1, 2])
        assert status == 400

    def test_validation_error_400(self, server):
        status, body = post(server.url + "/extract", {})
        assert status == 400
        assert "root_length_um" in body["error"]


class TestCacheEconomics:
    def test_repeat_extract_is_cached_and_solver_free(self, server, service):
        request = {"root_length_um": 3000.0, "levels": 2}
        status, first = post(server.url + "/extract", request)
        assert status == 200
        assert first["cache"]["hit"] is False

        instrumentation.reset_solver_calls()
        status, second = post(server.url + "/extract", request)
        assert status == 200
        assert second["cache"]["hit"] is True
        assert second["result"] == first["result"]
        # the acceptance criterion: zero solver work on the cached path
        assert instrumentation.solver_call_count() == 0
        assert service.cache.hits >= 1

    def test_concurrent_identical_requests_compute_once(self, server,
                                                        service):
        request = {"root_length_um": 6000.0, "levels": 3}
        results = []

        def client():
            results.append(post(server.url + "/extract", request))

        pool = [threading.Thread(target=client) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30.0)

        assert len(results) == 8
        assert all(status == 200 for status, _ in results)
        reference = results[0][1]["result"]
        assert all(env["result"] == reference for _, env in results)
        # exactly one computation: everyone else hit the cache or
        # coalesced onto the leader
        computed = sum(
            1 for _, env in results if not env["cache"]["hit"]
        ) - service.coalescer.coalesced
        assert computed == 1


class TestBackpressure:
    def test_drain_rejects_new_requests_with_503(self, server, service):
        service.limiter.start_draining()
        status, body = post(
            server.url + "/extract", {"root_length_um": 1500.0})
        assert status == 503
        assert body["error"] == "draining"
        assert body["retry"] is True
        # health stays reachable for the orchestrator
        _, health_body, _ = get(server.url + "/healthz")
        assert json.loads(health_body)["status"] == "draining"

    def test_overload_rejects_with_429(self, kit_root):
        service = ExtractionService(kit_root, max_inflight=1)
        held = service.limiter.admit()  # saturate the only slot
        assert held.admitted
        server = start_server(service)
        try:
            status, body = post(
                server.url + "/extract", {"root_length_um": 1500.0})
            assert status == 429
            assert body["error"] == "overloaded"
        finally:
            held.limiter.release()
            server.shutdown()
            server.server_close()
        assert service.limiter.rejected == 1

    def test_wait_idle_after_load(self, server, service):
        post(server.url + "/extract", {"root_length_um": 1500.0})
        assert service.limiter.wait_idle(timeout=5.0)
        assert service.limiter.inflight == 0
