"""Admission control: overload rejection, drain, idle wait."""

import threading

import pytest

from repro.errors import ServeError
from repro.serve.limits import ConcurrencyLimiter


class TestAdmission:
    def test_admits_until_ceiling_then_429(self):
        limiter = ConcurrencyLimiter(max_inflight=2)
        first = limiter.admit()
        second = limiter.admit()
        assert first.admitted and second.admitted
        third = limiter.admit()
        assert not third.admitted
        assert third.status == 429
        assert third.reason == "overloaded"
        assert limiter.rejected == 1

    def test_release_reopens_admission(self):
        limiter = ConcurrencyLimiter(max_inflight=1)
        admission = limiter.admit()
        assert not limiter.admit().admitted
        admission.limiter.release()
        assert limiter.admit().admitted

    def test_context_manager_releases(self):
        limiter = ConcurrencyLimiter(max_inflight=1)
        with limiter.admit() as admission:
            assert admission.admitted
            assert limiter.inflight == 1
        assert limiter.inflight == 0

    def test_rejected_admission_context_is_noop(self):
        limiter = ConcurrencyLimiter(max_inflight=1)
        held = limiter.admit()
        with limiter.admit() as rejected:
            assert not rejected.admitted
        assert limiter.inflight == 1  # the rejection released nothing
        held.limiter.release()

    def test_draining_rejects_with_503(self):
        limiter = ConcurrencyLimiter(max_inflight=4)
        limiter.start_draining()
        admission = limiter.admit()
        assert not admission.admitted
        assert admission.status == 503
        assert admission.reason == "draining"
        assert limiter.draining

    def test_unmatched_release_raises(self):
        limiter = ConcurrencyLimiter()
        with pytest.raises(ServeError):
            limiter.release()

    def test_max_inflight_must_be_positive(self):
        with pytest.raises(ServeError):
            ConcurrencyLimiter(max_inflight=0)


class TestWaitIdle:
    def test_wait_idle_immediate_when_idle(self):
        assert ConcurrencyLimiter().wait_idle(timeout=0.1)

    def test_wait_idle_times_out_while_busy(self):
        limiter = ConcurrencyLimiter()
        admission = limiter.admit()
        assert not limiter.wait_idle(timeout=0.05)
        admission.limiter.release()

    def test_wait_idle_wakes_on_last_release(self):
        limiter = ConcurrencyLimiter(max_inflight=2)
        admissions = [limiter.admit(), limiter.admit()]
        woke = threading.Event()

        def waiter():
            if limiter.wait_idle(timeout=5.0):
                woke.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        for admission in admissions:
            assert not woke.is_set()
            admission.limiter.release()
        thread.join(timeout=5.0)
        assert woke.is_set()
