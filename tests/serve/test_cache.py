"""Result cache: content keys, LRU bounds, hit/miss accounting."""

import pytest

from repro.errors import ServeError
from repro.serve.cache import ResultCache, result_key
from repro.telemetry import get_registry
from repro.telemetry.registry import SERVE_CACHE_HIT, SERVE_CACHE_MISS


class TestResultKey:
    def test_key_order_does_not_split_the_cache(self):
        a = result_key("kit", "extract", {"x": 1, "y": 2.5})
        b = result_key("kit", "extract", {"y": 2.5, "x": 1})
        assert a == b

    def test_kit_sha_partitions_keys(self):
        payload = {"root_length_um": 3000.0}
        assert (result_key("kit-a", "extract", payload)
                != result_key("kit-b", "extract", payload))

    def test_endpoint_partitions_keys(self):
        payload = {"root_length_um": 3000.0}
        assert (result_key("kit", "extract", payload)
                != result_key("kit", "skew", payload))

    def test_payload_values_partition_keys(self):
        assert (result_key("kit", "extract", {"n": 1})
                != result_key("kit", "extract", {"n": 2}))

    def test_key_is_hex_sha256(self):
        key = result_key("kit", "extract", {})
        assert len(key) == 64
        int(key, 16)  # all hex


class TestResultCache:
    def test_get_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_keeps_bound(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        cache.put("c", {"n": 3})
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("c") == {"n": 3}

    def test_get_refreshes_lru_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        cache.get("a")  # refresh: now b is the LRU entry
        cache.put("c", {"n": 3})
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_put_same_key_updates_without_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("a", {"n": 2})
        assert len(cache) == 1
        assert cache.evictions == 0
        assert cache.get("a") == {"n": 2}

    def test_clear_keeps_statistics(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.get("a") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServeError):
            ResultCache(capacity=0)

    def test_stats_payload(self):
        cache = ResultCache(capacity=3)
        cache.put("a", {"n": 1})
        cache.get("a")
        cache.get("zz")
        stats = cache.stats()
        assert stats == {
            "entries": 1, "capacity": 3, "hits": 1, "misses": 1,
            "evictions": 0, "hit_rate": 0.5,
        }

    def test_ticks_registry_counters(self):
        registry = get_registry()
        before = registry.snapshot()
        cache = ResultCache(capacity=2)
        cache.get("missing")
        cache.put("k", {})
        cache.get("k")
        delta = registry.snapshot().minus(before)
        assert delta.counters.get(SERVE_CACHE_MISS) == 1
        assert delta.counters.get(SERVE_CACHE_HIT) == 1
