"""Thread-safety hammers: registry counters, memo cache, service handle.

The serving daemon is the first consumer that drives the telemetry
registry and the Lp memo cache from many threads at once, so this module
proves the primitives hold up: no lost counter increments, LRU bounds
respected under contention, and a hammered ExtractionService whose
books (hits + misses + coalesced) exactly balance the request count.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.peec.kernel import LpMemoCache
from repro.serve import ExtractionService
from repro.telemetry import MetricsRegistry

THREADS = 8
ROUNDS = 250


def hammer(fn, threads=THREADS):
    """Run *fn(slot)* on *threads* threads simultaneously."""
    gate = threading.Barrier(threads, timeout=10.0)

    def runner(slot):
        gate.wait()
        fn(slot)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(runner, slot) for slot in range(threads)]
        for future in futures:
            future.result(timeout=30.0)


class TestRegistryUnderContention:
    def test_no_lost_counter_increments(self):
        registry = MetricsRegistry()

        def spin(slot):
            for _ in range(ROUNDS):
                registry.inc("hammered")
                registry.inc("tagged.%d" % (slot % 2))

        hammer(spin)
        snap = registry.snapshot()
        assert snap.counters["hammered"] == THREADS * ROUNDS
        assert (snap.counters["tagged.0"] + snap.counters["tagged.1"]
                == THREADS * ROUNDS)

    def test_histogram_count_matches_observations(self):
        registry = MetricsRegistry()

        def spin(slot):
            for i in range(ROUNDS):
                registry.observe("lat_seconds", 1e-6 * (i + 1))

        hammer(spin)
        hist = registry.snapshot().histograms["lat_seconds"]
        assert hist.count == THREADS * ROUNDS
        assert sum(hist.counts) == THREADS * ROUNDS

    def test_gauge_ends_at_a_written_value(self):
        registry = MetricsRegistry()
        written = set(float(v) for v in range(THREADS))

        def spin(slot):
            for _ in range(ROUNDS):
                registry.set_gauge("g", float(slot))

        hammer(spin)
        assert registry.snapshot().gauges["g"] in written


class TestLpMemoCacheUnderContention:
    def test_no_lost_lookups_and_bound_respected(self):
        cache = LpMemoCache(capacity=64)

        def spin(slot):
            for i in range(ROUNDS):
                key = b"%d:%d" % (slot, i % 100)
                found, missing = cache.lookup([key])
                if missing:
                    cache.store([key], [float(i)])

        hammer(spin)
        assert len(cache) <= 64
        assert cache.hits + cache.misses == THREADS * ROUNDS

    def test_shared_keys_converge(self):
        cache = LpMemoCache(capacity=256)

        def spin(slot):
            for i in range(ROUNDS):
                key = b"shared:%d" % (i % 50)
                found, missing = cache.lookup([key])
                if missing:
                    cache.store([key], [float(i % 50)])
                else:
                    assert found[0] == float(i % 50)

        hammer(spin)
        assert len(cache) <= 50


class TestServiceUnderContention:
    def test_books_balance_under_hammering(self, kit_root):
        service = ExtractionService(kit_root, max_inflight=THREADS)
        requests_per_thread = 6
        envelopes = []
        lock = threading.Lock()

        def spin(slot):
            for i in range(requests_per_thread):
                # 3 distinct requests cycled by every thread: plenty of
                # same-key contention for the coalescer and the cache
                envelope = service.handle("extract", {
                    "root_length_um": 1000.0 + 500.0 * (i % 3),
                })
                with lock:
                    envelopes.append(envelope)

        hammer(spin)
        total = THREADS * requests_per_thread
        assert len(envelopes) == total
        hits = sum(1 for e in envelopes if e["cache"]["hit"])
        misses = total - hits
        # every miss either computed (a coalescer leader) or coalesced
        assert misses == service.coalescer.leaders + \
            service.coalescer.coalesced
        # at most one leader per distinct request after the cache warms;
        # re-leading can only happen while the first flight is airborne
        assert service.coalescer.leaders >= 3
        assert service.cache.stats()["entries"] == 3
        # identical requests produced identical results
        by_key = {}
        for envelope in envelopes:
            reference = by_key.setdefault(
                envelope["cache"]["key"], envelope["result"])
            assert envelope["result"] == reference
