"""Fast-parameter versions of every paper experiment.

These are the shape assertions of the reproduction: who wins, by what
rough factor, in which direction.  Full-size runs live in benchmarks/.
"""

import numpy as np
import pytest

from repro.constants import GHz, ps, um
from repro.experiments import (
    run_fig1,
    run_fig5,
    run_htree_skew,
    run_length_scaling,
    run_process_variation,
    run_table1,
    run_table_accuracy,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1(t_stop=ps(1000), dt=ps(0.5), sections=6)

    def test_inductance_increases_delay(self, result):
        assert result.delay_rlc > 1.5 * result.delay_rc

    def test_rlc_delay_near_paper_value(self, result):
        # paper: 47.6 ps; our line flight time lands in the same range
        assert ps(30) < result.delay_rlc < ps(80)

    def test_overshoot_only_with_inductance(self, result):
        assert result.overshoot_rlc > 0.05
        assert result.overshoot_rc < 0.01

    def test_undershoot_with_inductance(self, result):
        assert result.undershoot_rlc > 0.0

    def test_extracted_rlc_sane(self, result):
        assert 5 < result.rlc.resistance < 30          # ohm
        assert 1e-9 < result.rlc.inductance < 3e-9     # H
        assert 1e-12 < result.rlc.capacitance < 5e-12  # F

    def test_overdamped_at_weak_drive(self):
        weak = run_fig1(drive_resistance=60.0, t_stop=ps(1000), dt=ps(0.5),
                        sections=6)
        assert weak.overshoot_rlc < 0.01


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(n_traces=4, length=um(1000), plane_strips=9)

    def test_matrix_structure(self, result):
        matrix = result.loop_matrix
        assert matrix.shape == (4, 4)
        assert np.all(np.diag(matrix) > 0)

    def test_foundations_hold(self, result):
        assert result.foundation1.relative_error < 0.02
        assert result.foundation2.relative_error < 0.05
        assert result.max_foundation_error < 0.05


class TestTable1:
    def test_cascading_errors_small(self):
        result = run_table1(frequency=GHz(3))
        assert {row.name for row in result.rows} == {"fig6a", "fig6b"}
        # the paper reports 3.57 % and 1.55 %; tightly guarded wires land
        # well inside that envelope
        assert result.max_error_percent < 4.0


class TestLengthScaling:
    def test_doubling_ratio_near_paper(self):
        result = run_length_scaling()
        ratio = result.doubling_ratio(1e-3)
        assert 2.1 < ratio < 2.4          # "about 2.2 times"

    def test_mutual_also_superlinear(self):
        result = run_length_scaling()
        assert result.mutual_doubling_ratio(1e-3) > 2.1

    def test_per_length_slope_grows(self):
        result = run_length_scaling()
        assert result.per_length_slope_growth > 1.3


class TestTableAccuracy:
    def test_interpolation_accurate_and_fast(self):
        result = run_table_accuracy(
            widths=[um(4), um(8), um(12)],
            lengths=[um(500), um(1500), um(3000)],
            probe_points=[(um(6), um(1000)), (um(10), um(2200))],
        )
        assert result.max_error < 0.02
        assert result.mean_speedup > 3


class TestHTreeSkew:
    def test_skew_discrepancy_exceeds_10_percent(self):
        result = run_htree_skew(t_stop=ps(4000), dt=ps(1))
        assert result.skew_discrepancy_percent > 10.0
        assert result.rlc_skew > result.rc_skew


class TestProcessVariation:
    def test_l_insensitive_vs_rc(self):
        result = run_process_variation(n_rc_samples=60, n_l_samples=8)
        assert result.l_spread < result.r_spread
        assert result.l_spread < result.c_spread
        assert result.l_insensitivity_factor > 1.5

    def test_variation_skew_distribution(self):
        from repro.experiments import run_variation_skew

        result = run_variation_skew(n_samples=5)
        assert result.skews.shape == (5,)
        assert result.nominal_skew > 0
        assert result.skews.std() > 0
        # process wiggles the skew by percents, not orders of magnitude
        assert result.skew_spread < 0.3
