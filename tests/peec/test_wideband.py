"""Wideband ladder synthesis against swept loop impedances."""

import numpy as np
import pytest

from repro.constants import GHz, um
from repro.errors import SolverError
from repro.geometry.trace import TraceBlock
from repro.peec.loop import LoopProblem
from repro.peec.sweep import RLFrequencySweep, loop_frequency_sweep
from repro.peec.wideband import WidebandLadder, synthesize_ladder


@pytest.fixture(scope="module")
def sweep():
    block = TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=um(2000), thickness=um(2),
    )
    problem = LoopProblem(block, n_width=6, n_thickness=3, grading=1.5)
    freqs = np.logspace(7, np.log10(3e10), 10)
    return loop_frequency_sweep(problem, freqs)


@pytest.fixture(scope="module")
def ladder(sweep):
    return synthesize_ladder(sweep, n_branches=4)


class TestSynthesis:
    def test_fit_quality(self, sweep, ladder):
        # the ladder tracks the swept impedance within a few percent
        assert ladder.fit_error(sweep) < 0.05

    def test_resistance_rises_with_frequency(self, ladder):
        r_lo = ladder.resistance(1e7)
        r_hi = ladder.resistance(3e10)
        assert r_hi > 1.5 * r_lo

    def test_inductance_falls_with_frequency(self, ladder):
        l_lo = ladder.inductance(1e7)
        l_hi = ladder.inductance(3e10)
        assert l_hi < l_lo

    def test_matches_sweep_endpoints(self, sweep, ladder):
        assert ladder.resistance(sweep.frequencies[0]) == pytest.approx(
            sweep.resistance[0], rel=0.1
        )
        assert ladder.inductance(sweep.frequencies[-1]) == pytest.approx(
            sweep.inductance[-1], rel=0.05
        )

    def test_passive_by_construction(self, ladder):
        assert ladder.r_dc >= 0
        assert ladder.l_inf >= 0
        assert all(r > 0 and l > 0 for r, l in ladder.branches)

    def test_too_few_points_rejected(self):
        tiny = RLFrequencySweep(
            frequencies=np.array([1e8, 1e9, 1e10]),
            resistance=np.array([1.0, 1.2, 2.0]),
            inductance=np.array([1e-9, 0.9e-9, 0.7e-9]),
        )
        with pytest.raises(SolverError):
            synthesize_ladder(tiny, n_branches=4)


class TestLadderAlgebra:
    def test_low_frequency_inductance_sum(self):
        ladder = WidebandLadder(r_dc=1.0, l_inf=0.5e-9,
                                branches=[(10.0, 0.2e-9), (100.0, 0.1e-9)])
        assert ladder.total_low_frequency_inductance == pytest.approx(0.8e-9)

    def test_high_frequency_resistance_sum(self):
        ladder = WidebandLadder(r_dc=1.0, l_inf=0.5e-9,
                                branches=[(10.0, 0.2e-9)])
        assert ladder.high_frequency_resistance == pytest.approx(11.0)
        assert ladder.resistance(1e14) == pytest.approx(11.0, rel=1e-3)


class TestCircuitIntegration:
    def test_stamped_ladder_matches_model(self, ladder):
        from repro.circuit.ac import input_impedance
        from repro.circuit.netlist import Circuit

        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0", 0.0, ac_magnitude=1.0)
        ladder.stamp(circuit, "in", "mid", prefix="wb")
        circuit.add_resistor("Rterm", "mid", "0", 1e-3)
        freqs = np.array([1e8, 1e9, 1e10])
        z = input_impedance(circuit, "V1", freqs)
        expected = ladder.impedance(freqs) + 1e-3
        assert np.allclose(z, expected, rtol=1e-6)

    def test_transient_with_wideband_segment(self, ladder):
        """A wideband-modeled line settles correctly and runs stably."""
        from repro.circuit.netlist import Circuit
        from repro.circuit.sources import PulseSource
        from repro.circuit.transient import transient_analysis

        circuit = Circuit()
        circuit.add_voltage_source(
            "V1", "src", "0", PulseSource(0, 1.8, rise=5e-11, width=1.0)
        )
        circuit.add_resistor("Rs", "src", "a", 15.0)
        ladder.stamp(circuit, "a", "b", prefix="seg")
        circuit.add_capacitor("Cline", "b", "0", 0.8e-12)
        circuit.add_capacitor("CL", "b", "0", 30e-15)
        result = transient_analysis(circuit, t_stop=3e-9, dt=1e-12)
        wave = result.voltage("b")
        assert wave.final_value == pytest.approx(1.8, rel=0.02)
        assert np.max(np.abs(wave.values)) < 3.0
