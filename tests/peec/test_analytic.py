"""Closed-form partial inductance formulas against known references."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.constants import MU_0, um
from repro.errors import GeometryError
from repro.peec.analytic import (
    grover_mutual_inductance,
    grover_self_inductance,
    mutual_inductance_filaments,
    mutual_inductance_parallel_segments,
    rectangle_self_gmd,
    self_inductance_via_gmd,
    skin_depth,
)


class TestFilamentMutual:
    def test_long_filament_limit(self):
        # For l >> d:  M -> (mu0/2pi) l [ln(2l/d) - 1]
        l, d = 1e-2, 1e-5
        exact = mutual_inductance_filaments(l, d)
        approx = MU_0 / (2 * math.pi) * l * (math.log(2 * l / d) - 1 + d / l)
        assert exact == pytest.approx(approx, rel=1e-6)

    def test_decreases_with_distance(self):
        values = [mutual_inductance_filaments(1e-3, d * um(1)) for d in (1, 5, 25)]
        assert values[0] > values[1] > values[2]

    def test_increases_superlinearly_with_length(self):
        m1 = mutual_inductance_filaments(1e-3, um(10))
        m2 = mutual_inductance_filaments(2e-3, um(10))
        assert m2 > 2.0 * m1

    @pytest.mark.parametrize("args", [(0.0, 1e-6), (1e-3, 0.0), (-1e-3, 1e-6)])
    def test_invalid_arguments(self, args):
        with pytest.raises(GeometryError):
            mutual_inductance_filaments(*args)

    @given(st.floats(1e-5, 1e-2), st.floats(1e-7, 1e-4))
    def test_always_positive(self, l, d):
        assert mutual_inductance_filaments(l, d) > 0


class TestOffsetSegments:
    def test_aligned_case_matches_equal_filament_formula(self):
        l, d = 2e-3, um(7)
        via_offset = mutual_inductance_parallel_segments(0, l, 0, l, d)
        direct = mutual_inductance_filaments(l, d)
        assert via_offset == pytest.approx(direct, rel=1e-10)

    def test_additivity_along_length(self):
        # M(whole) = M(first half) + M(second half) against a fixed filament
        d = um(5)
        whole = mutual_inductance_parallel_segments(0, 2e-3, 0, 2e-3, d)
        part1 = mutual_inductance_parallel_segments(0, 1e-3, 0, 2e-3, d)
        part2 = mutual_inductance_parallel_segments(1e-3, 2e-3, 0, 2e-3, d)
        assert part1 + part2 == pytest.approx(whole, rel=1e-10)

    def test_symmetry_under_exchange(self):
        d = um(4)
        a = mutual_inductance_parallel_segments(0, 1e-3, 0.5e-3, 2e-3, d)
        b = mutual_inductance_parallel_segments(0.5e-3, 2e-3, 0, 1e-3, d)
        assert a == pytest.approx(b, rel=1e-12)

    def test_distant_collinear_segments_couple_weakly(self):
        d = um(5)
        near = mutual_inductance_parallel_segments(0, 1e-3, 0, 1e-3, d)
        far = mutual_inductance_parallel_segments(0, 1e-3, 9e-3, 10e-3, d)
        assert far < 0.05 * near

    def test_invalid_segment_rejected(self):
        with pytest.raises(GeometryError):
            mutual_inductance_parallel_segments(1e-3, 0.5e-3, 0, 1e-3, um(5))
        with pytest.raises(GeometryError):
            mutual_inductance_parallel_segments(0, 1e-3, 0, 1e-3, 0.0)


class TestSelfInductance:
    def test_grover_reference_value(self):
        # 1 mm x 1 um x 1 um wire: the classic ~1.48 nH
        value = grover_self_inductance(1e-3, um(1), um(1))
        assert value == pytest.approx(1.48e-9, rel=0.01)

    def test_gmd_equivalence_close_to_grover(self):
        l, w, t = 1e-3, um(2), um(1)
        grover = grover_self_inductance(l, w, t)
        gmd = self_inductance_via_gmd(l, w, t)
        assert gmd == pytest.approx(grover, rel=0.01)

    def test_wider_wire_has_less_self_inductance(self):
        narrow = grover_self_inductance(1e-3, um(1), um(1))
        wide = grover_self_inductance(1e-3, um(10), um(1))
        assert wide < narrow

    def test_superlinear_in_length(self):
        l1 = grover_self_inductance(1e-3, um(5), um(2))
        l2 = grover_self_inductance(2e-3, um(5), um(2))
        assert 2.1 < l2 / l1 < 2.4   # the paper's ~2.2x observation

    def test_invalid_arguments(self):
        with pytest.raises(GeometryError):
            grover_self_inductance(0.0, um(1), um(1))


class TestGMD:
    def test_self_gmd_coefficient(self):
        assert rectangle_self_gmd(um(1), um(1)) == pytest.approx(0.2235 * um(2))

    def test_scales_with_perimeter_sum(self):
        assert rectangle_self_gmd(um(4), um(2)) == pytest.approx(
            2.0 * rectangle_self_gmd(um(2), um(1))
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            rectangle_self_gmd(0.0, um(1))


class TestGroverMutual:
    def test_close_to_exact_for_long_wires(self):
        exact = mutual_inductance_filaments(5e-3, um(20))
        approx = grover_mutual_inductance(5e-3, um(20))
        assert approx == pytest.approx(exact, rel=1e-4)


class TestSkinDepth:
    def test_copper_at_1ghz(self):
        # Textbook value: ~2.1 um for copper at 1 GHz
        assert skin_depth(1.72e-8, 1e9) == pytest.approx(2.09e-6, rel=0.02)

    def test_scales_with_inverse_sqrt_frequency(self):
        d1 = skin_depth(1.72e-8, 1e9)
        d4 = skin_depth(1.72e-8, 4e9)
        assert d1 / d4 == pytest.approx(2.0, rel=1e-9)

    def test_invalid_arguments(self):
        with pytest.raises(GeometryError):
            skin_depth(0.0, 1e9)
        with pytest.raises(GeometryError):
            skin_depth(1.7e-8, 0.0)
