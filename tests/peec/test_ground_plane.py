"""GroundPlane strip meshing and placement helpers."""

import pytest

from repro.constants import um
from repro.errors import GeometryError
from repro.geometry.trace import TraceBlock
from repro.peec.ground_plane import (
    GroundPlane,
    plane_over_block,
    plane_under_block,
)


def block():
    return TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=um(1000), thickness=um(2), z_bottom=um(10),
    )


class TestGroundPlane:
    def test_strip_count_and_tiling(self):
        plane = GroundPlane(length=um(100), width=um(60), thickness=um(1),
                            z_bottom=0.0, n_strips=6)
        strips = plane.to_strips()
        assert len(strips) == 6
        assert sum(s.width for s in strips) == pytest.approx(um(60))
        for a, b in zip(strips, strips[1:]):
            assert b.origin.y == pytest.approx(a.origin.y + a.width)

    def test_strips_carry_x_current(self):
        plane = GroundPlane(length=um(100), width=um(60), thickness=um(1),
                            z_bottom=0.0)
        assert all(s.axis == "x" for s in plane.to_strips())

    def test_offsets_respected(self):
        plane = GroundPlane(length=um(100), width=um(30), thickness=um(1),
                            z_bottom=um(2), y_offset=um(-10), x_offset=um(5),
                            n_strips=3)
        strip = plane.to_strips()[0]
        assert strip.origin.x == pytest.approx(um(5))
        assert strip.origin.y == pytest.approx(um(-10))
        assert strip.origin.z == pytest.approx(um(2))

    @pytest.mark.parametrize("kwargs", [
        {"length": 0.0, "width": um(10), "thickness": um(1), "z_bottom": 0.0},
        {"length": um(10), "width": um(10), "thickness": um(1), "z_bottom": 0.0,
         "n_strips": 0},
    ])
    def test_invalid_planes(self, kwargs):
        with pytest.raises(GeometryError):
            GroundPlane(**kwargs)


class TestPlacement:
    def test_plane_under_block_geometry(self):
        plane = plane_under_block(block(), gap=um(3))
        blk = block()
        assert plane.z_bottom + plane.thickness == pytest.approx(
            blk.traces[0].z_bottom - um(3)
        )
        assert plane.length == pytest.approx(blk.length)
        # default margin: one block width each side
        assert plane.width == pytest.approx(3 * blk.total_width)

    def test_plane_covers_block_transversally(self):
        plane = plane_under_block(block(), gap=um(3))
        blk = block()
        assert plane.y_offset <= blk.traces[0].y_offset
        plane_right = plane.y_offset + plane.width
        block_right = blk.traces[-1].y_offset + blk.traces[-1].width
        assert plane_right >= block_right

    def test_plane_over_block_above(self):
        plane = plane_over_block(block(), gap=um(3))
        blk = block()
        assert plane.z_bottom == pytest.approx(
            blk.traces[0].z_bottom + blk.traces[0].thickness + um(3)
        )

    def test_custom_thickness_and_margin(self):
        plane = plane_under_block(block(), gap=um(3), thickness=um(0.5),
                                  margin=um(10))
        blk = block()
        assert plane.thickness == pytest.approx(um(0.5))
        assert plane.width == pytest.approx(blk.total_width + um(20))

    def test_gap_must_be_positive(self):
        with pytest.raises(GeometryError):
            plane_under_block(block(), gap=0.0)
        with pytest.raises(GeometryError):
            plane_over_block(block(), gap=-um(1))

    def test_implausible_plane_rejected(self):
        blk = block()
        with pytest.raises(GeometryError):
            plane_under_block(blk, gap=2.0)   # two metres below the die
