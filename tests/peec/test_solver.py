"""PartialInductanceSolver: Lp assembly and frequency reduction."""

import numpy as np
import pytest

from repro.constants import um
from repro.errors import GeometryError, SolverError
from repro.geometry.primitives import Point3D, RectBar
from repro.peec.hoer_love import bar_mutual_inductance, bar_self_inductance
from repro.peec.solver import (
    Conductor,
    PartialInductanceSolver,
    assemble_partial_inductance_matrix,
)


def bar(y=0.0, w=um(2), t=um(1), l=um(500), axis="x", x=0.0, z=0.0):
    return RectBar(Point3D(x, y, z), l, w, t, axis)


class TestAssembly:
    def test_matrix_symmetric_positive_definite(self):
        bars = [bar(0.0), bar(um(5)), bar(um(12))]
        lp = assemble_partial_inductance_matrix(bars)
        assert np.allclose(lp, lp.T, rtol=1e-12)
        assert np.all(np.linalg.eigvalsh(lp) > 0)

    def test_diagonal_matches_self_inductance(self):
        bars = [bar(0.0), bar(um(5))]
        lp = assemble_partial_inductance_matrix(bars)
        assert lp[0, 0] == pytest.approx(bar_self_inductance(bars[0]), rel=1e-12)

    def test_off_diagonal_matches_mutual(self):
        bars = [bar(0.0), bar(um(5))]
        lp = assemble_partial_inductance_matrix(bars)
        expected = bar_mutual_inductance(bars[0], bars[1])
        assert lp[0, 1] == pytest.approx(expected, rel=1e-12)

    def test_orthogonal_bars_zero_block(self):
        bars = [bar(0.0), bar(axis="y", z=um(3))]
        lp = assemble_partial_inductance_matrix(bars)
        assert lp[0, 1] == 0.0
        assert lp[1, 0] == 0.0
        assert lp[0, 0] > 0 and lp[1, 1] > 0

    def test_empty_input_rejected(self):
        with pytest.raises(GeometryError):
            assemble_partial_inductance_matrix([])


class TestConductor:
    def test_from_bar_meshes(self):
        cond = Conductor.from_bar("sig", bar(), n_width=3, n_thickness=2)
        assert len(cond.mesh) == 6
        assert cond.bar == bar()


class TestSolver:
    def test_duplicate_names_rejected(self):
        conds = [Conductor.from_bar("a", bar()), Conductor.from_bar("a", bar(um(5)))]
        with pytest.raises(GeometryError):
            PartialInductanceSolver(conds)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            PartialInductanceSolver([])

    def test_index_of(self):
        solver = PartialInductanceSolver([
            Conductor.from_bar("a", bar()), Conductor.from_bar("b", bar(um(5))),
        ])
        assert solver.index_of("b") == 1
        with pytest.raises(GeometryError):
            solver.index_of("zzz")

    def test_single_filament_lp_equals_bar_value(self):
        solver = PartialInductanceSolver([Conductor.from_bar("a", bar())])
        lp = solver.conductor_lp_matrix()
        assert lp[0, 0] == pytest.approx(bar_self_inductance(bar()), rel=1e-12)

    def test_meshing_preserves_uniform_current_lp(self):
        # conductor-level Lp under uniform current is mesh-independent
        coarse = PartialInductanceSolver([Conductor.from_bar("a", bar())])
        fine = PartialInductanceSolver([
            Conductor.from_bar("a", bar(), n_width=4, n_thickness=2)
        ])
        l_coarse = coarse.conductor_lp_matrix()[0, 0]
        l_fine = fine.conductor_lp_matrix()[0, 0]
        assert l_fine == pytest.approx(l_coarse, rel=1e-10)

    def test_low_frequency_limit_matches_uniform_current(self):
        solver = PartialInductanceSolver([
            Conductor.from_bar("a", bar(), n_width=3, n_thickness=2),
            Conductor.from_bar("b", bar(um(6)), n_width=3, n_thickness=2),
        ])
        _, l_lf = solver.effective_rl(1e3)   # 1 kHz: uniform current
        lp = solver.conductor_lp_matrix()
        assert np.allclose(l_lf, lp, rtol=1e-6)

    def test_skin_effect_raises_resistance_lowers_inductance(self):
        solver = PartialInductanceSolver([
            Conductor.from_bar("a", bar(w=um(10), t=um(2), l=um(2000)),
                               n_width=6, n_thickness=3, grading=1.5),
        ])
        r_lo, l_lo = solver.effective_rl(1e6)
        r_hi, l_hi = solver.effective_rl(20e9)
        assert r_hi[0, 0] > r_lo[0, 0] * 1.05
        assert l_hi[0, 0] < l_lo[0, 0]

    def test_dc_impedance_is_resistive(self):
        solver = PartialInductanceSolver([Conductor.from_bar("a", bar())])
        z = solver.conductor_impedance_matrix(0.0)
        assert z[0, 0].imag == pytest.approx(0.0)
        rho = 1.72e-8
        expected = rho * um(500) / (um(2) * um(1))
        assert z[0, 0].real == pytest.approx(expected, rel=1e-9)

    def test_negative_frequency_rejected(self):
        solver = PartialInductanceSolver([Conductor.from_bar("a", bar())])
        with pytest.raises(SolverError):
            solver.conductor_impedance_matrix(-1.0)
        with pytest.raises(SolverError):
            solver.effective_rl(0.0)

    def test_proximity_effect_on_mutual(self):
        # at high frequency currents redistribute; matrix stays symmetric
        solver = PartialInductanceSolver([
            Conductor.from_bar("a", bar(w=um(6)), n_width=4, n_thickness=2),
            Conductor.from_bar("b", bar(um(8), w=um(6)), n_width=4, n_thickness=2),
        ])
        _, l_hi = solver.effective_rl(10e9)
        assert l_hi[0, 1] == pytest.approx(l_hi[1, 0], rel=1e-9)
        assert 0 < l_hi[0, 1] < l_hi[0, 0]
