"""LoopProblem: block-level loop extraction with returns and victims."""

import numpy as np
import pytest

from repro.constants import GHz, um
from repro.errors import GeometryError, SolverError
from repro.geometry.trace import TraceBlock
from repro.peec.ground_plane import plane_under_block
from repro.peec.loop import LoopProblem


def cpw(signal=um(10), ground=um(5), spacing=um(1), length=um(2000), t=um(2)):
    return TraceBlock.coplanar_waveguide(signal, ground, spacing, length, t)


def microstrip_array(n=3, width=um(5), spacing=um(5), length=um(1000)):
    block = TraceBlock.from_widths_and_spacings(
        widths=[width] * n, spacings=[spacing] * (n - 1),
        length=length, thickness=um(1), ground_flags=[False] * n,
    )
    plane = plane_under_block(block, gap=um(5), n_strips=9)
    return block, plane


class TestConstruction:
    def test_cpw_signal_autodetected(self):
        problem = LoopProblem(cpw())
        assert problem.signal_trace.name == "SIG"
        assert len(problem.return_traces) == 2
        assert problem.open_traces == []

    def test_needs_a_return(self):
        block = TraceBlock.from_widths_and_spacings(
            widths=[um(5)], spacings=[], length=um(100), thickness=um(1),
            ground_flags=[False],
        )
        with pytest.raises(GeometryError):
            LoopProblem(block)

    def test_multi_signal_needs_explicit_choice(self):
        block, plane = microstrip_array()
        with pytest.raises(GeometryError):
            LoopProblem(block, plane=plane)
        problem = LoopProblem(block, signal="T2", plane=plane)
        assert problem.signal_trace.name == "T2"
        assert len(problem.open_traces) == 2

    def test_signal_by_index(self):
        block, plane = microstrip_array()
        problem = LoopProblem(block, signal=0, plane=plane)
        assert problem.signal_trace.name == "T1"

    def test_unknown_signal_name(self):
        with pytest.raises(GeometryError):
            LoopProblem(cpw(), signal="nope")


class TestSolutions:
    def test_positive_rl(self):
        r, l = LoopProblem(cpw()).loop_rl(GHz(3.2))
        assert r > 0 and l > 0

    def test_frequency_must_be_positive(self):
        with pytest.raises(SolverError):
            LoopProblem(cpw()).solve(0.0)

    def test_loop_l_grows_with_length_superlinearly(self):
        l_short = LoopProblem(cpw(length=um(1000))).loop_rl(GHz(1))[1]
        l_long = LoopProblem(cpw(length=um(2000))).loop_rl(GHz(1))[1]
        assert l_long > 1.9 * l_short

    def test_wider_spacing_increases_loop_l(self):
        l_tight = LoopProblem(cpw(spacing=um(1))).loop_rl(GHz(1))[1]
        l_loose = LoopProblem(cpw(spacing=um(10))).loop_rl(GHz(1))[1]
        assert l_loose > l_tight

    def test_plane_lowers_loop_inductance(self):
        block = cpw()
        no_plane = LoopProblem(block).loop_rl(GHz(1))[1]
        plane = plane_under_block(block, gap=um(2), n_strips=9)
        with_plane = LoopProblem(block, plane=plane).loop_rl(GHz(1))[1]
        assert with_plane < no_plane

    def test_mutual_loop_couplings_decay_with_distance(self):
        block, plane = microstrip_array(n=4)
        problem = LoopProblem(block, signal="T1", plane=plane)
        solution = problem.solve(GHz(1))
        mutuals = solution.mutual_loop_inductances
        assert mutuals["T2"] > mutuals["T3"] > mutuals["T4"] > 0

    def test_mutual_reciprocity(self):
        block, plane = microstrip_array(n=3)
        m_12 = LoopProblem(block, signal="T1", plane=plane).solve(
            GHz(1)
        ).mutual_loop_inductances["T2"]
        m_21 = LoopProblem(block, signal="T2", plane=plane).solve(
            GHz(1)
        ).mutual_loop_inductances["T1"]
        assert m_12 == pytest.approx(m_21, rel=1e-6)

    def test_loop_solution_properties(self):
        solution = LoopProblem(cpw()).solve(GHz(2))
        omega = 2 * np.pi * GHz(2)
        assert solution.loop_resistance == pytest.approx(
            solution.loop_impedance.real
        )
        assert solution.loop_inductance == pytest.approx(
            solution.loop_impedance.imag / omega
        )

    def test_more_plane_strips_converges(self):
        block, _ = microstrip_array(n=1)
        values = []
        for strips in (3, 9, 15):
            plane = plane_under_block(block, gap=um(5), n_strips=strips)
            problem = LoopProblem(block, signal="T1", plane=plane)
            values.append(problem.loop_rl(GHz(1))[1])
        # refinement changes the answer less and less
        assert abs(values[2] - values[1]) < abs(values[1] - values[0])
