"""Frequency sweeps of loop R and L."""

import numpy as np
import pytest

from repro.constants import GHz, um
from repro.errors import SolverError
from repro.geometry.trace import TraceBlock
from repro.peec.loop import LoopProblem
from repro.peec.sweep import loop_frequency_sweep


@pytest.fixture(scope="module")
def sweep():
    block = TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=um(2000), thickness=um(2),
    )
    problem = LoopProblem(block, n_width=6, n_thickness=3, grading=1.5)
    return loop_frequency_sweep(
        problem, [1e7, 1e8, 1e9, 3.2e9, 1e10, 3e10]
    )


class TestSweepPhysics:
    def test_resistance_monotone_increasing(self, sweep):
        assert np.all(np.diff(sweep.resistance) >= -1e-12)

    def test_inductance_monotone_decreasing(self, sweep):
        assert np.all(np.diff(sweep.inductance) <= 1e-18)

    def test_skin_effect_material_at_high_frequency(self, sweep):
        assert sweep.resistance_ratio > 1.5

    def test_inductance_drop_is_moderate(self, sweep):
        # L varies logarithmically: big R change, modest L change
        assert 0.0 < sweep.inductance_drop < 0.5

    def test_interpolators(self, sweep):
        mid = sweep.inductance_at(GHz(2))
        assert sweep.inductance[-1] < mid < sweep.inductance[0]
        assert sweep.resistance_at(1e7) == pytest.approx(
            sweep.resistance[0], rel=1e-9
        )

    def test_characterization_error_zero_at_same_frequency(self, sweep):
        assert sweep.characterization_error(GHz(3.2), GHz(3.2)) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_wrong_frequency_costs_accuracy(self, sweep):
        error = sweep.characterization_error(used=1e7, actual=3e10)
        assert error > 0.02


class TestFactoredSweep:
    """Factor-once sweep path vs the per-frequency LU reference."""

    def _problem(self):
        block = TraceBlock.coplanar_waveguide(
            signal_width=um(8), ground_width=um(5), spacing=um(2),
            length=um(1000), thickness=um(2),
        )
        return LoopProblem(block, n_width=3, n_thickness=2, grading=1.5)

    def test_factored_matches_direct_sweep(self):
        problem = self._problem()
        freqs = [1e8, 1e9, 1e10]
        fast = loop_frequency_sweep(problem, freqs, factored=True)
        slow = loop_frequency_sweep(problem, freqs, factored=False)
        np.testing.assert_allclose(fast.resistance, slow.resistance,
                                   rtol=1e-10)
        np.testing.assert_allclose(fast.inductance, slow.inductance,
                                   rtol=1e-10)

    def test_solve_sweep_matches_pointwise_solves(self):
        problem = self._problem()
        freqs = [1e8, 3.2e9, 2e10]
        solutions = problem.solve_sweep(freqs)
        assert [s.frequency for s in solutions] == freqs
        for s in solutions:
            point = problem.solve(s.frequency)
            assert s.loop_impedance == pytest.approx(point.loop_impedance,
                                                     rel=1e-12)
            assert s.mutual_loop_inductances == point.mutual_loop_inductances

    def test_solve_sweep_validation(self):
        problem = self._problem()
        with pytest.raises(SolverError):
            problem.solve_sweep([])
        with pytest.raises(SolverError):
            problem.solve_sweep([1e9, -1e8])


class TestValidation:
    def test_needs_two_frequencies(self):
        block = TraceBlock.coplanar_waveguide(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            length=um(500), thickness=um(2),
        )
        problem = LoopProblem(block, n_width=1, n_thickness=1)
        with pytest.raises(SolverError):
            loop_frequency_sweep(problem, [1e9])
        with pytest.raises(SolverError):
            loop_frequency_sweep(problem, [0.0, 1e9])

    def test_unsorted_input_sorted(self):
        block = TraceBlock.coplanar_waveguide(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            length=um(500), thickness=um(2),
        )
        problem = LoopProblem(block, n_width=1, n_thickness=1)
        sweep = loop_frequency_sweep(problem, [1e9, 1e8])
        assert sweep.frequencies[0] < sweep.frequencies[1]
