"""FilamentNetwork: multi-node coupled-conductor solves."""

import numpy as np
import pytest

from repro.constants import RHO_CU, um
from repro.errors import CircuitError, SolverError
from repro.geometry.primitives import Point3D, RectBar
from repro.peec.hoer_love import bar_mutual_inductance, bar_self_inductance
from repro.peec.network import FilamentNetwork


def bar(y=0.0, w=um(2), t=um(1), l=um(500), x=0.0):
    return RectBar(Point3D(x, y, 0.0), l, w, t, "x")


def go_and_return(spacing=um(10)):
    """Signal out, return back, shorted at the far end."""
    net = FilamentNetwork(ground="gnd")
    net.add_conductor("sig", bar(0.0), "in", "far")
    net.add_conductor("ret", bar(spacing), "gnd", "far")
    return net


class TestConstruction:
    def test_duplicate_names_rejected(self):
        net = FilamentNetwork()
        net.add_conductor("a", bar(), "n1", "n2")
        with pytest.raises(CircuitError):
            net.add_conductor("a", bar(um(5)), "n1", "n2")

    def test_self_loop_rejected(self):
        net = FilamentNetwork()
        with pytest.raises(CircuitError):
            net.add_conductor("a", bar(), "n1", "n1")

    def test_resistor_validation(self):
        net = FilamentNetwork()
        net.add_conductor("a", bar(), "n1", "n2")
        with pytest.raises(CircuitError):
            net.add_resistor("a", "n1", "n2")          # duplicate name
        with pytest.raises(CircuitError):
            net.add_resistor("r", "n1", "n1")          # self loop
        with pytest.raises(CircuitError):
            net.add_resistor("r", "n1", "n2", resistance=0.0)

    def test_node_names_ground_first(self):
        net = go_and_return()
        names = net.node_names()
        assert names[0] == "gnd"
        assert set(names) == {"gnd", "in", "far"}

    def test_empty_network_rejected(self):
        with pytest.raises(CircuitError):
            FilamentNetwork().solve(1e9, {})

    def test_unknown_injection_node(self):
        net = go_and_return()
        with pytest.raises(CircuitError):
            net.solve(1e9, {"nowhere": 1.0})


class TestLoopExtraction:
    def test_dc_loop_resistance(self):
        net = go_and_return()
        solution = net.solve(0.0, {"in": 1.0})
        r_one = RHO_CU * um(500) / (um(2) * um(1))
        assert solution.voltage_between("in", "gnd").real == pytest.approx(
            2.0 * r_one, rel=1e-9
        )

    def test_loop_inductance_matches_partial_algebra(self):
        # two identical conductors: L_loop = 2 (L_self - M)
        spacing = um(10)
        net = go_and_return(spacing)
        _, l_loop = net.loop_rl("in", "gnd", 1e6)  # low f: uniform current
        l_self = bar_self_inductance(bar())
        mutual = bar_mutual_inductance(bar(), bar(spacing))
        assert l_loop == pytest.approx(2.0 * (l_self - mutual), rel=1e-3)

    def test_wider_loop_more_inductance(self):
        _, l_narrow = go_and_return(um(5)).loop_rl("in", "gnd", 1e9)
        _, l_wide = go_and_return(um(50)).loop_rl("in", "gnd", 1e9)
        assert l_wide > l_narrow

    def test_current_conservation(self):
        net = go_and_return()
        solution = net.solve(1e9, {"in": 1.0})
        assert solution.conductor_currents["sig"] == pytest.approx(1.0, rel=1e-9)
        assert solution.conductor_currents["ret"] == pytest.approx(-1.0, rel=1e-9)

    def test_parallel_returns_split_current(self):
        net = FilamentNetwork(ground="gnd")
        net.add_conductor("sig", bar(0.0), "in", "far")
        net.add_conductor("retL", bar(-um(8)), "gnd", "far")
        net.add_conductor("retR", bar(um(8)), "gnd", "far")
        solution = net.solve(1e6, {"in": 1.0})
        i_l = solution.conductor_currents["retL"]
        i_r = solution.conductor_currents["retR"]
        assert i_l == pytest.approx(i_r, rel=1e-6)         # symmetric split
        assert (i_l + i_r) == pytest.approx(-1.0, rel=1e-9)

    def test_input_impedance_reciprocal(self):
        net = go_and_return()
        z_ab = net.input_impedance("in", "gnd", 2e9)
        z_ba = net.input_impedance("gnd", "in", 2e9)
        assert z_ab == pytest.approx(z_ba, rel=1e-9)

    def test_loop_rl_requires_positive_frequency(self):
        net = go_and_return()
        with pytest.raises(SolverError):
            net.loop_rl("in", "gnd", 0.0)

    def test_skin_effect_increases_loop_resistance(self):
        net = FilamentNetwork(ground="gnd")
        net.add_conductor("sig", bar(0.0, w=um(10), t=um(2), l=um(2000)),
                          "in", "far", n_width=5, n_thickness=2, grading=1.5)
        net.add_conductor("ret", bar(um(15), w=um(10), t=um(2), l=um(2000)),
                          "gnd", "far", n_width=5, n_thickness=2, grading=1.5)
        r_lo, _ = net.loop_rl("in", "gnd", 1e6)
        r_hi, _ = net.loop_rl("in", "gnd", 20e9)
        assert r_hi > 1.2 * r_lo


class TestResistorBranches:
    def test_short_ties_nodes(self):
        net = FilamentNetwork(ground="gnd")
        net.add_conductor("sig", bar(0.0), "in", "mid")
        net.add_resistor("short", "mid", "far", resistance=1e-9)
        net.add_conductor("ret", bar(um(10)), "gnd", "far")
        solution = net.solve(1e9, {"in": 1.0})
        v_mid = solution.node_voltages["mid"]
        v_far = solution.node_voltages["far"]
        assert abs(v_mid - v_far) < 1e-6 * abs(v_mid)

    def test_resistor_adds_series_resistance(self):
        net = go_and_return()
        base_r, base_l = net.loop_rl("in", "gnd", 1e6)
        net2 = FilamentNetwork(ground="gnd")
        net2.add_conductor("sig", bar(0.0), "in", "mid")
        net2.add_resistor("extra", "mid", "far", resistance=5.0)
        net2.add_conductor("ret", bar(um(10)), "gnd", "far")
        r, l = net2.loop_rl("in", "gnd", 1e6)
        assert r == pytest.approx(base_r + 5.0, rel=1e-6)
        assert l == pytest.approx(base_l, rel=1e-3)

    def test_resistor_current_reported(self):
        net = FilamentNetwork(ground="gnd")
        net.add_conductor("sig", bar(0.0), "in", "mid")
        net.add_resistor("short", "mid", "far")
        net.add_conductor("ret", bar(um(10)), "gnd", "far")
        solution = net.solve(1e9, {"in": 1.0})
        assert solution.conductor_currents["short"] == pytest.approx(1.0, rel=1e-9)


class TestFloatingSubnetworks:
    def test_disconnected_network_raises(self):
        net = FilamentNetwork(ground="gnd")
        net.add_conductor("sig", bar(0.0), "in", "far")
        net.add_conductor("ret", bar(um(10)), "gnd", "far")
        net.add_conductor("island", bar(um(50)), "isoA", "isoB")
        with pytest.raises(SolverError):
            net.solve(1e9, {"in": 1.0})

    def test_victim_with_far_tie_is_solvable(self):
        net = go_and_return()
        net.add_conductor("victim", bar(um(30)), "v_near", "far")
        solution = net.solve(1e9, {"in": 1.0})
        assert solution.conductor_currents["victim"] == pytest.approx(
            0.0, abs=1e-12
        )
        # victim sees a finite induced EMF
        assert abs(solution.node_voltages["v_near"]) > 0.0
