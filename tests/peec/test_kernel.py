"""Fast-path PEEC kernel: dedup assembly, memo cache, factor-once sweeps.

The contract under test is strict: the dedup assembly must reproduce the
naive full-broadcast assembly *bit-for-bit* (the Hoer-Love closed form
is catastrophically ill-conditioned in places, so any tolerance-based
"equivalence" would hide real divergence), and the factored frequency
solve must match the per-frequency LU reference to <= 1e-12 relative.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.constants import um
from repro.errors import GeometryError, SolverError
from repro.geometry.primitives import Point3D, RectBar
from repro.instrumentation import (
    LP_MEMO_HIT,
    LP_PAIR_EVAL,
    memo_hit_rate,
    solver_call_meter,
)
from repro.peec.kernel import (
    DEDUP_MIN_FILAMENTS,
    ImpedanceFactorization,
    LpMemoCache,
    assemble_partial_inductance_matrix,
    lp_memo_cache,
    lp_memo_disabled,
    signature_keys,
    signature_stats,
)
from repro.telemetry import LP_DEDUP_BYPASS
from repro.peec.mesh import mesh_bar
from repro.peec.network import FilamentNetwork
from repro.peec.solver import Conductor, PartialInductanceSolver


def bar(y=0.0, w=um(2), t=um(1), l=um(500), axis="x", x=0.0, z=0.0):
    return RectBar(Point3D(x, y, z), l, w, t, axis)


def meshed_bars(n_width=4, n_thickness=2, grading=1.5, origin=Point3D(0, 0, 0)):
    parent = RectBar(origin, um(300), um(4), um(2), "x")
    return list(mesh_bar(parent, n_width=n_width, n_thickness=n_thickness,
                         grading=grading).filaments)


def naive(bars):
    with lp_memo_disabled():
        return assemble_partial_inductance_matrix(bars, method="naive")


def dedup(bars, memo=False):
    # dedup_min=1 forces the dedup path even on tiny fixtures, so these
    # tests always compare dedup-vs-naive (not bypass-vs-naive).
    return assemble_partial_inductance_matrix(
        bars, method="dedup", memo=memo, dedup_min=1
    )


class TestDedupMatchesNaiveBitwise:
    """Fast path == naive path, bit for bit, on every geometry class."""

    def test_uniform_mesh(self):
        bars = meshed_bars(grading=1.0)
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    def test_graded_mesh(self):
        bars = meshed_bars(grading=1.5)
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    def test_translated_mesh_far_from_origin(self):
        # Anchoring away from the origin exercises the re-anchoring
        # canonicalization where the raw closed form is ill-conditioned.
        bars = meshed_bars(origin=Point3D(um(3000), um(1000), um(2000)))
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    def test_mixed_axes(self):
        bars = (meshed_bars()
                + [bar(axis="y", z=um(3)), bar(axis="y", z=um(6)),
                   bar(axis="z", y=um(9))])
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    def test_coincident_bars(self):
        # Identical overlapping bars (mutual == self) are legal PEEC
        # input and the most degenerate signature class.
        bars = [bar(), bar(), bar(um(5))]
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    def test_multiple_conductors(self):
        bars = (meshed_bars()
                + meshed_bars(origin=Point3D(0, um(10), 0))
                + meshed_bars(origin=Point3D(0, um(20), um(4))))
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    def test_memoized_values_bitwise_identical(self):
        bars = meshed_bars()
        cache = LpMemoCache()
        first = dedup(bars, memo=cache)
        second = dedup(bars, memo=cache)  # fully cache-served
        np.testing.assert_array_equal(first, naive(bars))
        np.testing.assert_array_equal(second, first)
        assert cache.hits > 0

    def test_single_bar(self):
        bars = [bar()]
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            assemble_partial_inductance_matrix([bar()], method="magic")

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            assemble_partial_inductance_matrix([])


class TestDedupProperties:
    # randomized micron-scale geometry, snapped to a 1 nm grid like a
    # real layout (exact ties between congruent pairs then survive)
    coords = st.integers(-20_000, 20_000).map(lambda n: n * 1e-9)
    dims = st.integers(200, 5_000).map(lambda n: n * 1e-9)
    lengths = st.integers(10_000, 500_000).map(lambda n: n * 1e-9)

    @given(data=st.data(), n=st.integers(2, 6))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_bar_sets_bitwise_equal(self, data, n):
        bars = []
        for _ in range(n):
            bars.append(RectBar(
                Point3D(data.draw(self.coords), data.draw(self.coords),
                        data.draw(self.coords)),
                data.draw(self.lengths), data.draw(self.dims),
                data.draw(self.dims),
                data.draw(st.sampled_from(["x", "y", "z"])),
            ))
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    @given(data=st.data())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_duplicated_random_bar_appears_coincident(self, data):
        b = RectBar(
            Point3D(data.draw(self.coords), data.draw(self.coords),
                    data.draw(self.coords)),
            data.draw(self.lengths), data.draw(self.dims),
            data.draw(self.dims), "x",
        )
        shifted = RectBar(
            Point3D(b.origin.x, b.origin.y + data.draw(self.dims) + b.width,
                    b.origin.z),
            b.length, b.width, b.thickness, "x",
        )
        bars = [b, b, shifted]
        np.testing.assert_array_equal(dedup(bars), naive(bars))


def dyadic_array(nx=6, ny=4, pitch=2.0 ** -20, w=2.0 ** -21, t=2.0 ** -22):
    """Bar array on a dyadic pitch: offsets between cells are float-exact,
    so congruent pairs are bitwise congruent (pure kernel dedup, no mesh
    round-off in the way)."""
    return [
        RectBar(Point3D(0.0, i * pitch, j * pitch), 2.0 ** -12, w, t, "x")
        for i in range(nx) for j in range(ny)
    ]


class TestSignatureStatsAndCounters:
    def test_dyadic_array_dedups_by_relative_offset(self):
        bars = dyadic_array(nx=6, ny=4)
        stats = signature_stats(bars)
        n_pairs = len(bars) * (len(bars) + 1) // 2  # 300
        assert stats["pairs"] == n_pairs
        # identical cross-sections: a pair is determined by its grid
        # offset (di, dj) up to negation (bar swap) -> the 11*7 = 77
        # offsets collapse to (77 - 1) / 2 + 1 = 39 classes for 300 pairs
        assert stats["unique_signatures"] == 39
        assert stats["dedup_factor"] > 7.0

    def test_uniform_mesh_dedups(self):
        # mesh_bar boundaries carry cumsum round-off, so only a subset of
        # congruent pairs is bitwise congruent -- still a >3x reduction
        # at characterization-grade mesh density.
        parent = RectBar(Point3D(0, 0, 0), um(300), um(8), um(4), "x")
        bars = list(mesh_bar(parent, n_width=20, n_thickness=20).filaments)
        stats = signature_stats(bars)
        assert stats["pairs"] == 80200
        assert stats["dedup_factor"] > 3.0

    def test_pair_eval_counter_reduced_by_dedup(self):
        bars = dyadic_array(nx=6, ny=4)
        with lp_memo_disabled():
            with solver_call_meter() as naive_meter:
                assemble_partial_inductance_matrix(bars, method="naive")
            with solver_call_meter() as dedup_meter:
                assemble_partial_inductance_matrix(
                    bars, method="dedup", dedup_min=1
                )
        n = len(bars)
        assert naive_meter.counts[LP_PAIR_EVAL] == n * n
        assert dedup_meter.counts[LP_PAIR_EVAL] == 39
        np.testing.assert_array_equal(dedup(bars), naive(bars))

    def test_stats_empty_rejected(self):
        with pytest.raises(GeometryError):
            signature_stats([])


class TestDedupBypass:
    """Tiny memo-less assemblies skip dedup (it is a net loss there)."""

    def test_small_block_bypasses_without_memo(self):
        bars = meshed_bars()  # 8 filaments, below DEDUP_MIN_FILAMENTS
        assert len(bars) < DEDUP_MIN_FILAMENTS
        with lp_memo_disabled():
            with solver_call_meter() as meter:
                got = assemble_partial_inductance_matrix(bars, method="dedup")
        assert meter.counts.get(LP_DEDUP_BYPASS, 0) == 1
        # the bypass evaluates the full n x n broadcast
        assert meter.counts[LP_PAIR_EVAL] == len(bars) ** 2
        np.testing.assert_array_equal(got, naive(bars))

    def test_memo_backed_block_never_bypasses(self):
        bars = meshed_bars()
        cache = LpMemoCache()
        with solver_call_meter() as meter:
            assemble_partial_inductance_matrix(bars, memo=cache)
        assert meter.counts.get(LP_DEDUP_BYPASS, 0) == 0
        assert len(cache) > 0

    def test_large_block_dedups_without_memo(self):
        parent = RectBar(Point3D(0, 0, 0), um(300), um(8), um(4), "x")
        bars = list(mesh_bar(parent, n_width=8, n_thickness=4).filaments)
        assert len(bars) >= DEDUP_MIN_FILAMENTS
        with lp_memo_disabled():
            with solver_call_meter() as meter:
                assemble_partial_inductance_matrix(bars, method="dedup")
        assert meter.counts.get(LP_DEDUP_BYPASS, 0) == 0
        assert meter.counts[LP_PAIR_EVAL] < len(bars) ** 2


class TestSignatureKeys:
    def test_matches_per_row_tobytes(self):
        rng = np.random.default_rng(5)
        signatures = rng.standard_normal((50, 9))
        assert signature_keys(signatures) == [
            row.tobytes() for row in signatures
        ]

    def test_non_contiguous_input(self):
        rng = np.random.default_rng(6)
        wide = rng.standard_normal((20, 18))
        view = wide[:, ::2]  # non-contiguous (20, 9) view
        assert signature_keys(view) == [row.tobytes() for row in view]

    def test_empty(self):
        assert signature_keys(np.empty((0, 9))) == []


class TestLpMemoCache:
    def test_lookup_store_roundtrip(self):
        cache = LpMemoCache(capacity=10)
        keys = [b"a", b"b", b"c"]
        found, missing = cache.lookup(keys)
        assert found == {} and missing == [0, 1, 2]
        cache.store(keys, [1.0, 2.0, 3.0])
        found, missing = cache.lookup([b"b", b"z", b"a"])
        assert found == {0: 2.0, 2: 1.0}
        assert missing == [1]

    def test_lru_eviction(self):
        cache = LpMemoCache(capacity=2)
        cache.store([b"a", b"b"], [1.0, 2.0])
        cache.lookup([b"a"])           # refresh 'a'
        cache.store([b"c"], [3.0])     # evicts LRU 'b'
        found, missing = cache.lookup([b"a", b"b", b"c"])
        assert set(found) == {0, 2}
        assert missing == [1]
        assert cache.evictions == 1

    def test_resize_shrinks(self):
        cache = LpMemoCache(capacity=8)
        cache.store([bytes([i]) for i in range(8)], list(range(8)))
        cache.resize(3)
        assert len(cache) == 3
        with pytest.raises(SolverError):
            cache.resize(0)

    def test_stats_and_hit_rate(self):
        cache = LpMemoCache()
        assert cache.hit_rate == 0.0
        cache.store([b"k"], [1.0])
        cache.lookup([b"k", b"m"])
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)
        cache.reset_stats()
        assert cache.hits == cache.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(SolverError):
            LpMemoCache(capacity=0)

    def test_global_cache_reused_across_assemblies(self):
        bars = meshed_bars(origin=Point3D(0, um(123), 0))
        lp_memo_cache().clear()
        assemble_partial_inductance_matrix(bars)
        with solver_call_meter() as meter:
            assemble_partial_inductance_matrix(bars)
        assert meter.counts.get(LP_MEMO_HIT, 0) > 0
        assert memo_hit_rate() > 0.0

    def test_disabled_context_bypasses_global(self):
        bars = [bar(), bar(um(7))]
        lp_memo_cache().clear()
        with lp_memo_disabled():
            assemble_partial_inductance_matrix(bars)
        assert len(lp_memo_cache()) == 0
        assemble_partial_inductance_matrix(bars)
        assert len(lp_memo_cache()) > 0


def reference_solve(resistances, lp, omega, rhs):
    z = np.diag(resistances).astype(complex) + 1j * omega * lp
    return np.linalg.solve(z, rhs)


class TestImpedanceFactorization:
    def setup_method(self):
        self.bars = meshed_bars(n_width=3, n_thickness=2)
        self.lp = naive(self.bars)
        rng = np.random.default_rng(7)
        self.r = rng.uniform(0.5, 5.0, len(self.bars))
        self.fact = ImpedanceFactorization(self.r, self.lp)

    def test_solve_matches_lu_across_frequencies(self):
        rng = np.random.default_rng(11)
        rhs = rng.standard_normal(self.fact.n)
        for f in [1e6, 1e8, 1e9, 1e10, 5e10]:
            omega = 2 * np.pi * f
            got = self.fact.solve(omega, rhs)
            want = reference_solve(self.r, self.lp, omega, rhs.astype(complex))
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=0)

    def test_zero_frequency_is_resistive(self):
        rhs = np.ones(self.fact.n)
        got = self.fact.solve(0.0, rhs)
        np.testing.assert_allclose(got.real, rhs / self.r, rtol=1e-12)
        np.testing.assert_allclose(got.imag, 0.0, atol=1e-25)

    def test_multi_rhs_stack(self):
        rng = np.random.default_rng(3)
        rhs = rng.standard_normal((self.fact.n, 4))
        omega = 2 * np.pi * 2e9
        got = self.fact.solve(omega, rhs)
        want = reference_solve(self.r, self.lp, omega, rhs.astype(complex))
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=0)

    def test_reduced_admittance_matches_schur(self):
        p = np.zeros((self.fact.n, 2))
        p[: self.fact.n // 2, 0] = 1.0
        p[self.fact.n // 2:, 1] = 1.0
        omega = 2 * np.pi * 1e9
        got = self.fact.reduced_admittance(omega, p)
        z = np.diag(self.r).astype(complex) + 1j * omega * self.lp
        want = p.T @ np.linalg.solve(z, p.astype(complex))
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=0)

    def test_tau_nonnegative_and_sorted(self):
        assert np.all(self.fact.tau >= -1e-30)
        assert np.all(np.diff(self.fact.tau) >= 0)

    def test_validation(self):
        with pytest.raises(SolverError):
            ImpedanceFactorization(np.array([1.0, -1.0]), np.eye(2))
        with pytest.raises(SolverError):
            ImpedanceFactorization(np.ones(3), np.eye(2))
        with pytest.raises(SolverError):
            ImpedanceFactorization(np.ones(2), np.ones((2, 3)))
        with pytest.raises(SolverError):
            self.fact.modal_scale(-1.0)
        with pytest.raises(SolverError):
            self.fact.solve(1.0, np.ones(self.fact.n + 1))


class TestSolverFactoredReduction:
    """PartialInductanceSolver's cached-factorization frequency path."""

    def _solver(self):
        conds = [
            Conductor.from_bar("a", bar(0.0), n_width=3, n_thickness=2),
            Conductor.from_bar("b", bar(um(6)), n_width=3, n_thickness=2),
        ]
        return PartialInductanceSolver(conds)

    def test_impedance_matches_direct_schur(self):
        solver = self._solver()
        lp = solver.filament_lp_matrix()
        r = solver.filament_resistances()
        p = solver.incidence()
        for f in [1e8, 1e9, 1e10]:
            omega = 2 * np.pi * f
            z_fil = np.diag(r).astype(complex) + 1j * omega * lp
            want = np.linalg.inv(p.T @ np.linalg.solve(z_fil, p.astype(complex)))
            got = solver.conductor_impedance_matrix(f)
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=0)

    def test_sweep_matches_pointwise(self):
        solver = self._solver()
        freqs = [1e8, 1e9, 1e10]
        r_sweep, l_sweep = solver.effective_rl_sweep(freqs)
        assert r_sweep.shape == (3, 2, 2)
        for k, f in enumerate(freqs):
            r_pt, l_pt = solver.effective_rl(f)
            np.testing.assert_allclose(r_sweep[k], r_pt, rtol=1e-12)
            np.testing.assert_allclose(l_sweep[k], l_pt, rtol=1e-12)

    def test_sweep_validation(self):
        solver = self._solver()
        with pytest.raises(SolverError):
            solver.effective_rl_sweep([])
        with pytest.raises(SolverError):
            solver.effective_rl_sweep([1e9, 0.0])


class TestNetworkFactoredVsDirect:
    def _network(self):
        net = FilamentNetwork(ground="ret")
        net.add_conductor("sig", bar(0.0), "in", "far",
                          n_width=3, n_thickness=2)
        net.add_conductor("gnd", bar(um(8)), "ret", "far",
                          n_width=3, n_thickness=2)
        net.add_resistor("tie", "in", "mid", resistance=0.5)
        net.add_conductor("stub", bar(um(16)), "mid", "far")
        return net

    def test_factored_matches_direct(self):
        net = self._network()
        for f in [1e7, 1e9, 3e10]:
            fast = net.solve(f, {"in": 1.0 + 0.0j}, factored=True)
            slow = net.solve(f, {"in": 1.0 + 0.0j}, factored=False)
            for node in fast.node_voltages:
                assert fast.node_voltages[node] == pytest.approx(
                    slow.node_voltages[node], rel=1e-10, abs=1e-18)
            for name in fast.conductor_currents:
                assert fast.conductor_currents[name] == pytest.approx(
                    slow.conductor_currents[name], rel=1e-10, abs=1e-18)

    def test_solve_many_matches_individual(self):
        net = self._network()
        injections = [{"in": 1.0 + 0.0j}, {"mid": 1.0 + 0.0j},
                      {"in": 0.5 + 0.5j, "mid": -0.25 + 0.0j}]
        batch = net.solve_many(1e9, injections)
        assert len(batch) == 3
        for inj, sol in zip(injections, batch):
            single = net.solve(1e9, inj)
            for node in single.node_voltages:
                assert sol.node_voltages[node] == pytest.approx(
                    single.node_voltages[node], rel=1e-10, abs=1e-20)
            for name in single.conductor_currents:
                assert sol.conductor_currents[name] == pytest.approx(
                    single.conductor_currents[name], rel=1e-10, abs=1e-20)

    def test_solve_many_empty(self):
        net = self._network()
        assert net.solve_many(1e9, []) == []
