"""Filament meshing for skin-effect extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import um
from repro.errors import GeometryError
from repro.geometry.primitives import Point3D, RectBar
from repro.peec.mesh import (
    FilamentMesh,
    graded_intervals,
    mesh_bar,
    skin_mesh_counts,
)


def bar(axis="x", w=um(4), t=um(2), l=um(100)):
    return RectBar(Point3D(0, 0, 0), l, w, t, axis)


class TestGradedIntervals:
    def test_uniform_split(self):
        edges = graded_intervals(1.0, 4, ratio=1.0)
        assert np.allclose(edges, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_endpoints_exact(self):
        edges = graded_intervals(3.0, 5, ratio=2.0)
        assert edges[0] == 0.0
        assert edges[-1] == pytest.approx(3.0)

    def test_edge_refinement(self):
        edges = graded_intervals(1.0, 5, ratio=2.0)
        widths = np.diff(edges)
        assert widths[0] < widths[2]         # edge cells smaller than centre
        assert widths[0] == pytest.approx(widths[-1])  # symmetric

    def test_single_cell(self):
        assert np.allclose(graded_intervals(2.0, 1), [0.0, 2.0])

    @pytest.mark.parametrize("kwargs", [
        {"total": 0.0, "count": 2},
        {"total": 1.0, "count": 0},
        {"total": 1.0, "count": 2, "ratio": 0.0},
    ])
    def test_invalid_inputs(self, kwargs):
        with pytest.raises(GeometryError):
            graded_intervals(**kwargs)

    @given(st.integers(1, 12), st.floats(0.5, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_widths_sum_to_total(self, count, ratio):
        edges = graded_intervals(5.0, count, ratio)
        assert edges[-1] == pytest.approx(5.0)
        assert np.all(np.diff(edges) > 0)


class TestMeshBar:
    def test_filament_count(self):
        mesh = mesh_bar(bar(), n_width=3, n_thickness=2)
        assert len(mesh) == 6

    def test_total_area_preserved(self):
        b = bar(w=um(5), t=um(3))
        mesh = mesh_bar(b, n_width=4, n_thickness=3, grading=1.8)
        assert mesh.total_area == pytest.approx(b.cross_section_area, rel=1e-12)

    def test_filaments_inherit_axis_and_length(self):
        b = bar(axis="y")
        mesh = mesh_bar(b, 2, 2)
        assert all(f.axis == "y" for f in mesh.filaments)
        assert all(f.length == b.length for f in mesh.filaments)

    def test_filaments_tile_without_overlap(self):
        mesh = mesh_bar(bar(), 3, 3)
        fils = mesh.filaments
        for i in range(len(fils)):
            for j in range(i + 1, len(fils)):
                assert not fils[i].overlaps(fils[j])

    def test_filaments_stay_inside_parent(self):
        b = bar(axis="z", w=um(3), t=um(2))
        mesh = mesh_bar(b, 3, 2, grading=2.0)
        lo, hi = b.origin, b.far_corner
        for f in mesh.filaments:
            flo, fhi = f.origin, f.far_corner
            assert flo.x >= lo.x - 1e-15 and fhi.x <= hi.x + 1e-15
            assert flo.y >= lo.y - 1e-15 and fhi.y <= hi.y + 1e-15
            assert flo.z >= lo.z - 1e-15 and fhi.z <= hi.z + 1e-15

    def test_resistances_parallel_to_dc_value(self):
        b = bar(w=um(4), t=um(2), l=um(1000))
        rho = 1.7e-8
        mesh = mesh_bar(b, 3, 2, grading=1.4)
        parallel = 1.0 / np.sum(1.0 / mesh.resistances(rho))
        expected = rho * b.length / b.cross_section_area
        assert parallel == pytest.approx(expected, rel=1e-12)

    def test_resistances_reject_bad_resistivity(self):
        mesh = mesh_bar(bar(), 2, 2)
        with pytest.raises(GeometryError):
            mesh.resistances(0.0)

    def test_empty_mesh_rejected(self):
        with pytest.raises(GeometryError):
            FilamentMesh(parent=bar(), filaments=[])


class TestSkinMeshCounts:
    def test_thick_conductor_gets_more_filaments(self):
        delta = um(1)
        n_w, n_t = skin_mesh_counts(um(10), um(2), delta)
        assert n_w > n_t >= 1

    def test_thin_conductor_single_filament(self):
        n_w, n_t = skin_mesh_counts(um(0.5), um(0.3), um(2))
        assert (n_w, n_t) == (1, 1)

    def test_cap_respected(self):
        n_w, n_t = skin_mesh_counts(um(100), um(100), um(1), max_per_side=6)
        assert (n_w, n_t) == (6, 6)

    def test_invalid_skin_depth(self):
        with pytest.raises(GeometryError):
            skin_mesh_counts(um(1), um(1), 0.0)
