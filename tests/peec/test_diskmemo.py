"""Persistent Lp memo shard: round-trip, corruption recovery, races.

The disk shard's contract is "can cost time, never correctness": any
unusable file loads as empty (plus a corruption counter tick) and every
observable on-disk state is a complete, digest-valid shard.  These tests
exercise that contract directly -- exact value round-trips, every
corruption mode, capacity bounding, and interleaved concurrent flushes.
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import SolverError
from repro.peec.diskmemo import (
    SHARD_VERSION,
    DiskMemoShard,
    flush_lp_memo,
    warm_lp_memo,
)
from repro.peec.kernel import LpMemoCache, lp_memo_cache
from repro.telemetry import (
    LP_DISK_MEMO_CORRUPT,
    LP_DISK_MEMO_FLUSH,
    LP_DISK_MEMO_WARM,
    get_registry,
)


def make_entries(n, seed=0):
    """*n* synthetic (72-byte key, float value) memo entries."""
    rng = np.random.default_rng(seed)
    keys = [rng.random(9).tobytes() for _ in range(n)]
    values = [float(v) for v in rng.uniform(1e-12, 1e-6, size=n)]
    return keys, values


def counter(name):
    return get_registry().counter_value(name)


@pytest.fixture(autouse=True)
def _clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


class TestRoundTrip:
    def test_flush_then_warm_restores_exact_values(self, tmp_path):
        path = tmp_path / "memo.json"
        keys, values = make_entries(50)
        cache = LpMemoCache()
        cache.store(keys, values)

        shard = DiskMemoShard(path)
        assert shard.flush(cache) == 50
        assert counter(LP_DISK_MEMO_FLUSH) == 50

        warmed = LpMemoCache()
        assert shard.warm(warmed) == 50
        assert counter(LP_DISK_MEMO_WARM) == 50
        found, missing = warmed.lookup(keys)
        assert missing == []
        # JSON floats are repr round-trips: bit-exact, not approximate.
        for i, value in enumerate(values):
            assert found[i] == value

    def test_warm_preserves_recency_order(self, tmp_path):
        path = tmp_path / "memo.json"
        keys, values = make_entries(10)
        cache = LpMemoCache()
        cache.store(keys, values)
        DiskMemoShard(path).flush(cache)

        warmed = LpMemoCache()
        DiskMemoShard(path).warm(warmed)
        assert [k for k, _ in warmed.items_snapshot()] == keys

    def test_global_cache_helpers(self, tmp_path):
        path = tmp_path / "memo.json"
        cache = lp_memo_cache()
        cache.clear()
        keys, values = make_entries(8, seed=3)
        cache.store(keys, values)
        try:
            assert flush_lp_memo(path) == 8
            cache.clear()
            assert warm_lp_memo(path) == 8
            found, missing = cache.lookup(keys)
            assert missing == []
            assert [found[i] for i in range(8)] == values
        finally:
            cache.clear()

    def test_cold_shard_warms_nothing_without_corruption_tick(self, tmp_path):
        shard = DiskMemoShard(tmp_path / "absent.json")
        assert shard.warm(LpMemoCache()) == 0
        assert counter(LP_DISK_MEMO_CORRUPT) == 0
        assert counter(LP_DISK_MEMO_WARM) == 0


class TestCorruptionRecovery:
    def _shard_with_data(self, tmp_path, n=5):
        path = tmp_path / "memo.json"
        cache = LpMemoCache()
        cache.store(*make_entries(n))
        DiskMemoShard(path).flush(cache)
        get_registry().reset()
        return path

    @pytest.mark.parametrize("mangle", [
        lambda text: text[: len(text) // 2],        # truncated mid-write
        lambda text: "not json at all {",           # malformed JSON
        lambda text: "[1, 2, 3]",                   # wrong top-level type
        lambda text: json.dumps(
            {**json.loads(text), "version": SHARD_VERSION + 99}),
    ], ids=["truncated", "malformed", "wrong-type", "version-skew"])
    def test_bad_shard_loads_empty_and_ticks_corrupt(self, tmp_path, mangle):
        path = self._shard_with_data(tmp_path)
        path.write_text(mangle(path.read_text()))
        assert DiskMemoShard(path).load_entries() == []
        assert counter(LP_DISK_MEMO_CORRUPT) == 1

    def test_digest_mismatch_rejected(self, tmp_path):
        path = self._shard_with_data(tmp_path)
        document = json.loads(path.read_text())
        document["entries"][0][1] *= 2.0  # silent bit-flip in a value
        path.write_text(json.dumps(document))
        assert DiskMemoShard(path).load_entries() == []
        assert counter(LP_DISK_MEMO_CORRUPT) == 1

    def test_bad_hex_key_rejected(self, tmp_path):
        path = self._shard_with_data(tmp_path)
        document = json.loads(path.read_text())
        document["entries"][0][0] = "zz-not-hex"
        document["sha256"] = __import__("hashlib").sha256(
            json.dumps(document["entries"],
                       separators=(",", ":")).encode()).hexdigest()
        path.write_text(json.dumps(document))
        assert DiskMemoShard(path).load_entries() == []
        assert counter(LP_DISK_MEMO_CORRUPT) == 1

    def test_corrupt_shard_is_recovered_by_next_flush(self, tmp_path):
        path = self._shard_with_data(tmp_path)
        path.write_text("garbage")
        cache = LpMemoCache()
        keys, values = make_entries(3, seed=7)
        cache.store(keys, values)
        assert DiskMemoShard(path).flush(cache) == 3
        warmed = LpMemoCache()
        assert DiskMemoShard(path).warm(warmed) == 3
        assert warmed.lookup(keys)[1] == []


class TestCapacity:
    def test_capacity_below_one_rejected(self, tmp_path):
        with pytest.raises(SolverError):
            DiskMemoShard(tmp_path / "memo.json", capacity=0)

    def test_flush_bounds_to_capacity_keeping_mru_tail(self, tmp_path):
        path = tmp_path / "memo.json"
        keys, values = make_entries(10)
        cache = LpMemoCache()
        cache.store(keys, values)
        assert DiskMemoShard(path, capacity=4).flush(cache) == 4
        kept = DiskMemoShard(path).load_entries()
        assert [k for k, _ in kept] == keys[-4:]

    def test_load_bounds_oversized_shard(self, tmp_path):
        path = tmp_path / "memo.json"
        keys, values = make_entries(10)
        cache = LpMemoCache()
        cache.store(keys, values)
        DiskMemoShard(path).flush(cache)
        kept = DiskMemoShard(path, capacity=3).load_entries()
        assert [k for k, _ in kept] == keys[-3:]

    def test_flush_merges_disk_entries_under_new_ones(self, tmp_path):
        path = tmp_path / "memo.json"
        old_keys, old_values = make_entries(4, seed=1)
        first = LpMemoCache()
        first.store(old_keys, old_values)
        DiskMemoShard(path).flush(first)

        new_keys, new_values = make_entries(4, seed=2)
        second = LpMemoCache()
        second.store(new_keys, new_values)
        DiskMemoShard(path).flush(second)

        merged = DiskMemoShard(path).load_entries()
        assert [k for k, _ in merged] == old_keys + new_keys


class TestConcurrentWriters:
    def test_interleaved_flushes_always_leave_valid_shard(self, tmp_path):
        """Racing flushes may last-win but never corrupt the file."""
        path = tmp_path / "memo.json"
        n_writers, per_writer, rounds = 4, 20, 5
        caches = []
        for w in range(n_writers):
            cache = LpMemoCache()
            cache.store(*make_entries(per_writer, seed=100 + w))
            caches.append(cache)

        errors = []

        def hammer(cache):
            try:
                shard = DiskMemoShard(path)
                for _ in range(rounds):
                    shard.flush(cache)
                    shard.load_entries()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(c,))
                   for c in caches]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        # The final file is a complete, digest-valid shard...
        final = DiskMemoShard(path).load_entries()
        assert counter(LP_DISK_MEMO_CORRUPT) == 0
        # ...holding at least the last flusher's full entry set.
        final_keys = {k for k, _ in final}
        assert any(
            all(key in final_keys for key, _ in cache.items_snapshot())
            for cache in caches
        )
