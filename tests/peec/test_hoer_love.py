"""Exact Hoer-Love volume integrals against independent references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import um
from repro.errors import GeometryError
from repro.geometry.primitives import Point3D, RectBar
from repro.peec.analytic import (
    grover_self_inductance,
    mutual_inductance_filaments,
)
from repro.peec.hoer_love import (
    bar_mutual_inductance,
    bar_self_inductance,
    mutual_inductance_batch,
)


def bar(x=0.0, y=0.0, z=0.0, l=1e-3, w=um(1), t=um(1), axis="x"):
    return RectBar(Point3D(x, y, z), l, w, t, axis)


class TestSelfInductance:
    def test_against_grover_thin_wire(self):
        b = bar()
        exact = bar_self_inductance(b)
        approx = grover_self_inductance(1e-3, um(1), um(1))
        assert exact == pytest.approx(approx, rel=0.01)

    def test_against_grover_wide_trace(self):
        b = bar(l=6e-3, w=um(10), t=um(2))
        exact = bar_self_inductance(b)
        approx = grover_self_inductance(6e-3, um(10), um(2))
        assert exact == pytest.approx(approx, rel=0.01)

    def test_scale_invariance(self):
        # M scales linearly with uniform geometric scaling
        small = bar_self_inductance(bar(l=1e-3, w=um(1), t=um(1)))
        big = bar_self_inductance(bar(l=2e-3, w=um(2), t=um(2)))
        assert big == pytest.approx(2.0 * small, rel=1e-9)

    def test_axis_invariance(self):
        lx = bar_self_inductance(bar(axis="x"))
        ly = bar_self_inductance(bar(axis="y"))
        lz = bar_self_inductance(bar(axis="z"))
        assert lx == pytest.approx(ly, rel=1e-12)
        assert lx == pytest.approx(lz, rel=1e-12)

    @given(st.floats(0.2, 5.0), st.floats(0.2, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_positive_for_all_aspect_ratios(self, w, t):
        assert bar_self_inductance(bar(w=w * um(1), t=t * um(1))) > 0


class TestMutualInductance:
    def test_thin_bars_match_filament_formula(self):
        # 0.1 um square bars 10 um apart behave like filaments
        b1 = bar(w=um(0.1), t=um(0.1))
        b2 = bar(y=um(10), w=um(0.1), t=um(0.1))
        exact = bar_mutual_inductance(b1, b2)
        filament = mutual_inductance_filaments(1e-3, um(10))
        assert exact == pytest.approx(filament, rel=1e-3)

    def test_symmetry(self):
        b1 = bar(w=um(3))
        b2 = bar(y=um(8), w=um(1))
        assert bar_mutual_inductance(b1, b2) == pytest.approx(
            bar_mutual_inductance(b2, b1), rel=1e-12
        )

    def test_orthogonal_bars_have_zero_mutual(self):
        b1 = bar(axis="x")
        b2 = bar(z=um(3), axis="y")
        assert bar_mutual_inductance(b1, b2) == 0.0

    def test_mutual_below_self(self):
        b1 = bar()
        b2 = bar(y=um(2))
        assert 0 < bar_mutual_inductance(b1, b2) < bar_self_inductance(b1)

    def test_mutual_decays_with_spacing(self):
        b1 = bar()
        values = [
            bar_mutual_inductance(b1, bar(y=d)) for d in (um(2), um(10), um(50))
        ]
        assert values[0] > values[1] > values[2] > 0

    def test_vertical_offset_equivalent_to_lateral(self):
        # mutual depends on distance, not direction, for square bars
        lateral = bar_mutual_inductance(bar(), bar(y=um(10)))
        vertical = bar_mutual_inductance(bar(), bar(z=um(10)))
        assert lateral == pytest.approx(vertical, rel=1e-9)

    def test_longitudinal_offset_reduces_coupling(self):
        aligned = bar_mutual_inductance(bar(), bar(y=um(5)))
        shifted = bar_mutual_inductance(bar(), bar(x=0.5e-3, y=um(5)))
        assert shifted < aligned

    def test_collinear_bars_positive_coupling(self):
        b1 = bar(l=0.5e-3)
        b2 = bar(x=0.6e-3, l=0.5e-3)
        m = bar_mutual_inductance(b1, b2)
        assert m > 0

    def test_y_axis_bars_equivalent(self):
        m_x = bar_mutual_inductance(bar(), bar(y=um(10)))
        m_y = bar_mutual_inductance(
            bar(axis="y"), bar(x=um(10), axis="y")
        )
        assert m_x == pytest.approx(m_y, rel=1e-9)


class TestBatchEvaluation:
    def test_batch_matches_scalar(self):
        ys = np.array([um(2), um(5), um(20)])
        batch = mutual_inductance_batch(
            0.0, 1e-3, 0.0, um(1), 0.0, um(1),
            0.0, 1e-3, ys, um(1), 0.0, um(1),
        )
        for yi, value in zip(ys, batch):
            scalar = bar_mutual_inductance(bar(), bar(y=float(yi)))
            assert value == pytest.approx(scalar, rel=1e-12)

    def test_matrix_broadcast_symmetric(self):
        y = np.array([0.0, um(3), um(7)])
        m = mutual_inductance_batch(
            0.0, 1e-3, y[:, None], um(1), 0.0, um(1),
            0.0, 1e-3, y[None, :], um(1), 0.0, um(1),
        )
        assert m.shape == (3, 3)
        assert np.allclose(m, m.T, rtol=1e-12)
        # diagonal entries are the exact self inductance
        assert m[0, 0] == pytest.approx(bar_self_inductance(bar()), rel=1e-12)

    def test_zero_extents_rejected(self):
        with pytest.raises(GeometryError):
            mutual_inductance_batch(
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            )

    def test_no_nan_for_touching_bars(self):
        # bars sharing a face exercise the degenerate primitive arguments
        value = mutual_inductance_batch(
            0.0, 1e-3, 0.0, um(1), 0.0, um(1),
            0.0, 1e-3, um(1), um(1), 0.0, um(1),
        )
        assert np.isfinite(value)
        assert value > 0


class TestEnergyConsistency:
    def test_two_bar_matrix_positive_definite(self):
        b1 = bar()
        b2 = bar(y=um(3))
        l11 = bar_self_inductance(b1)
        l22 = bar_self_inductance(b2)
        m = bar_mutual_inductance(b1, b2)
        matrix = np.array([[l11, m], [m, l22]])
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert np.all(eigenvalues > 0)

    def test_merged_bar_consistency(self):
        # A 2w-wide bar equals two w-wide halves: L = (L1 + L2 + 2M) / 4
        # (parallel combination of equal coupled halves carrying I/2 each).
        half1 = bar(w=um(2))
        half2 = bar(y=um(2), w=um(2))
        whole = bar(w=um(4))
        l_half = bar_self_inductance(half1)
        m = bar_mutual_inductance(half1, half2)
        combined = (l_half + m) / 2.0
        assert bar_self_inductance(whole) == pytest.approx(combined, rel=1e-10)
