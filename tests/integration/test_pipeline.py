"""End-to-end pipelines across subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    ClockBuffer,
    CoplanarWaveguideConfig,
    HTree,
    TableBasedExtractor,
    significant_frequency,
    um,
)
from repro.clocktree.skew import compare_rc_vs_rlc, simulate_clocktree
from repro.constants import GHz, fF, ps
from repro.circuit.transient import transient_analysis


@pytest.fixture(scope="module")
def cpw_config():
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


@pytest.fixture(scope="module")
def characterized(cpw_config):
    return TableBasedExtractor.characterize(
        cpw_config, frequency=GHz(6.4),
        widths=[um(5), um(10), um(15)],
        lengths=[um(400), um(1000), um(2500)],
    )


class TestCharacterizeExtractSimulate:
    """The full paper flow: field solve -> tables -> netlist -> waveform."""

    def test_tables_to_skew(self, characterized):
        buffer = ClockBuffer(drive_resistance=15.0, input_capacitance=fF(30),
                             supply=1.8, rise_time=ps(50))
        htree = HTree.generate(
            levels=1, root_length=um(2000), config=characterized.config,
            buffer=buffer, sink_capacitance=fF(40),
            branch_scale={"s_L": 1.25},
        )
        extractor = characterized.as_clocktree_extractor()
        comparison = compare_rc_vs_rlc(
            extractor, htree, t_stop=ps(2000), dt=ps(0.5)
        )
        # asymmetric tree: skew exists, and RC mispredicts it
        assert comparison.rlc.skew > 0
        assert comparison.rlc.max_delay > comparison.rc.max_delay

    def test_persisted_tables_equivalent_flow(self, characterized, tmp_path,
                                              cpw_config):
        characterized.save(tmp_path)
        reloaded = TableBasedExtractor.load(tmp_path, cpw_config, GHz(6.4))
        a = characterized.as_clocktree_extractor().segment_rlc(um(1200))
        b = reloaded.as_clocktree_extractor().segment_rlc(um(1200))
        assert b.inductance == pytest.approx(a.inductance, rel=1e-12)
        assert b.resistance == pytest.approx(a.resistance, rel=1e-12)


class TestSignificantFrequencyConsistency:
    def test_buffer_and_rule_agree(self):
        buffer = ClockBuffer(rise_time=ps(100))
        assert buffer.significant_frequency == pytest.approx(
            significant_frequency(ps(100))
        )


class TestPhysicalCrossChecks:
    def test_loop_l_vs_circuit_ac(self, cpw_config):
        """PEEC loop inductance agrees with an AC solve of the same loop
        built as a lumped coupled-inductor circuit."""
        from repro.circuit.netlist import Circuit
        from repro.circuit.ac import input_impedance
        from repro.peec.solver import Conductor, PartialInductanceSolver

        block = cpw_config.trace_block(um(1000))
        conductors = [
            Conductor.from_bar(t.name, t.to_bar()) for t in block.traces
        ]
        solver = PartialInductanceSolver(conductors)
        lp = solver.conductor_lp_matrix()
        resistances = solver.filament_resistances()

        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0", 0.0, ac_magnitude=1.0)
        # signal: in -> far; grounds: 0 -> far (parallel return)
        nodes = {"GND_L": ("0", "far"), "SIG": ("in", "far"),
                 "GND_R": ("0", "far")}
        inductors = {}
        for i, trace in enumerate(block.traces):
            n1, n2 = nodes[trace.name]
            mid = f"m_{trace.name}"
            circuit.add_resistor(f"R_{trace.name}", n1, mid, resistances[i])
            inductors[trace.name] = circuit.add_inductor(
                f"L_{trace.name}", mid, n2, lp[i, i]
            )
        names = [t.name for t in block.traces]
        for i in range(3):
            for j in range(i + 1, 3):
                circuit.add_mutual(
                    f"K{i}{j}", f"L_{names[i]}", f"L_{names[j]}",
                    mutual=lp[i, j],
                )
        f = 1e6   # low frequency: uniform current, matches conductor Lp
        z = input_impedance(circuit, "V1", [f])[0]
        l_circuit = z.imag / (2 * np.pi * f)

        from repro.peec.loop import LoopProblem
        _, l_peec = LoopProblem(block, n_width=1, n_thickness=1).loop_rl(f)
        assert l_circuit == pytest.approx(l_peec, rel=1e-6)

    def test_cap_extraction_consistent_between_models(self, cpw_config):
        """FD field solver and closed forms agree on the CPW total cap
        within the closed forms' documented accuracy envelope."""
        from repro.rc.capacitance import block_capacitance_matrix
        from repro.rc.fieldsolver2d import FieldSolver2D

        block = cpw_config.trace_block(1.0)
        analytic = block_capacitance_matrix(
            block, cpw_config.capacitance_model()
        )[1, 1]
        solver = FieldSolver2D(cpw_config.cross_section(), nx=100, nz=70)
        matrix = solver.capacitance_matrix()
        fd = matrix[1, 1]
        assert analytic == pytest.approx(fd, rel=0.35)

    def test_transient_final_value_matches_dc(self, characterized):
        """Transient settles to the DC operating point."""
        extractor = characterized.as_clocktree_extractor()
        buffer = ClockBuffer(drive_resistance=20.0, supply=1.8,
                             rise_time=ps(50))
        htree = HTree.generate(levels=1, root_length=um(1000),
                               config=characterized.config, buffer=buffer)
        netlist = extractor.build_netlist(htree)
        result = transient_analysis(netlist.circuit, t_stop=ps(2000), dt=ps(1))
        for node in netlist.sink_nodes.values():
            assert result.voltage(node).final_value == pytest.approx(
                1.8, rel=0.02
            )
