"""Run-ledger concurrency: parallel appends must never corrupt the index.

Sweep campaigns run many ``run_scenario`` calls from separate pool
processes against one ledger; before :class:`LedgerLock`, two
concurrent ``record()`` calls could interleave their load -> append ->
write cycles and silently drop runs (and mint colliding run ids).
These tests hammer a shared ledger from real subprocesses -- the same
cross-process shape the DiskMemoShard interleaved-flush test uses --
and assert the index stays complete, unique, and parseable.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ScenarioError
from repro.scenarios import RunLedger
from repro.scenarios.ledger import LedgerLock

_WRITER = """
import sys
from repro.scenarios import RunLedger

root, writer, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
ledger = RunLedger(root)
for i in range(count):
    entry = ledger.record(
        scenario="concurrent-toy",
        run_key="sharedkey" + str(i % 2),  # force seq-number contention
        params={"WRITER": writer, "I": i},
        metrics={"value": float(i)},
        status="completed",
    )
    print(entry.run_id)
"""


class TestConcurrentAppends:
    def test_parallel_writers_lose_no_runs(self, tmp_path):
        root = tmp_path / "ledger"
        writers, per_writer = 4, 6
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER, str(root), str(w),
                 str(per_writer)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for w in range(writers)
        ]
        outputs = [p.communicate(timeout=120) for p in procs]
        for proc, (out, err) in zip(procs, outputs):
            assert proc.returncode == 0, err

        # Every record made it into the index, exactly once.
        ledger = RunLedger(root, create=False)
        entries = ledger.entries()
        assert len(entries) == writers * per_writer
        run_ids = [e.run_id for e in entries]
        assert len(set(run_ids)) == len(run_ids)
        # The index is well-formed JSON and every run loads.
        index = json.loads((root / RunLedger.INDEX_NAME).read_text())
        assert len(index["entries"]) == writers * per_writer
        for entry in entries:
            assert ledger.load_run(entry.run_id)["status"] == "completed"
        # Seq numbering under contention stayed dense per run key.
        for key in ("sharedkey0", "sharedkey1"):
            seqs = sorted(int(e.run_id.rsplit("-", 1)[1])
                          for e in entries if e.run_key == key)
            assert seqs == list(range(1, len(seqs) + 1))
        # No lock file left behind.
        assert not (root / RunLedger.LOCK_NAME).exists()


class TestLedgerLock:
    def test_exclusive_and_released(self, tmp_path):
        path = tmp_path / "index.lock"
        with LedgerLock(path):
            assert path.exists()
            with pytest.raises(ScenarioError, match="timed out"):
                with LedgerLock(path, timeout=0.05):
                    pass
        assert not path.exists()
        with LedgerLock(path, timeout=0.05):  # reacquirable after release
            pass

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "index.lock"
        path.write_text("dead process")
        old = time.time() - 3600.0
        import os

        os.utime(path, (old, old))
        with LedgerLock(path, timeout=1.0, stale_after=30.0):
            assert path.exists()
        assert not path.exists()

    def test_record_holds_and_releases_lock(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ledger.record(scenario="s", run_key="k", params={},
                      metrics={}, status="completed")
        assert not (ledger.root / RunLedger.LOCK_NAME).exists()

    def test_gc_runs_under_lock(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        for i in range(3):
            ledger.record(scenario="s", run_key=f"k{i}", params={},
                          metrics={}, status="completed")
        removed = ledger.gc(keep=1)
        assert len(removed) == 2
        assert not (ledger.root / RunLedger.LOCK_NAME).exists()
