"""Scenario registry, parameter canonicalization, and the run ledger."""

import json
import time

import pytest

from repro.errors import ScenarioError, ScenarioRunError
from repro.scenarios import (
    RunLedger,
    Scenario,
    all_scenarios,
    canonical_params,
    coerce_param,
    compute_run_key,
    diff_runs,
    get_scenario,
    register,
    render_entries,
    render_run,
    run_scenario,
    scenario_names,
    unregister,
)


# ----------------------------------------------------------------------
# synthetic scenario harness
# ----------------------------------------------------------------------
@pytest.fixture
def counting_scenario():
    """A registered throwaway scenario that counts real executions."""
    calls = {"n": 0, "fail": False}

    def run(params, session):
        calls["n"] += 1
        if calls["fail"]:
            raise RuntimeError("injected failure")
        return {"answer": 42.0, "knob": params["KNOB"],
                "duration_seconds": 0.5}

    scenario = Scenario(
        name="test-counting",
        figure="test",
        description="test scenario",
        defaults={"KNOB": 1.0, "FLAG": False, "LABEL": "x"},
        run=run,
    )
    register(scenario)
    try:
        yield scenario, calls
    finally:
        unregister("test-counting")


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(tmp_path / "runs")


# ----------------------------------------------------------------------
# spec: coercion + canonicalization
# ----------------------------------------------------------------------
class TestParamCanonicalization:
    def test_float_spellings_collapse(self):
        assert coerce_param("L", 1.0, "4e-3") == 0.004
        assert coerce_param("L", 1.0, " 0.004 ") == 0.004
        assert coerce_param("L", 1.0, 0.004) == 0.004

    def test_bool_and_int_coercion(self):
        assert coerce_param("F", False, "true") is True
        assert coerce_param("F", True, "0") is False
        assert coerce_param("N", 3, "8") == 8
        with pytest.raises(ScenarioError):
            coerce_param("N", 3, "2.5")
        with pytest.raises(ScenarioError):
            coerce_param("F", False, "maybe")

    def test_unknown_param_lists_valid_names(self):
        with pytest.raises(ScenarioError, match="KNOB"):
            canonical_params({"KNOB": 1.0}, {"NOPE": "3"}, scenario="s")

    def test_key_order_and_spelling_invariant_run_key(self):
        defaults = {"B": 2.0, "A": 1.0}
        p1 = canonical_params(defaults, {"A": "4e-3", "B": "1"})
        p2 = canonical_params(defaults, {"B": "1.0", "A": " 0.004"})
        assert list(p1) == ["A", "B"]  # sorted
        assert compute_run_key("s", p1) == compute_run_key("s", p2)
        assert compute_run_key("s", p1) != compute_run_key("other", p1)
        assert compute_run_key("s", p1) != compute_run_key(
            "s", p1, kit_sha="deadbeef")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_discovers_paper_scenarios(self):
        names = scenario_names()
        for expected in ("fig1-delay", "fig5-foundations", "table1-cascading",
                         "length-scaling", "table-accuracy", "htree-skew",
                         "process-variation", "bus-crosstalk",
                         "variation-skew"):
            assert expected in names

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(ScenarioError, match="htree-skew"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self, counting_scenario):
        scenario, _ = counting_scenario
        with pytest.raises(ScenarioError, match="already registered"):
            register(scenario)

    def test_all_scenarios_grouped_by_figure(self):
        figures = [s.figure for s in all_scenarios()]
        assert figures == sorted(figures)


# ----------------------------------------------------------------------
# ledger round-trip
# ----------------------------------------------------------------------
class TestLedgerRoundTrip:
    def test_record_list_show_diff(self, ledger, counting_scenario):
        _, calls = counting_scenario
        o1 = run_scenario("test-counting", {"KNOB": "2"}, ledger=ledger)
        o2 = run_scenario("test-counting", {"KNOB": "3"}, ledger=ledger)
        assert calls["n"] == 2
        assert not o1.skipped and not o2.skipped
        assert o1.run_key != o2.run_key

        entries = ledger.entries(scenario="test-counting")
        assert [e.run_id for e in entries] == [o1.run_id, o2.run_id]
        assert "test-counting" in render_entries(entries)

        run = ledger.load_run(o1.run_id)
        assert run["params"]["KNOB"] == 2.0
        assert run["metrics"]["answer"] == 42.0
        assert run["meta"]["git_sha"]
        text = render_run(run)
        assert o1.run_id in text and "KNOB" in text and "answer" in text

        diff = diff_runs(run, ledger.load_run(o2.run_id))
        assert diff.passed  # informational metrics never gate

    def test_diff_flags_duration_regression(self, ledger, counting_scenario):
        o1 = run_scenario("test-counting", ledger=ledger)
        run1 = ledger.load_run(o1.run_id)
        run2 = json.loads(json.dumps(run1))
        run2["metrics"]["duration_seconds"] = 5.0  # 10x worse, lower-better
        assert not diff_runs(run1, run2).passed
        assert diff_runs(run2, run1).passed  # got faster: fine

    def test_report_and_logs_captured(self, ledger, counting_scenario):
        from repro.telemetry.logs import get_logger

        def run(params, session):
            get_logger("test.scenario").info("inside-the-run", knob=1)
            return {"ok": 1.0}

        register(Scenario(name="test-logging", figure="test",
                          description="", run=run))
        try:
            outcome = run_scenario("test-logging", ledger=ledger)
        finally:
            unregister("test-logging")
        report = ledger.load_report(outcome.run_id)
        assert report is not None
        assert report.command == "repro run test-logging"
        logs = ledger.load_logs(outcome.run_id)
        assert any(r.get("event") == "inside-the-run" for r in logs)

    def test_resolve_selectors(self, ledger, counting_scenario):
        o1 = run_scenario("test-counting", ledger=ledger)
        o2 = run_scenario("test-counting", {"KNOB": "9"}, ledger=ledger)
        assert ledger.resolve(o1.run_id).run_id == o1.run_id
        assert ledger.resolve(o1.run_id[:8]).run_id == o1.run_id
        # scenario name -> latest completed
        assert ledger.resolve("test-counting").run_id == o2.run_id
        sha = ledger.entries()[0].git_sha
        assert ledger.resolve(f"test-counting@{sha[:8]}").run_id == o2.run_id
        with pytest.raises(ScenarioError, match="no run matches"):
            ledger.resolve("nonexistent")


# ----------------------------------------------------------------------
# skip-if-done semantics
# ----------------------------------------------------------------------
class TestSkipIfDone:
    def test_identical_request_skips(self, ledger, counting_scenario):
        _, calls = counting_scenario
        first = run_scenario("test-counting", {"KNOB": "4e-3"}, ledger=ledger)
        again = run_scenario("test-counting", {"KNOB": "0.004"},
                             ledger=ledger)
        assert calls["n"] == 1
        assert not first.skipped and again.skipped
        assert again.run_id == first.run_id
        assert again.metrics == first.metrics
        assert len(ledger.entries()) == 1

    def test_force_reruns(self, ledger, counting_scenario):
        _, calls = counting_scenario
        run_scenario("test-counting", ledger=ledger)
        forced = run_scenario("test-counting", ledger=ledger, force=True)
        assert calls["n"] == 2
        assert not forced.skipped
        assert forced.run_id.endswith("-02")

    def test_failed_run_recorded_and_not_skip_matched(
            self, ledger, counting_scenario):
        _, calls = counting_scenario
        calls["fail"] = True
        with pytest.raises(ScenarioRunError) as excinfo:
            run_scenario("test-counting", ledger=ledger)
        failed_id = excinfo.value.run_id
        entry = ledger.entries()[-1]
        assert entry.run_id == failed_id
        assert entry.status == "failed"
        assert "injected failure" in ledger.load_run(failed_id)["error"]
        # the failure does not satisfy skip-if-done: the fixed code reruns
        calls["fail"] = False
        retry = run_scenario("test-counting", ledger=ledger)
        assert not retry.skipped
        assert calls["n"] == 2

    def test_zero_solver_calls_on_skip(self, ledger):
        from repro.instrumentation import solver_call_count

        run_scenario("fig1-delay", {"SECTIONS": "4"}, ledger=ledger)
        before = solver_call_count()
        outcome = run_scenario("fig1-delay", {"SECTIONS": "4"},
                               ledger=ledger)
        assert outcome.skipped
        assert solver_call_count() == before  # provably zero field solves
        assert outcome.metrics["delay_ratio"] > 1.0


# ----------------------------------------------------------------------
# garbage collection
# ----------------------------------------------------------------------
class TestLedgerGC:
    def _seed(self, ledger, n, t0=1000.0):
        for i in range(n):
            ledger.record(scenario=f"s{i}", run_key=f"{i:064d}",
                          started_at=t0 + i, meta={"git_sha": "x"})

    def test_keep_bound_enforced(self, ledger):
        self._seed(ledger, 5)
        removed = ledger.gc(keep=2)
        assert len(removed) == 3
        kept = ledger.entries()
        assert len(kept) == 2
        assert [e.scenario for e in kept] == ["s3", "s4"]  # oldest pruned
        for entry in removed:
            assert not ledger.run_dir(entry.run_id).exists()

    def test_age_bound_enforced(self, ledger):
        now = time.time()
        ledger.record(scenario="old", run_key="a" * 64,
                      started_at=now - 10 * 86400, meta={})
        ledger.record(scenario="new", run_key="b" * 64,
                      started_at=now, meta={})
        removed = ledger.gc(max_age_days=5.0, now=now)
        assert [e.scenario for e in removed] == ["old"]
        assert [e.scenario for e in ledger.entries()] == ["new"]

    def test_gc_noop_when_within_bounds(self, ledger):
        self._seed(ledger, 2)
        assert ledger.gc(keep=10) == []
        assert len(ledger.entries()) == 2
