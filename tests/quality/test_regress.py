"""Bench regression watchdog: metadata, flattening, median/MAD gates."""

import json

import pytest

from repro.errors import QualityError
from repro.quality.regress import (
    BENCH_SCHEMA_VERSION,
    diff_benches,
    flatten_metrics,
    git_sha,
    load_bench,
    metric_direction,
    run_metadata,
)


def _bench(assembly_seconds=1.0, speedup=5.0):
    return {
        "meta": run_metadata(),
        "assembly": {
            "filaments": 400,
            "naive_seconds": assembly_seconds * 5.0,
            "dedup_seconds": assembly_seconds,
            "speedup": speedup,
        },
    }


class TestMetadata:
    def test_run_metadata_fields(self):
        meta = run_metadata()
        assert meta["schema_version"] == BENCH_SCHEMA_VERSION
        assert meta["git_sha"] and meta["host"] and meta["python"]
        assert "T" in meta["timestamp"]

    def test_git_sha_inside_repo(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40


class TestFlatten:
    def test_nested_dotted_names_skip_meta(self):
        flat = flatten_metrics(_bench())
        assert flat["assembly.naive_seconds"] == 5.0
        assert flat["assembly.speedup"] == 5.0
        assert not any(name.startswith("meta") for name in flat)

    def test_bools_skipped(self):
        assert flatten_metrics({"ok": True, "n": 2}) == {"n": 2.0}

    def test_telemetry_run_report_shape(self):
        report = {
            "command": "repro skew",
            "duration": 1.5,
            "metrics": {"counters": {"loop_solve": 3}},
            "worker_metrics": {"counters": {"loop_solve": 7}},
        }
        flat = flatten_metrics(report)
        assert flat["duration"] == 1.5
        assert flat["counter.loop_solve"] == 10.0


class TestDirection:
    @pytest.mark.parametrize("name,expected", [
        ("assembly.naive_seconds", "lower"),
        ("smoke.ratio_vs_naive", "lower"),
        ("lookup.warm_ms", "lower"),
        ("duration", "lower"),
        ("assembly.speedup", "higher"),
        ("memo.hit_rate", "higher"),
        ("assembly.dedup_factor", "higher"),
        ("assembly.filaments", None),
        ("memo.hits", None),
    ])
    def test_inference(self, name, expected):
        assert metric_direction(name) == expected


class TestDiff:
    def test_no_change_passes(self):
        diff = diff_benches([_bench()], _bench())
        assert diff.passed
        assert not diff.regressions

    def test_thirty_percent_slowdown_fails(self):
        # The acceptance criterion: a synthetic >= 30% slowdown must
        # exit nonzero under the default 25% threshold.
        diff = diff_benches([_bench(1.0)], _bench(1.3))
        assert not diff.passed
        names = [d.name for d in diff.regressions]
        assert "assembly.dedup_seconds" in names

    def test_small_jitter_passes(self):
        diff = diff_benches([_bench(1.0)], _bench(1.1))
        assert diff.passed

    def test_speedup_drop_fails(self):
        diff = diff_benches([_bench(speedup=5.0)], _bench(speedup=3.0))
        assert not diff.passed

    def test_speedup_gain_is_improvement(self):
        diff = diff_benches([_bench(speedup=5.0)], _bench(speedup=8.0))
        assert diff.passed
        assert any(d.name == "assembly.speedup" for d in diff.improvements)

    def test_informational_metrics_never_fail(self):
        base, cand = _bench(), _bench()
        cand["assembly"]["filaments"] = 4000  # 10x, but no direction
        assert diff_benches([base], cand).passed

    def test_mad_widens_the_gate_on_noisy_history(self):
        # Baselines at 1.0 and 2.0 s: median 1.5, MAD 0.5, so the 3*MAD
        # term admits a candidate the bare 25% threshold would flag.
        history = [_bench(1.0), _bench(2.0)]
        assert diff_benches(history, _bench(2.2)).passed
        # mad_k=0 falls back to the plain relative threshold -> fail
        assert not diff_benches(history, _bench(2.2), mad_k=0.0).passed

    def test_needs_baselines(self):
        with pytest.raises(QualityError):
            diff_benches([], _bench())

    def test_bad_threshold(self):
        with pytest.raises(QualityError):
            diff_benches([_bench()], _bench(), threshold=0.0)

    def test_render_mentions_verdict_and_metrics(self):
        diff = diff_benches([_bench(1.0)], _bench(1.5))
        text = diff.render()
        assert "REGRESSED" in text and "FAIL" in text
        assert "assembly.dedup_seconds" in text
        good = diff_benches([_bench()], _bench()).render()
        assert "PASS" in good


class TestLoadBench:
    def test_load(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(_bench()))
        assert "assembly" in load_bench(path)

    def test_unreadable(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(QualityError):
            load_bench(path)

    def test_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(QualityError):
            load_bench(path)


class TestBenchLedgerMirror:
    def test_record_bench_mirrors_into_active_ledger(self, tmp_path,
                                                     monkeypatch):
        from repro.quality.regress import record_bench
        from repro.scenarios import RunLedger

        root = tmp_path / "bench-ledger"
        monkeypatch.setenv("REPRO_LEDGER", str(root))
        record_bench(tmp_path / "BENCH_demo.json",
                     {"assembly": {"speedup": 3.0}})
        entries = RunLedger(root, create=False).entries()
        assert [e.scenario for e in entries] == ["bench:BENCH_demo"]
        run = RunLedger(root).load_run(entries[0].run_id)
        assert run["metrics"]["assembly"]["speedup"] == 3.0
        assert run["params"]["record"] == "BENCH_demo.json"

    def test_record_bench_without_ledger_env_writes_nothing(self, tmp_path,
                                                            monkeypatch):
        from repro.quality.regress import record_bench

        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        record_bench(tmp_path / "BENCH_demo.json", {"x": 1.0})
        assert not (tmp_path / ".repro").exists()
