"""PR 4 acceptance: audited warm H-tree demo + coverage of bad queries.

The issue's acceptance criteria, asserted end to end:

* an audited build of the warm-library H-tree demo produces a
  :class:`TableHealthReport` whose p95 relative interpolation error on
  in-range samples is within the paper's 5% budget;
* a deliberately out-of-range lookup surfaces in the coverage map with
  a nonzero ``table_lookup_extrapolated`` counter and the offending
  geometry recorded;
* auditing is opt-in -- a plain warm extraction performs zero field
  solves *and* zero audit solves.
"""

import warnings

import pytest

from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.constants import um
from repro.core.frequency import significant_frequency
from repro.errors import ExtrapolationWarning
from repro.experiments.htree_skew import default_htree
from repro.library import BuildRunner, standard_clocktree_jobs
from repro.quality import TableAuditor, audit_library, get_coverage_tracker
from repro.quality.audit import TableHealthReport
from repro.telemetry import (
    AUDIT_SOLVE,
    FIELD_SOLVE_2D,
    LOOP_SOLVE,
    PARTIAL_SOLVE,
    TABLE_LOOKUP_EXTRAPOLATED,
    get_registry,
    metrics_meter,
    render_report,
    telemetry_session,
)


@pytest.fixture(scope="module")
def audited_warm_library(tmp_path_factory):
    """Audited characterization of the default H-tree's structure family.

    The loop grid is dense enough for cubic splines on both axes (3
    widths x 4 lengths), which is what the paper's "few percent" claim
    assumes; the 2x2 capacitance grid keeps the 2-D solves cheap (its
    accuracy is not under test here).
    """
    root = tmp_path_factory.mktemp("audited-kit")
    htree = default_htree()
    frequency = significant_frequency(htree.buffer.rise_time)
    jobs = standard_clocktree_jobs(
        htree.config, frequency=frequency,
        widths=[um(6), um(10), um(14)],
        lengths=[um(400), um(1300), um(2600), um(5200)],
    )
    runner = BuildRunner(root, parallel=False,
                         auditor=TableAuditor(samples=6))
    stats = runner.build(jobs)
    return root, htree, frequency, stats


class TestAuditedBuild:
    def test_inductance_health_within_paper_budget(self, audited_warm_library):
        _, _, _, stats = audited_warm_library
        report = TableHealthReport.from_dict(stats.health["loop_inductance"])
        assert report.n_samples == 6
        assert report.p95_rel_error <= 0.05, report.render()
        assert report.passed

    def test_stored_library_audit_is_clean(self, audited_warm_library):
        from repro.library import TableLibrary

        root = audited_warm_library[0]
        reports, problems = audit_library(TableLibrary(root, create=False))
        assert problems == []
        assert {r.table_name for r in reports} == {
            "loop_inductance", "loop_resistance"}

    def test_warm_rebuild_keeps_health(self, audited_warm_library):
        from repro.library import TableLibrary

        root, htree, frequency, _ = audited_warm_library
        jobs = standard_clocktree_jobs(
            htree.config, frequency=frequency,
            widths=[um(6), um(10), um(14)],
            lengths=[um(400), um(1300), um(2600), um(5200)],
        )
        # no auditor this time: the warm skip must not erase the
        # embedded health reports
        with metrics_meter(get_registry()) as meter:
            stats = BuildRunner(root, parallel=False).build(jobs)
        assert stats.jobs_skipped == len(jobs)
        assert meter.counts.get(AUDIT_SOLVE, 0) == 0
        _, problems = audit_library(TableLibrary(root, create=False))
        assert problems == []


class TestWarmPathStaysOptIn:
    def test_zero_solves_including_audit(self, audited_warm_library):
        root, htree, frequency, _ = audited_warm_library
        extractor = ClocktreeRLCExtractor(
            htree.config, frequency=frequency, library=root)
        assert extractor.inductance_table is not None
        with metrics_meter(get_registry()) as meter:
            for segment in htree.segments:
                assert extractor.segment_rlc_for(segment).inductance > 0.0
        for counter in (LOOP_SOLVE, PARTIAL_SOLVE, FIELD_SOLVE_2D,
                        AUDIT_SOLVE):
            assert meter.counts.get(counter, 0) == 0, (
                f"warm extraction ran {counter}: {meter.counts}"
            )


class TestCoverageOfBadQueries:
    def test_out_of_range_lookup_is_surfaced(self, audited_warm_library):
        root, htree, frequency, _ = audited_warm_library
        extractor = ClocktreeRLCExtractor(
            htree.config, frequency=frequency, library=root)
        with metrics_meter(get_registry()) as meter:
            with pytest.warns(ExtrapolationWarning):
                # 3 um is below the characterized 6..14 um widths (an
                # out-of-range query that keeps R physically positive)
                extractor.segment_rlc(um(2000), signal_width=um(3))
        assert meter.counts.get(TABLE_LOOKUP_EXTRAPOLATED, 0) >= 1
        assert meter.counts.get(
            f"{TABLE_LOOKUP_EXTRAPOLATED}.width.low", 0) >= 1

        coverage = extractor.coverage()
        by_table = {entry["table"]: entry for entry in coverage}
        entry = by_table["loop_inductance"]
        assert entry["extrapolated"] >= 1
        assert any("width=3e-06" in key for key in entry["hot_spots"])

    def test_session_report_renders_coverage_and_health(
            self, audited_warm_library):
        root, htree, frequency, stats = audited_warm_library
        extractor = ClocktreeRLCExtractor(
            htree.config, frequency=frequency, library=root)
        with telemetry_session("repro skew") as session:
            extractor.segment_rlc(um(2000))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ExtrapolationWarning)
                extractor.segment_rlc(um(2000), signal_width=um(3))
            session.add_table_health(stats.health.values())
        report = session.report
        assert any(e["extrapolated"] for e in report.coverage)
        text = render_report(report)
        assert "lookup-domain coverage" in text
        assert "<< EXTRAPOLATION" in text
        assert "table health" in text and "loop_inductance" in text

    def test_hot_spot_records_offending_geometry(self, audited_warm_library):
        root, htree, frequency, _ = audited_warm_library
        extractor = ClocktreeRLCExtractor(
            htree.config, frequency=frequency, library=root)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ExtrapolationWarning)
            extractor.segment_rlc(um(2000), signal_width=um(3))
        coverage = get_coverage_tracker().get("loop_inductance")
        assert coverage is not None
        assert coverage.hot_spots
