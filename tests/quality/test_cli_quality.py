"""The quality CLI surface: build --audit, library audit, bench diff."""

import json

import pytest

from repro.cli import build_parser, main
from repro.quality.regress import run_metadata


def _bench_record(path, dedup_seconds, speedup=5.0):
    path.write_text(json.dumps({
        "meta": run_metadata(),
        "assembly": {
            "dedup_seconds": dedup_seconds,
            "speedup": speedup,
            "filaments": 400,
        },
    }))
    return path


class TestParsing:
    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (
            ["library", "build", "--root", "kit", "--audit"],
            ["library", "audit", "--root", "kit"],
            ["bench", "diff", "old.json", "new.json"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_audit_defaults(self):
        args = build_parser().parse_args(
            ["library", "build", "--root", "kit", "--audit"])
        assert args.audit_samples == 8
        assert args.audit_budget == pytest.approx(0.05)


class TestBenchDiffCLI:
    def test_identical_records_pass(self, tmp_path, capsys):
        old = _bench_record(tmp_path / "old.json", 1.0)
        new = _bench_record(tmp_path / "new.json", 1.0)
        assert main(["bench", "diff", str(old), str(new)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_thirty_percent_slowdown_exits_nonzero(self, tmp_path, capsys):
        old = _bench_record(tmp_path / "old.json", 1.0)
        new = _bench_record(tmp_path / "new.json", 1.3)
        assert main(["bench", "diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "FAIL" in out

    def test_multiple_baselines(self, tmp_path, capsys):
        a = _bench_record(tmp_path / "a.json", 1.0)
        b = _bench_record(tmp_path / "b.json", 1.05)
        new = _bench_record(tmp_path / "new.json", 1.02)
        assert main(["bench", "diff", str(a), str(b), str(new)]) == 0
        assert "2 baseline(s)" in capsys.readouterr().out

    def test_threshold_override(self, tmp_path, capsys):
        old = _bench_record(tmp_path / "old.json", 1.0)
        new = _bench_record(tmp_path / "new.json", 1.5)
        assert main(["bench", "diff", str(old), str(new),
                     "--threshold", "1.0"]) == 0
        capsys.readouterr()

    def test_single_file_is_usage_error(self, tmp_path, capsys):
        only = _bench_record(tmp_path / "only.json", 1.0)
        assert main(["bench", "diff", str(only)]) == 2
        capsys.readouterr()


class TestAuditedBuildAndLibraryAudit:
    @pytest.fixture(scope="class")
    def audited_root(self, tmp_path_factory):
        import contextlib
        import io

        root = tmp_path_factory.mktemp("kit") / "kit"
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main([
                "library", "build", "--root", str(root),
                "--widths", "6", "10", "14",
                "--lengths", "400", "1300", "2600", "5200",
                "--frequency", "6.4", "--serial", "--quiet",
                "--audit", "--audit-samples", "4",
            ])
        assert code == 0
        return root, buffer.getvalue()

    def test_build_prints_health(self, audited_root):
        _, out = audited_root
        assert "table health" in out
        assert "loop_inductance" in out

    def test_manifest_carries_health_reports(self, audited_root):
        from repro.library import TableLibrary
        from repro.quality.audit import TableHealthReport

        lib = TableLibrary(audited_root[0], create=False)
        for entry in lib.entries():
            health = entry.metadata.get("health")
            assert health is not None
            report = TableHealthReport.from_dict(health)
            assert report.n_samples == 4
            assert report.table_name == entry.name

    def test_library_audit_passes_and_writes_artifact(
            self, audited_root, tmp_path, capsys):
        artifact = tmp_path / "health.json"
        code = main(["library", "audit", "--root", str(audited_root[0]),
                     "--output", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "PASS" in out
        payload = json.loads(artifact.read_text())
        assert payload["problems"] == []
        assert len(payload["reports"]) == 2

    def test_budget_override_can_fail(self, audited_root, capsys):
        code = main(["library", "audit", "--root", str(audited_root[0]),
                     "--budget", "0.000001"])
        assert code == 1
        assert "PROBLEM" in capsys.readouterr().out

    def test_unaudited_library_is_flagged(self, tmp_path, capsys):
        root = tmp_path / "plain"
        assert main([
            "library", "build", "--root", str(root),
            "--widths", "6", "10", "--lengths", "500", "2000",
            "--serial", "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main(["library", "audit", "--root", str(root)]) == 1
        assert "no health report" in capsys.readouterr().out
