"""Lookup-domain coverage: classification, counters, coverage maps."""

import numpy as np
import pytest

from repro.quality.coverage import (
    AXIS_EDGE,
    AXIS_HIGH,
    AXIS_INTERIOR,
    AXIS_LOW,
    CoverageTracker,
    TableCoverage,
    classify_axis,
    classify_point,
    get_coverage_tracker,
    record_lookup,
    render_coverage,
)
from repro.telemetry import (
    TABLE_LOOKUP,
    TABLE_LOOKUP_EDGE,
    TABLE_LOOKUP_EXTRAPOLATED,
    metrics_meter,
)

AXIS = [0.0, 1.0, 2.0, 3.0, 4.0]


class TestClassifyAxis:
    def test_interior(self):
        assert classify_axis(AXIS, 2.5) == AXIS_INTERIOR

    def test_edge_cells(self):
        # Outermost spline cells: one-sided cubic support.
        assert classify_axis(AXIS, 0.5) == AXIS_EDGE
        assert classify_axis(AXIS, 3.5) == AXIS_EDGE

    def test_boundary_points_are_edge_not_extrapolated(self):
        assert classify_axis(AXIS, 0.0) == AXIS_EDGE
        assert classify_axis(AXIS, 4.0) == AXIS_EDGE

    def test_out_of_range(self):
        assert classify_axis(AXIS, -0.1) == AXIS_LOW
        assert classify_axis(AXIS, 4.1) == AXIS_HIGH

    def test_two_knot_axis_is_all_edge(self):
        assert classify_axis([0.0, 1.0], 0.5) == AXIS_EDGE

    def test_inner_knots_are_edge(self):
        # q == axis[1] / axis[-2] still has one-sided support on a side.
        assert classify_axis(AXIS, 1.0) == AXIS_EDGE
        assert classify_axis(AXIS, 3.0) == AXIS_EDGE


class TestClassifyPoint:
    def test_any_extrapolated_axis_dominates(self):
        overall, per_axis = classify_point([AXIS, AXIS], (2.5, 9.0))
        assert overall == "extrapolated"
        assert per_axis == (AXIS_INTERIOR, AXIS_HIGH)

    def test_edge_beats_interior(self):
        overall, _ = classify_point([AXIS, AXIS], (2.5, 0.5))
        assert overall == "edge"

    def test_all_interior(self):
        overall, _ = classify_point([AXIS, AXIS], (2.5, 1.5))
        assert overall == "interior"


class TestRecordLookup:
    def test_counters_tick_with_per_axis_tags(self):
        with metrics_meter() as meter:
            record_lookup([AXIS, AXIS], (2.5, 1.5),
                          axis_names=("width", "length"))
            record_lookup([AXIS, AXIS], (0.5, 1.5),
                          axis_names=("width", "length"))
            record_lookup([AXIS, AXIS], (-1.0, 9.0),
                          axis_names=("width", "length"))
        delta = meter.delta
        assert delta.counter(TABLE_LOOKUP) == 3
        assert delta.counter(TABLE_LOOKUP_EDGE) == 1
        assert delta.counter(TABLE_LOOKUP_EXTRAPOLATED) == 1
        assert delta.counter(f"{TABLE_LOOKUP_EXTRAPOLATED}.width.low") == 1
        assert delta.counter(f"{TABLE_LOOKUP_EXTRAPOLATED}.length.high") == 1

    def test_anonymous_lookup_stays_out_of_the_map(self):
        tracker = get_coverage_tracker()
        before = tracker.lookup_counts()
        record_lookup([AXIS], (2.5,))
        assert tracker.lookup_counts() == before

    def test_named_lookup_feeds_the_tracker(self):
        tracker = get_coverage_tracker()
        name = "cov_test_named_table"
        record_lookup([AXIS], (2.5,), name=name, axis_names=("width",))
        record_lookup([AXIS], (9.0,), name=name, axis_names=("width",))
        coverage = tracker.get(name)
        assert coverage is not None
        assert coverage.lookups >= 2
        assert coverage.extrapolated >= 1
        assert any("width=9" in key for key in coverage.hot_spots)


class TestTableCoverage:
    def test_axis_histogram_and_tails(self):
        cov = TableCoverage("t", ("x",), [AXIS])
        for q in (0.5, 0.5, 2.5, -1.0, 99.0):
            cov.record((q,), classify_point([AXIS], (q,))[0])
        axis = cov.to_dict()["axes"][0]
        assert axis["below"] == 1 and axis["above"] == 1
        assert axis["cells"][0] == 2 and axis["cells"][2] == 1
        assert cov.extrapolation_fraction == pytest.approx(2 / 5)

    def test_hot_spot_bound(self):
        cov = TableCoverage("t", ("x",), [AXIS])
        for k in range(TableCoverage.MAX_HOT_SPOTS + 5):
            cov.record((10.0 + k,), "extrapolated")
        assert len(cov.hot_spots) == TableCoverage.MAX_HOT_SPOTS
        assert cov.hot_spot_overflow == 5
        assert cov.extrapolated == TableCoverage.MAX_HOT_SPOTS + 5


class TestTrackerAndRender:
    def test_tracker_isolated_instance(self):
        tracker = CoverageTracker()
        tracker.record("a", ("x",), [AXIS], (2.5,), "interior")
        tracker.record("a", ("x",), [AXIS], (9.0,), "extrapolated")
        tracker.record("b", ("x",), [AXIS], (0.5,), "edge")
        assert tracker.lookup_counts() == {"a": 2, "b": 1}
        report = tracker.report()
        assert [e["table"] for e in report] == ["a", "b"]
        tracker.reset()
        assert tracker.report() == []

    def test_render_flags_extrapolation_with_geometry(self):
        tracker = CoverageTracker()
        tracker.record("lmap", ("width",), [AXIS], (9.0,), "extrapolated")
        text = render_coverage(tracker.report())
        assert "lookup-domain coverage (1 table(s))" in text
        assert "<< EXTRAPOLATION" in text
        assert "width=9" in text  # the offending geometry survives

    def test_render_roundtrips_through_json_dicts(self):
        import json

        tracker = CoverageTracker()
        tracker.record("t", ("x",), [AXIS], (2.5,), "interior")
        entries = json.loads(json.dumps(tracker.report()))
        assert "t: 1 lookup(s)" in render_coverage(entries)


class TestInstrumentedTable:
    def test_extraction_table_lookup_classifies(self):
        from repro.tables.lookup import ExtractionTable

        table = ExtractionTable(
            name="cov_itable", quantity="q", axis_names=("width",),
            axes=[np.array(AXIS)], values=np.array(AXIS) ** 2,
        )
        assert table.classify(2.5) == "interior"
        assert table.classify(width=0.5) == "edge"
        assert table.classify(9.0) == "extrapolated"
        # in_range agrees exactly with the classifier on boundaries
        for q in AXIS[:1] + AXIS[-1:]:
            assert table.in_range(q)
            assert table.classify(q) == "edge"
