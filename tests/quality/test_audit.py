"""Residual spot-check auditing: sampling, grading, manifest round-trips."""

import numpy as np
import pytest

from repro.errors import QualityError
from repro.quality.audit import (
    DEFAULT_ERROR_BUDGET,
    HEALTH_SCHEMA_VERSION,
    TableAuditor,
    TableHealthReport,
    render_health,
)
from repro.tables.lookup import ExtractionTable
from repro.telemetry import AUDIT_SOLVE, metrics_meter


def _table(name="audit_table", f=lambda x, y: 3.0 * x + 2.0 * y):
    xs = np.linspace(0.0, 4.0, 5)
    ys = np.linspace(0.0, 2.0, 5)
    values = np.array([[f(x, y) for y in ys] for x in xs])
    return ExtractionTable(
        name=name, quantity="q", axis_names=("x", "y"),
        axes=[xs, ys], values=values,
    )


class TestValidation:
    def test_bad_samples(self):
        with pytest.raises(QualityError):
            TableAuditor(samples=0)

    def test_bad_margin(self):
        with pytest.raises(QualityError):
            TableAuditor(margin=0.6)

    def test_bad_budget(self):
        with pytest.raises(QualityError):
            TableAuditor(error_budget=0.0)


class TestSampling:
    def test_deterministic_per_key(self):
        auditor = TableAuditor(samples=6, seed=7)
        axes = [np.linspace(0, 1, 4), np.linspace(5, 9, 4)]
        assert auditor.sample_points(axes, "k") == \
            TableAuditor(samples=6, seed=7).sample_points(axes, "k")

    def test_distinct_keys_distinct_samples(self):
        auditor = TableAuditor(samples=6)
        axes = [np.linspace(0, 1, 4)]
        assert auditor.sample_points(axes, "a") != \
            auditor.sample_points(axes, "b")

    def test_samples_stay_strictly_in_range(self):
        auditor = TableAuditor(samples=50, margin=0.02)
        axes = [np.linspace(-3, 3, 5), np.linspace(10, 20, 5)]
        for point in auditor.sample_points(axes, "k"):
            for axis, q in zip(axes, point):
                assert axis[0] < q < axis[-1]


class TestAudit:
    def test_good_spline_passes(self):
        table = _table()
        auditor = TableAuditor(samples=6)
        report = auditor.audit(table, lambda p: 3.0 * p[0] + 2.0 * p[1])
        assert report.passed
        assert report.p95_rel_error <= 1e-9
        assert report.n_samples == 6
        assert len(report.samples) == 6

    def test_bad_spline_fails(self):
        table = _table()
        auditor = TableAuditor(samples=6)
        # "truth" is 2x the table: 33% relative error everywhere
        report = auditor.audit(
            table, lambda p: 2.0 * (3.0 * p[0] + 2.0 * p[1]) + 1.0
        )
        assert not report.passed
        assert report.p95_rel_error > DEFAULT_ERROR_BUDGET

    def test_every_direct_solve_ticks_the_audit_counter(self):
        table = _table()
        auditor = TableAuditor(samples=5)
        with metrics_meter() as meter:
            auditor.audit(table, lambda p: 3.0 * p[0] + 2.0 * p[1])
        assert meter.delta.counter(AUDIT_SOLVE) == 5

    def test_explicit_points_override_the_sample(self):
        table = _table()
        auditor = TableAuditor(samples=9)
        report = auditor.audit(
            table, lambda p: 3.0 * p[0] + 2.0 * p[1],
            points=[(1.0, 1.0), (2.0, 0.5)],
        )
        assert report.n_samples == 2


class TestHealthReportSerialization:
    def test_roundtrip(self):
        table = _table()
        report = TableAuditor(samples=3).audit(
            table, lambda p: 3.0 * p[0] + 2.0 * p[1])
        clone = TableHealthReport.from_dict(report.to_dict())
        assert clone == report
        assert clone.schema_version == HEALTH_SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        data = TableHealthReport(table_name="t").to_dict()
        data["schema_version"] = 999
        with pytest.raises(QualityError):
            TableHealthReport.from_dict(data)

    def test_check_with_budget_override(self):
        report = TableHealthReport(table_name="t", p95_rel_error=0.03,
                                   error_budget=0.05, passed=True)
        assert report.check()
        assert not report.check(budget=0.01)

    def test_render(self):
        report = TableHealthReport(
            table_name="t", quantity="q", n_samples=4,
            p95_rel_error=0.021, passed=True,
        )
        text = render_health([report, report.to_dict()])
        assert text.count("PASS") == 2
        assert "2.10%" in text


class TestAuditJob:
    @pytest.fixture(scope="class")
    def job(self):
        from repro.clocktree.configs import CoplanarWaveguideConfig
        from repro.constants import GHz, um
        from repro.library import LoopTableJob

        config = CoplanarWaveguideConfig(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            thickness=um(2), height_below=um(2),
        )
        return LoopTableJob(
            config=config, frequency=GHz(6.4),
            widths=(um(6), um(10), um(14)),
            lengths=(um(400), um(1300), um(2600), um(5200)),
        )

    def test_one_solve_per_point_covers_both_tables(self, job):
        tables = job.assemble(
            [list(job.solve_point(p)) for p in job.points()])
        auditor = TableAuditor(samples=3)
        with metrics_meter() as meter:
            reports = auditor.audit_job(job, tables)
        # 3 sample solves grade BOTH the L and R tables (shared loop_rl)
        assert meter.delta.counter(AUDIT_SOLVE) == 3
        assert set(reports) == {t.name for t in tables}
        for report in reports.values():
            assert report.n_samples == 3
