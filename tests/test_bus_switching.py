"""Switching-pattern delay analysis on extracted buses.

Two regimes, opposite signs:

* capacitive (no mutual L): in-phase neighbours remove the Miller
  charge (faster), anti-phase double it (slower) -- the classic window;
* inductive: in-phase currents share returns, so each line sees L + M
  (slower) while anti-phase sees L - M (faster).

On a tightly coupled bus the two mechanisms partially cancel -- an
effect only a full RLC netlist (the paper's point) can predict.
"""

import pytest

from repro.bus import BusRLCExtractor, switching_delay_analysis
from repro.constants import GHz, um
from repro.errors import CircuitError
from repro.geometry.trace import TraceBlock
from repro.rc.capacitance import CapacitanceModel


@pytest.fixture(scope="module")
def setup():
    block = TraceBlock.from_widths_and_spacings(
        widths=[um(2)] * 5, spacings=[um(1)] * 4, length=um(1500),
        thickness=um(1),
    )
    extractor = BusRLCExtractor(
        frequency=GHz(6.4),
        capacitance_model=CapacitanceModel(height_below=um(2)),
    )
    return extractor, extractor.extract(block)


@pytest.fixture(scope="module")
def rc_result(setup):
    extractor, bus = setup
    return switching_delay_analysis(extractor, bus, victim="T3", sections=2,
                                    include_inductance=False)


@pytest.fixture(scope="module")
def full_result(setup):
    extractor, bus = setup
    return switching_delay_analysis(extractor, bus, victim="T3", sections=2)


class TestCapacitiveRegime:
    def test_all_delays_positive(self, rc_result):
        assert rc_result.quiet_delay > 0
        assert rc_result.in_phase_delay > 0
        assert rc_result.anti_phase_delay > 0

    def test_in_phase_fastest(self, rc_result):
        # classic Miller: neighbours switching along remove the coupling
        # charge entirely
        assert rc_result.in_phase_delay < rc_result.quiet_delay

    def test_anti_phase_slowest(self, rc_result):
        assert rc_result.anti_phase_delay > rc_result.quiet_delay

    def test_window_material_at_tight_pitch(self, rc_result):
        assert rc_result.delay_window > 0.03 * rc_result.quiet_delay

    def test_window_algebra(self, rc_result):
        assert rc_result.delay_window == pytest.approx(
            rc_result.push_out + rc_result.pull_in
        )


class TestInductiveCompensation:
    def test_mutual_inductance_shrinks_the_window(self, setup, rc_result,
                                                  full_result):
        """The inductive switching effect opposes the capacitive one, so
        the full-RLC delay window is much smaller than the RC-only
        prediction -- another way omitting L misleads bus timing."""
        assert abs(full_result.delay_window) < 0.5 * rc_result.delay_window

    def test_cap_only_with_self_l_keeps_classic_signs(self, setup):
        extractor, bus = setup
        result = switching_delay_analysis(
            extractor, bus, victim="T3", sections=2, include_mutual=False,
        )
        assert result.in_phase_delay < result.quiet_delay
        assert result.anti_phase_delay > result.quiet_delay


class TestValidation:
    def test_unknown_victim(self, setup):
        extractor, bus = setup
        with pytest.raises(CircuitError):
            switching_delay_analysis(extractor, bus, victim="T1")  # a shield
