"""Exporter golden files: Prometheus text and canonical JSON."""

import json

from repro.telemetry import (
    HistogramSnapshot,
    MetricsSnapshot,
    prometheus_text,
    snapshot_json,
)


def _sample_snapshot() -> MetricsSnapshot:
    return MetricsSnapshot(
        counters={"loop_solve": 4, "lp_pair_eval": 762},
        gauges={"memo_cache_entries": 1200.0},
        histograms={
            "lookup_latency_seconds": HistogramSnapshot(
                buckets=(1e-06, 0.001, 1.0),
                counts=(2, 1, 0, 1),
                sum=2.5015,
                count=4,
            ),
        },
    )


PROMETHEUS_GOLDEN = """\
# HELP repro_loop_solve Loop R/L extractions solved directly (PEEC)
# TYPE repro_loop_solve counter
repro_loop_solve 4
# HELP repro_lp_pair_eval Partial-inductance pair kernel evaluations
# TYPE repro_lp_pair_eval counter
repro_lp_pair_eval 762
# HELP repro_memo_cache_entries Live entries in the Lp pair memo cache
# TYPE repro_memo_cache_entries gauge
repro_memo_cache_entries 1200
# HELP repro_lookup_latency_seconds Extraction-table lookup latency
# TYPE repro_lookup_latency_seconds histogram
repro_lookup_latency_seconds_bucket{le="1e-06"} 2
repro_lookup_latency_seconds_bucket{le="0.001"} 3
repro_lookup_latency_seconds_bucket{le="1"} 3
repro_lookup_latency_seconds_bucket{le="+Inf"} 4
repro_lookup_latency_seconds_sum 2.5015
repro_lookup_latency_seconds_count 4
"""


class TestPrometheus:
    def test_golden_text(self):
        assert prometheus_text(_sample_snapshot()) == PROMETHEUS_GOLDEN

    def test_empty_snapshot_is_empty_text(self):
        assert prometheus_text(MetricsSnapshot()) == ""

    def test_deterministic(self):
        snap = _sample_snapshot()
        assert prometheus_text(snap) == prometheus_text(snap)

    def test_names_are_sanitized(self):
        snap = MetricsSnapshot(counters={"weird name!": 1, "2fast": 2})
        text = prometheus_text(snap, prefix="")
        assert "weird_name_ 1" in text
        assert "_2fast 2" in text

    def test_unknown_metric_gets_generic_help(self):
        snap = MetricsSnapshot(counters={"bespoke_thing": 1})
        text = prometheus_text(snap)
        assert "# HELP repro_bespoke_thing repro counter metric" in text

    def test_tagged_counter_inherits_base_help(self):
        snap = MetricsSnapshot(counters={"serve_request.extract": 3})
        text = prometheus_text(snap)
        assert ("# HELP repro_serve_request_extract "
                "Requests handled by the extraction service") in text

    def test_every_family_has_help_and_type(self):
        text = prometheus_text(_sample_snapshot())
        assert text.count("# HELP ") == text.count("# TYPE ")


JSON_GOLDEN = {
    "counters": {"loop_solve": 4, "lp_pair_eval": 762},
    "gauges": {"memo_cache_entries": 1200.0},
    "histograms": {
        "lookup_latency_seconds": {
            "buckets": [1e-06, 0.001, 1.0],
            "counts": [2, 1, 0, 1],
            "sum": 2.5015,
            "count": 4,
        },
    },
}


class TestJson:
    def test_golden_json(self):
        assert json.loads(snapshot_json(_sample_snapshot())) == JSON_GOLDEN

    def test_sorted_keys_layout_stable(self):
        a = MetricsSnapshot(counters={"b": 1, "a": 2})
        b = MetricsSnapshot(counters={"a": 2, "b": 1})
        assert snapshot_json(a) == snapshot_json(b)

    def test_roundtrip(self):
        snap = _sample_snapshot()
        restored = MetricsSnapshot.from_dict(json.loads(snapshot_json(snap)))
        assert restored == snap
