"""Structured logging: correlation scopes, ring, sinks, stdlib bridge."""

import io
import json
import logging
import threading

import pytest

from repro.telemetry import (
    LOG_RECORD,
    LogRing,
    bind_correlation,
    configure_logging,
    correlation_ids,
    correlation_scope,
    current_correlation,
    get_log_ring,
    get_logger,
    get_registry,
    get_tracer,
    install_stdlib_bridge,
    new_request_id,
    recent_logs,
    span,
    uninstall_stdlib_bridge,
)
from repro.telemetry.logs import log_to_stream


@pytest.fixture(autouse=True)
def clean_logging_state():
    get_registry().reset()
    get_tracer().reset()
    get_log_ring().clear()
    configure_logging(stream=None, path=None, level="info")
    yield
    uninstall_stdlib_bridge()
    get_log_ring().clear()
    configure_logging(stream=None, path=None, level="info")
    get_registry().reset()
    get_tracer().reset()


class TestCorrelation:
    def test_request_ids_are_greppable_and_unique(self):
        rid = new_request_id()
        assert rid.startswith("req-")
        assert len(rid) == 16
        assert rid != new_request_id()

    def test_scope_sets_and_restores(self):
        assert current_correlation() == ()
        with correlation_scope(request_id="req-1") as ids:
            assert ids == {"request_id": "req-1"}
            assert correlation_ids() == {"request_id": "req-1"}
        assert current_correlation() == ()

    def test_scopes_nest_and_merge(self):
        with correlation_scope(request_id="req-1"):
            with correlation_scope(chunk_id="c7"):
                assert correlation_ids() == {
                    "request_id": "req-1", "chunk_id": "c7",
                }
            assert correlation_ids() == {"request_id": "req-1"}

    def test_inner_scope_can_shadow(self):
        with correlation_scope(request_id="outer"):
            with correlation_scope(request_id="inner"):
                assert correlation_ids() == {"request_id": "inner"}
            assert correlation_ids() == {"request_id": "outer"}

    def test_bind_returns_reset_token(self):
        token = bind_correlation(request_id="req-x")
        assert correlation_ids() == {"request_id": "req-x"}
        from repro.telemetry.logs import _CORRELATION

        _CORRELATION.reset(token)
        assert correlation_ids() == {}

    def test_new_threads_start_unscoped(self):
        """ContextVar isolation: a request's id never leaks to another
        thread -- the property ThreadingHTTPServer relies on."""
        seen = {}

        def worker():
            seen["ids"] = correlation_ids()

        with correlation_scope(request_id="req-main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["ids"] == {}

    def test_correlation_lands_on_spans(self):
        with correlation_scope(request_id="req-9"):
            with span("serve.extract") as sp:
                pass
        assert sp.tags["request_id"] == "req-9"
        # explicit tags win over the ambient correlation
        with correlation_scope(request_id="ambient"):
            with span("x", request_id="explicit") as sp2:
                pass
        assert sp2.tags["request_id"] == "explicit"


class TestEmission:
    def test_records_are_json_lines_with_correlation(self):
        stream = io.StringIO()
        with log_to_stream(stream):
            with correlation_scope(request_id="req-2"):
                get_logger("t").info("hello", answer=42)
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "hello"
        assert record["level"] == "info"
        assert record["logger"] == "t"
        assert record["answer"] == 42
        assert record["request_id"] == "req-2"
        assert record["ts"] > 0

    def test_min_level_filters(self):
        stream = io.StringIO()
        with log_to_stream(stream, level="warning"):
            get_logger("t").debug("quiet")
            get_logger("t").info("quiet")
            get_logger("t").warning("loud")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "loud"

    def test_file_sink_appends_json_lines(self, tmp_path):
        path = tmp_path / "serve.log"
        configure_logging(path=path, level="info")
        get_logger("t").info("one")
        get_logger("t").info("two")
        configure_logging(stream=None, path=None)  # closes the file
        lines = path.read_text().strip().splitlines()
        assert [json.loads(l)["event"] for l in lines] == ["one", "two"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="loud")

    def test_log_record_counters_tick(self):
        get_logger("t").info("a")
        get_logger("t").warning("b")
        snap = get_registry().snapshot()
        assert snap.counter(LOG_RECORD) == 2
        assert snap.counter(f"{LOG_RECORD}.info") == 1
        assert snap.counter(f"{LOG_RECORD}.warning") == 1

    def test_unserializable_fields_fall_back_to_str(self):
        stream = io.StringIO()
        with log_to_stream(stream):
            get_logger("t").info("obj", path=object())
        record = json.loads(stream.getvalue().strip())
        assert "object" in record["path"]


class TestRing:
    def test_ring_keeps_most_recent_and_counts_drops(self):
        ring = LogRing(capacity=3)
        for i in range(5):
            ring.append({"level": "info", "event": f"e{i}"})
        events = [r["event"] for r in ring.records()]
        assert events == ["e2", "e3", "e4"]
        assert ring.dropped == 2

    def test_records_filter_by_level_and_limit(self):
        ring = LogRing(capacity=10)
        ring.append({"level": "info", "event": "a"})
        ring.append({"level": "warning", "event": "b"})
        ring.append({"level": "error", "event": "c"})
        warnings = ring.records(min_level="warning")
        assert [r["event"] for r in warnings] == ["b", "c"]
        assert [r["event"] for r in ring.records(limit=1)] == ["c"]

    def test_global_ring_feeds_recent_logs(self):
        get_logger("t").warning("trouble", detail="x")
        records = recent_logs(min_level="warning")
        assert records[-1]["event"] == "trouble"
        assert records[-1]["detail"] == "x"

    def test_ring_capacity_reconfigurable(self):
        configure_logging(ring_capacity=2)
        for i in range(4):
            get_logger("t").info(f"e{i}")
        assert len(recent_logs()) == 2


class TestStdlibBridge:
    def test_stdlib_records_come_out_structured(self):
        stream = io.StringIO()
        install_stdlib_bridge()
        with log_to_stream(stream):
            with correlation_scope(request_id="req-b"):
                logging.getLogger("third.party").warning(
                    "served %s in %dms", "/extract", 12
                )
        record = json.loads(stream.getvalue().strip())
        assert record["logger"] == "third.party"
        assert record["event"] == "served /extract in 12ms"
        assert record["level"] == "warning"
        assert record["request_id"] == "req-b"

    def test_bridge_is_idempotent_and_uninstalls(self):
        h1 = install_stdlib_bridge()
        h2 = install_stdlib_bridge()
        assert h1 is h2
        root = logging.getLogger("")
        assert root.handlers.count(h1) == 1
        uninstall_stdlib_bridge()
        assert h1 not in root.handlers

    def test_bridge_captures_exception_name(self):
        install_stdlib_bridge()
        try:
            raise KeyError("missing")
        except KeyError:
            logging.getLogger("x").error("boom", exc_info=True)
        record = recent_logs(min_level="error")[-1]
        assert record["exception"] == "KeyError"
