"""Cross-process aggregation: worker snapshots merge into BuildStats.

A pool worker's registry activity never touches the parent's registry
(that separation is what makes the warm-path zero-solve assertions
meaningful), yet parallel builds must still report true totals.  The
bridge is the per-chunk ``ChunkResult`` payload: each chunk ships its
metrics delta and drained span trees back with the values, and the
runner folds them into ``JobStats``/``BuildStats``.
"""

from dataclasses import dataclass
from typing import Tuple

import pytest

from repro.library.jobs import CharacterizationJob, JobOutput
from repro.library.runner import BuildRunner, JobProgress
from repro.library.store import TableLibrary
from repro.telemetry import get_registry

TICK = "stub_worker_tick"


@dataclass(frozen=True)
class TickingJob(CharacterizationJob):
    """A cheap picklable job whose every solve ticks a registry counter.

    The counter lands in whichever process executes ``solve_point`` --
    the parent for serial builds, a pool worker for parallel ones --
    which is exactly the distinction these tests assert on.
    """

    widths: Tuple[float, ...] = (1.0, 2.0, 3.0)
    lengths: Tuple[float, ...] = (10.0, 20.0)
    frequency: float = 1e9
    layer: str = "M1"

    kind = "tick"

    def axis_names(self):
        return ("width", "length")

    def axes(self):
        return (self.widths, self.lengths)

    def outputs(self):
        return (JobOutput("tick_l", "loop_inductance"),)

    def builder_spec(self):
        return {"builder": "tick"}

    def table_metadata(self):
        return {"frequency": self.frequency}

    def solve_point(self, point):
        get_registry().inc(TICK)
        width, length = point
        return (width * length,)


@pytest.fixture(autouse=True)
def clean_registry():
    get_registry().reset()
    yield
    get_registry().reset()


class TestParallelAggregation:
    def test_worker_counters_reach_stats_not_parent_registry(self, tmp_path):
        runner = BuildRunner(tmp_path / "kit", workers=2, chunk_size=2)
        stats = runner.build([TickingJob()])
        assert stats.points_solved == 6
        # the parent process never ran solve_point ...
        assert get_registry().counter_value(TICK) == 0
        # ... but the report-side merge sees all six worker ticks
        assert stats.worker_metrics.counter(TICK) == 6

    def test_chunk_wall_times_and_worker_spans(self, tmp_path):
        runner = BuildRunner(tmp_path / "kit", workers=2, chunk_size=2)
        stats = runner.build([TickingJob()])
        walls = stats.chunk_wall_times
        assert len(walls) == 3  # 6 points / chunk_size 2
        assert all(w >= 0.0 for w in walls)
        names = [s["name"] for s in stats.worker_spans]
        assert names and set(names) == {"library.chunk"}
        assert sum(s["metrics"].get(TICK, 0)
                   for s in stats.worker_spans) == 6

    def test_manifest_carries_telemetry_summary(self, tmp_path):
        job = TickingJob()
        runner = BuildRunner(tmp_path / "kit", workers=2, chunk_size=2)
        runner.build([job])
        lib = TableLibrary(tmp_path / "kit", create=False)
        entry = lib.entry(job.table_key("tick_l"))
        summary = entry.metadata["telemetry"]
        assert summary["points_solved"] == 6
        assert summary["chunks"] == 3
        assert summary["build_seconds"] > 0.0

    def test_serial_build_counts_in_parent(self, tmp_path):
        runner = BuildRunner(tmp_path / "kit", parallel=False)
        stats = runner.build([TickingJob()])
        assert get_registry().counter_value(TICK) == 6
        assert stats.worker_metrics is None  # nothing came from a pool
        assert len(stats.chunk_wall_times) == 6  # per-point in serial mode


class TestProgressThroughput:
    def test_ticks_report_rate_and_eta(self, tmp_path):
        ticks = []
        runner = BuildRunner(tmp_path / "kit", parallel=False,
                             progress=ticks.append)
        runner.build([TickingJob()])
        last = ticks[-1]
        assert last.done == last.total == 6
        assert last.points_per_second > 0.0
        assert last.eta_seconds == 0.0

    def test_eta_math(self):
        tick = JobProgress(job=None, done=4, total=10, resumed=0,
                           elapsed=2.0)
        assert tick.points_per_second == pytest.approx(2.0)
        assert tick.eta_seconds == pytest.approx(3.0)
        stalled = JobProgress(job=None, done=0, total=10, resumed=0,
                              elapsed=0.0)
        assert stalled.points_per_second == 0.0
        assert stalled.eta_seconds == float("inf")
