"""Tier-1 guard: span-enabled kernel assembly costs < 5% over disabled.

Tracing only pays its way if leaving it on is free enough that nobody
ever wants to turn it off.  This pins that claim on the 400-filament
reference assembly from the kernel benchmark: best-of-N wall time with
spans recording vs. with the tracer disabled must stay within 5%.

The spans wired into the assembly path are coarse by design (one span
per assembly, not per pair); this test is what keeps them that way.
"""

import time

from repro.constants import um
from repro.geometry.primitives import Point3D, RectBar
from repro.peec.kernel import (
    assemble_partial_inductance_matrix,
    lp_memo_disabled,
)
from repro.peec.mesh import mesh_bar
from repro.telemetry import get_tracer, spans_disabled

MAX_OVERHEAD = 1.05
ROUNDS = 4
ATTEMPTS = 3


def _reference_mesh():
    parent = RectBar(Point3D(0, 0, 0), um(300), um(8), um(4), "x")
    return list(mesh_bar(parent, n_width=20, n_thickness=20).filaments)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_span_overhead_on_reference_assembly_below_5_percent():
    bars = _reference_mesh()
    assert len(bars) == 400
    assemble = lambda: assemble_partial_inductance_matrix(bars)  # noqa: E731

    # Interleave the two sides round by round so scheduler / thermal
    # drift on a shared CI box lands on both equally; compare best-of.
    # Noise on a loaded single-core runner can still dwarf the real
    # (microsecond-scale) span cost, so the guard retries: a genuine
    # regression fails every attempt, a noise spike doesn't.
    best_ratio = float("inf")
    best = (0.0, 0.0)
    with lp_memo_disabled():
        assemble()  # warm numpy / allocator before timing either side
        for _ in range(ATTEMPTS):
            t_off = t_on = float("inf")
            for _ in range(ROUNDS):
                with spans_disabled():
                    t_off = min(t_off, _timed(assemble))
                t_on = min(t_on, _timed(assemble))
            ratio = t_on / t_off if t_off > 0 else 1.0
            if ratio < best_ratio:
                best_ratio, best = ratio, (t_on, t_off)
            if best_ratio < MAX_OVERHEAD:
                break
    get_tracer().reset()  # don't leak benchmark spans into other tests

    t_on, t_off = best
    assert best_ratio < MAX_OVERHEAD, (
        f"span-enabled assembly {t_on * 1e3:.1f} ms vs disabled "
        f"{t_off * 1e3:.1f} ms -> {best_ratio:.3f}x in the best of "
        f"{ATTEMPTS} attempts (limit {MAX_OVERHEAD}x)"
    )


def test_disabled_spans_record_nothing_during_assembly():
    bars = _reference_mesh()[:40]
    tracer = get_tracer()
    tracer.reset()
    with spans_disabled():
        with lp_memo_disabled():
            assemble_partial_inductance_matrix(bars)
    assert tracer.drain() == []
