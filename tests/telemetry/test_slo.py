"""SLO monitor: window arithmetic, burn-rate status, concurrency."""

import threading

import pytest

from repro.telemetry import (
    MetricsRegistry,
    SLOConfig,
    SLOMonitor,
    WindowStats,
)


class FakeClock:
    """Deterministic injectable clock for window expiry tests."""

    def __init__(self, start: float = 1_000_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def monitor(clock=None, **overrides) -> SLOMonitor:
    return SLOMonitor(SLOConfig(**overrides), clock=clock or FakeClock())


class TestConfig:
    def test_defaults_are_valid(self):
        cfg = SLOConfig()
        assert cfg.windows == (60, 600, 3600)
        assert cfg.page_burn > cfg.warn_burn

    @pytest.mark.parametrize("kwargs", [
        {"availability_target": 0.0},
        {"availability_target": 1.0},
        {"latency_target": 1.5},
        {"latency_threshold": 0.0},
        {"windows": (60, 600)},
        {"windows": (600, 60, 3600)},
        {"windows": (60, 60, 3600)},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOConfig(**kwargs)


class TestWindowStats:
    def test_bad_fraction_and_burn(self):
        stats = WindowStats(window=60, total=100, bad=2)
        assert stats.bad_fraction == pytest.approx(0.02)
        # 2% failures against a 99% target burns budget at 2x pace
        assert stats.burn_rate(0.99) == pytest.approx(2.0)
        assert WindowStats(window=60).bad_fraction == 0.0

    def test_to_dict(self):
        d = WindowStats(window=600, total=10, bad=5).to_dict(target=0.99)
        assert d["window_seconds"] == 600
        assert d["bad_fraction"] == pytest.approx(0.5)
        assert d["burn_rate"] == pytest.approx(50.0)


class TestWindowArithmetic:
    def test_observations_roll_off_each_window(self):
        clock = FakeClock()
        mon = monitor(clock)
        for _ in range(10):
            mon.observe("extract", 0.01, ok=False)
        windows = mon.windows("extract")
        assert [w.total for w in windows["availability"]] == [10, 10, 10]
        assert [w.bad for w in windows["availability"]] == [10, 10, 10]

        clock.advance(61)  # out of the 1m window, still in 10m and 1h
        windows = mon.windows("extract")
        assert [w.total for w in windows["availability"]] == [0, 10, 10]

        clock.advance(600)  # out of 10m too
        windows = mon.windows("extract")
        assert [w.total for w in windows["availability"]] == [0, 0, 10]

        clock.advance(3600)  # everything expired
        windows = mon.windows("extract")
        assert [w.total for w in windows["availability"]] == [0, 0, 0]

    def test_ring_lap_does_not_resurrect_stale_buckets(self):
        """An observation 1h+ later reuses the same ring slot; the old
        second's counts must not leak into the new window sums."""
        clock = FakeClock()
        mon = monitor(clock)
        mon.observe("extract", 0.01, ok=False)
        clock.advance(3600)  # exactly one full lap: same slot index
        mon.observe("extract", 0.01, ok=True)
        windows = mon.windows("extract")
        assert [w.total for w in windows["availability"]] == [1, 1, 1]
        assert [w.bad for w in windows["availability"]] == [0, 0, 0]

    def test_latency_sli_counts_slow_and_rejected(self):
        clock = FakeClock()
        mon = monitor(clock, latency_threshold=0.5)
        mon.observe("extract", 0.1, ok=True)    # fast
        mon.observe("extract", 0.9, ok=True)    # slow
        mon.observe("extract", 0.0, ok=False)   # rejected: slow by fiat
        windows = mon.windows("extract")
        assert windows["latency"][0].total == 3
        assert windows["latency"][0].bad == 2
        assert windows["availability"][0].bad == 1

    def test_unknown_endpoint_is_empty(self):
        mon = monitor()
        assert mon.windows("nope") == {"availability": [], "latency": []}
        status = mon.status("nope")
        assert status["availability"]["status"] == "ok"
        assert status["availability"]["windows"] == []


class TestBurnRateStatus:
    def test_healthy_service_is_ok(self):
        mon = monitor()
        for _ in range(100):
            mon.observe("extract", 0.01, ok=True)
        assert mon.status("extract")["availability"]["status"] == "ok"
        assert mon.overall_status() == "ok"

    def test_total_outage_pages(self):
        mon = monitor()
        for _ in range(50):
            mon.observe("extract", 0.01, ok=False)
        status = mon.status("extract")["availability"]
        assert status["status"] == "page"
        # 100% bad against 99% target = burn 100
        assert status["burn_rate"] == pytest.approx(100.0)
        assert mon.overall_status() == "page"

    def test_ok_to_page_transition_on_fault_injection(self):
        """The acceptance scenario: healthy traffic, then a fault."""
        clock = FakeClock()
        mon = monitor(clock)
        for _ in range(20):
            mon.observe("extract", 0.01, ok=True)
            clock.advance(1)
        assert mon.overall_status() == "ok"
        for _ in range(20):
            mon.observe("extract", 0.01, ok=False)
            clock.advance(1)
        assert mon.overall_status() == "page"

    def test_page_clears_when_short_window_recovers(self):
        clock = FakeClock()
        mon = monitor(clock)
        for _ in range(50):
            mon.observe("extract", 0.01, ok=False)
        assert mon.overall_status() == "page"
        clock.advance(61)  # failures leave the 1m window
        for _ in range(50):
            mon.observe("extract", 0.01, ok=True)
        # mid window still burns, but the page condition needs both
        assert mon.status("extract")["availability"]["status"] != "page"

    def test_sustained_slow_burn_warns_not_pages(self):
        """~8% bad for over 10 minutes: burn 8 against 99% target sits
        between warn (6) and page (14.4)."""
        clock = FakeClock()
        mon = monitor(clock)
        for _ in range(700):
            for _ in range(11):
                mon.observe("extract", 0.01, ok=True)
            mon.observe("extract", 0.01, ok=False)
            clock.advance(1)
        status = mon.status("extract")["availability"]
        assert status["status"] == "warn"

    def test_min_events_guard_suppresses_noise(self):
        """One failed request on a quiet service must not page."""
        mon = monitor(min_events=5)
        mon.observe("extract", 0.01, ok=False)
        assert mon.status("extract")["availability"]["status"] == "ok"

    def test_endpoints_are_independent(self):
        mon = monitor()
        for _ in range(50):
            mon.observe("bad", 0.01, ok=False)
            mon.observe("good", 0.01, ok=True)
        assert mon.status("bad")["availability"]["status"] == "page"
        assert mon.status("good")["availability"]["status"] == "ok"
        assert mon.endpoints() == ["bad", "good"]
        assert mon.overall_status() == "page"


class TestSummaryAndGauges:
    def test_summary_shape(self):
        mon = monitor()
        mon.observe("extract", 0.8, ok=True)
        summary = mon.summary()
        assert summary["status"] in ("ok", "warn", "page")
        assert summary["config"]["windows_seconds"] == [60, 600, 3600]
        ep = summary["endpoints"]["extract"]
        assert ep["lifetime"] == {"total": 1, "bad": 0, "slow": 1}
        assert set(ep["slis"]) == {"availability", "latency"}
        for sli in ep["slis"].values():
            assert len(sli["windows"]) == 3

    def test_export_gauges(self):
        reg = MetricsRegistry()
        mon = monitor()
        for _ in range(50):
            mon.observe("extract", 0.01, ok=False)
        mon.export_gauges(reg)
        gauges = reg.snapshot().gauges
        assert gauges["slo_burn_rate.extract.availability"] == pytest.approx(
            100.0
        )
        assert gauges["slo_status.extract.availability"] == 2  # page
        assert gauges["slo_status"] == 2


class TestConcurrency:
    def test_concurrent_observers_lose_nothing(self):
        """Satellite (c): hammer the single write path from many threads
        and assert the window sums and lifetime totals are exact."""
        clock = FakeClock()
        mon = monitor(clock)
        per_thread = 2000
        threads = 4

        def hammer(tid: int):
            for i in range(per_thread):
                mon.observe("extract", 0.01, ok=(i % 2 == 0))
                mon.observe(f"ep{tid}", 0.9, ok=True)

        workers = [
            threading.Thread(target=hammer, args=(t,)) for t in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        windows = mon.windows("extract")
        total = threads * per_thread
        assert [w.total for w in windows["availability"]] == [total] * 3
        assert [w.bad for w in windows["availability"]] == [total // 2] * 3
        summary = mon.summary()
        assert summary["endpoints"]["extract"]["lifetime"]["total"] == total
        for t in range(threads):
            ep = summary["endpoints"][f"ep{t}"]["lifetime"]
            assert ep == {
                "total": per_thread, "bad": 0, "slow": per_thread,
            }

    def test_readers_race_writers_without_crashing(self):
        clock = FakeClock()
        mon = monitor(clock)
        stop = threading.Event()
        errors = []

        def read_loop():
            try:
                while not stop.is_set():
                    mon.summary()
                    mon.overall_status()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        reader = threading.Thread(target=read_loop)
        reader.start()
        for i in range(5000):
            mon.observe("extract", 0.01, ok=(i % 3 != 0))
        stop.set()
        reader.join()
        assert errors == []
        assert mon.windows("extract")["availability"][0].total == 5000
