"""RunReport: capture sessions, save/load roundtrip, rendering, CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import TelemetryError
from repro.telemetry import (
    HistogramSnapshot,
    MetricsSnapshot,
    RunReport,
    get_registry,
    get_tracer,
    load_report,
    render_report,
    span,
    telemetry_session,
)


@pytest.fixture(autouse=True)
def clean_global_state():
    get_registry().reset()
    get_tracer().reset()
    yield
    get_registry().reset()
    get_tracer().reset()


class TestSession:
    def test_captures_metrics_spans_and_duration(self):
        with telemetry_session("unit-test") as session:
            get_registry().inc("loop_solve", 3)
            with span("inner.work", n=1):
                pass
            session.add_meta(points=4)
        report = session.report
        assert report is not None
        assert report.command == "unit-test"
        assert report.duration > 0.0
        assert report.metrics.counter("loop_solve") == 3
        assert report.meta == {"points": 4}
        # one root (the session span) wrapping the inner span
        assert [s["name"] for s in report.spans] == ["unit-test"]
        assert report.spans[0]["children"][0]["name"] == "inner.work"

    def test_assembles_report_even_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry_session("crashing") as session:
                get_registry().inc("loop_solve")
                raise RuntimeError("boom")
        report = session.report
        assert report is not None
        assert report.metrics.counter("loop_solve") == 1
        assert report.spans[0]["status"] == "error"

    def test_sessions_do_not_crosstalk(self):
        with telemetry_session("first") as s1:
            get_registry().inc("loop_solve", 5)
        with telemetry_session("second") as s2:
            get_registry().inc("loop_solve", 2)
        assert s1.report.metrics.counter("loop_solve") == 5
        assert s2.report.metrics.counter("loop_solve") == 2

    def test_worker_metrics_merge_into_totals(self):
        with telemetry_session("build") as session:
            get_registry().inc("loop_solve", 1)
            session.add_worker_metrics(
                MetricsSnapshot(counters={"loop_solve": 4, "lp_pair_eval": 9})
            )
            session.add_worker_metrics(
                MetricsSnapshot(counters={"loop_solve": 2})
            )
            session.add_worker_spans(
                [{"name": "library.chunk", "duration": 0.5}]
            )
        report = session.report
        totals = report.totals()
        assert report.metrics.counter("loop_solve") == 1
        assert report.worker_metrics.counter("loop_solve") == 6
        assert totals.counter("loop_solve") == 7
        assert totals.counter("lp_pair_eval") == 9
        assert [s["name"] for s in report.spans] == ["build", "library.chunk"]


class TestPersistence:
    def _report(self) -> RunReport:
        return RunReport(
            command="repro test",
            started_at=1700000000.0,
            duration=1.25,
            metrics=MetricsSnapshot(
                counters={"loop_solve": 2},
                histograms={
                    "lookup_latency_seconds": HistogramSnapshot(
                        (1e-3,), (1, 0), 2e-4, 1
                    )
                },
            ),
            worker_metrics=MetricsSnapshot(counters={"lp_pair_eval": 11}),
            spans=[{"name": "root", "duration": 1.2, "status": "ok"}],
            meta={"workers": 2},
        )

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "report.json"
        self._report().save(path)
        loaded = load_report(path)
        assert loaded == self._report()

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "report.json"
        data = self._report().to_dict()
        data["schema_version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(TelemetryError):
            load_report(path)

    def test_unreadable_report_rejected(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        with pytest.raises(TelemetryError):
            load_report(bad)
        listy = tmp_path / "list.json"
        listy.write_text("[1, 2]")
        with pytest.raises(TelemetryError):
            load_report(listy)

    def test_spans_jsonl(self):
        text = self._report().spans_jsonl()
        record = json.loads(text.strip())
        assert record["name"] == "root"
        assert record["depth"] == 0


class TestSchemaMigration:
    """Pre-PR-4 (v1) reports must keep loading and rendering cleanly."""

    def _v1_payload(self) -> dict:
        data = RunReport(
            command="repro fig1",
            started_at=1700000000.0,
            duration=0.5,
            metrics=MetricsSnapshot(counters={"loop_solve": 2}),
            spans=[{"name": "root", "duration": 0.4, "status": "ok"}],
        ).to_dict()
        # rewind to the v1 shape: no coverage / table_health / simulation
        data["schema_version"] = 1
        del data["coverage"]
        del data["table_health"]
        del data["simulation"]
        return data

    def test_v1_report_loads_with_empty_quality_sections(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self._v1_payload()))
        report = load_report(path)
        assert report.coverage == []
        assert report.table_health == []
        assert report.metrics.counter("loop_solve") == 2

    def test_v1_report_renders_without_quality_sections(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self._v1_payload()))
        text = render_report(load_report(path))
        assert "repro fig1" in text
        assert "lookup-domain coverage" not in text
        assert "table health" not in text

    def test_saved_reports_are_v4(self, tmp_path):
        path = tmp_path / "v4.json"
        RunReport(command="x").save(path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == 5
        assert data["coverage"] == []
        assert data["table_health"] == []
        assert data["simulation"] == {}
        assert data["slo"] == {}
        assert data["profile"] == {}

    def test_v3_report_loads_with_empty_observability_sections(
        self, tmp_path
    ):
        data = RunReport(
            command="repro serve",
            simulation={"rc": {"netlist_health": {"clean": True}}},
        ).to_dict()
        # rewind to the v3 shape: no slo / profile sections
        data["schema_version"] = 3
        del data["slo"]
        del data["profile"]
        path = tmp_path / "v3.json"
        path.write_text(json.dumps(data))
        report = load_report(path)
        assert report.slo == {}
        assert report.profile == {}
        assert report.simulation["rc"]["netlist_health"]["clean"] is True

    def test_v2_report_loads_with_empty_simulation(self, tmp_path):
        data = RunReport(
            command="repro skew",
            coverage=[{"table": "t", "lookups": 1}],
        ).to_dict()
        # rewind to the v2 shape: no simulation section
        data["schema_version"] = 2
        del data["simulation"]
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(data))
        report = load_report(path)
        assert report.simulation == {}
        assert report.coverage == [{"table": "t", "lookups": 1}]

    def test_v4_observability_sections_roundtrip(self, tmp_path):
        report = RunReport(
            command="repro serve",
            slo={
                "status": "warn",
                "endpoints": {
                    "extract": {
                        "slis": {
                            "availability": {"status": "warn",
                                             "burn_rate": 7.5,
                                             "target": 0.99,
                                             "windows": []},
                        },
                        "lifetime": {"total": 120, "bad": 3, "slow": 9},
                    },
                },
            },
            profile={"interval_seconds": 0.005, "samples": 321,
                     "distinct_stacks": 17, "timeline_samples": 321,
                     "duration_seconds": 2.0,
                     "hottest": [{"leaf": "repro.peec.hoer_love."
                                          "mutual_inductance_batch",
                                  "count": 200}]},
        )
        path = tmp_path / "r.json"
        report.save(path)
        loaded = load_report(path)
        assert loaded.slo == report.slo
        assert loaded.profile == report.profile
        text = render_report(loaded)
        assert "slo status: warn" in text
        assert "extract: availability=warn (burn 7.5)" in text
        assert "profile: 321 samples" in text
        assert "mutual_inductance_batch" in text

    def test_v3_simulation_section_roundtrips(self, tmp_path):
        report = RunReport(
            command="repro skew",
            simulation={"rlc": {
                "diagnostics": {"method": "trapezoidal", "steps": 100,
                                "dt": 5e-13, "lte_p95": 1e-6,
                                "energy_residual": 1e-9,
                                "dt_adequate": True},
                "netlist_health": {"name": "clocktree_rlc", "clean": True,
                                   "num_errors": 0, "num_warnings": 0},
            }},
        )
        path = tmp_path / "r.json"
        report.save(path)
        loaded = load_report(path)
        assert loaded.simulation == report.simulation
        text = render_report(loaded)
        assert "simulation (1 netlist(s))" in text
        assert "LTE p95=1.000e-06" in text
        assert "netlist health [clocktree_rlc]: clean" in text

    def test_v2_quality_sections_roundtrip(self, tmp_path):
        report = RunReport(
            command="x",
            coverage=[{"table": "loop_inductance", "lookups": 3,
                       "interior": 2, "edge": 0, "extrapolated": 1,
                       "extrapolation_fraction": 1 / 3,
                       "axis_names": ["width"], "axes": [],
                       "hot_spots": {"width=3e-05": 1},
                       "hot_spot_overflow": 0}],
            table_health=[{"schema_version": 1,
                           "table_name": "loop_inductance"}],
        )
        path = tmp_path / "r.json"
        report.save(path)
        loaded = load_report(path)
        assert loaded.coverage == report.coverage
        assert loaded.table_health == report.table_health


class TestRendering:
    def test_render_contains_spans_and_metrics(self):
        report = RunReport(
            command="repro skew",
            started_at=1700000000.0,
            duration=2.0,
            metrics=MetricsSnapshot(counters={
                "loop_solve": 3, "lp_memo_hit": 3, "lp_memo_miss": 1,
                "lp_pair_eval": 10, "lp_pair_total": 40,
            }),
            worker_metrics=MetricsSnapshot(counters={"loop_solve": 5}),
            spans=[{
                "name": "repro skew", "duration": 2.0, "status": "ok",
                "children": [{
                    "name": "htree.build_netlist", "duration": 1.0,
                    "status": "error", "error": "ValueError: x",
                    "tags": {"segments": 7},
                }],
            }],
            meta={"library_root": "/tmp/lib"},
        )
        text = render_report(report)
        assert "repro skew" in text
        assert "htree.build_netlist" in text
        assert "segments=7" in text
        assert "status=error" in text
        assert "library_root: /tmp/lib" in text
        # totals include workers; parent/worker split is shown
        assert "(parent 3, workers 5)" in text
        assert "memo_hit_rate" in text
        assert "75.0%" in text
        assert "dedup_factor" in text
        assert "4.00x" in text

    def test_render_truncates_span_tree(self):
        spans = [{"name": f"s{i}", "duration": 0.0, "status": "ok"}
                 for i in range(10)]
        report = RunReport(command="x", spans=spans)
        text = render_report(report, max_spans=4)
        assert "... 6 more span(s)" in text


class TestCli:
    def test_telemetry_flag_writes_report_and_report_renders(
        self, tmp_path, capsys
    ):
        out = tmp_path / "fig1.json"
        assert main(["fig1", "--telemetry", str(out)]) == 0
        assert out.exists()
        report = load_report(out)
        assert report.command == "repro fig1"
        assert report.meta.get("exit_code") == 0
        assert report.metrics.counter("loop_solve") > 0
        capsys.readouterr()

        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "telemetry report: repro fig1" in text
        assert "loop_solve" in text

    def test_report_spans_jsonl_mode(self, tmp_path, capsys):
        out = tmp_path / "fig1.json"
        assert main(["fig1", "--telemetry", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", str(out), "--spans-jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "repro fig1"
        assert any(r["depth"] > 0 for r in records)
