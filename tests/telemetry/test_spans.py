"""Tracer: nesting, exception safety, retention bound, JSONL dumps."""

import json
import threading

import pytest

from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    get_tracer,
    span,
    spans_disabled,
    spans_enabled,
    spans_to_jsonl,
)


@pytest.fixture
def tracer():
    return Tracer(registry=MetricsRegistry())


class TestNesting:
    def test_children_attach_to_parent(self, tracer):
        with tracer.span("outer", level=1):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        roots = tracer.drain()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner_a", "inner_b"]
        assert roots[0].tags == {"level": 1}
        assert roots[0].duration >= sum(
            c.duration for c in roots[0].children
        ) * 0.5  # sanity: parent wall covers children

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_counter_deltas_recorded_per_span(self, tracer):
        registry = tracer.registry
        with tracer.span("outer"):
            registry.inc("work", 2)
            with tracer.span("inner"):
                registry.inc("work", 3)
        root = tracer.drain()[0]
        assert root.metrics == {"work": 5}
        assert root.children[0].metrics == {"work": 3}

    def test_threads_produce_separate_roots(self, tracer):
        def worker(name):
            with tracer.span(name):
                pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.name for r in tracer.drain()) == ["t0", "t1", "t2"]


class TestExceptionSafety:
    def test_raising_block_closes_span_and_reraises(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        roots = tracer.drain()
        assert len(roots) == 1
        outer = roots[0]
        inner = outer.children[0]
        assert outer.status == "error" and inner.status == "error"
        assert "boom" in inner.error
        assert tracer.current is None  # stack fully restored

    def test_spans_after_exception_are_clean(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("x")
        with tracer.span("good"):
            pass
        names = [r.name for r in tracer.drain()]
        assert names == ["bad", "good"]


class TestEnablement:
    def test_disabled_tracer_records_nothing(self, tracer):
        tracer.enabled = False
        with tracer.span("invisible") as sp:
            assert sp is None
        assert tracer.drain() == []

    def test_global_spans_disabled_context(self):
        assert spans_enabled()
        with spans_disabled():
            assert not spans_enabled()
            with span("invisible"):
                pass
        assert spans_enabled()
        assert all(
            r.name != "invisible" for r in get_tracer().drain()
        )


class TestRetention:
    def test_root_retention_is_bounded(self):
        tracer = Tracer(registry=MetricsRegistry(), max_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.roots] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2
        tracer.reset()
        assert tracer.roots == [] and tracer.dropped == 0

    def test_clear_stack_drops_inherited_open_spans(self, tracer):
        # Simulate a fork taken inside an open span: the child starts
        # with a non-empty stack it can never close.
        tracer._stack().append(object.__new__(type("Fake", (), {})))
        tracer.clear_stack()
        with tracer.span("fresh"):
            pass
        assert [r.name for r in tracer.drain()] == ["fresh"]


class TestSerialization:
    def test_to_dict_shape(self, tracer):
        with tracer.span("outer", n=2):
            with tracer.span("inner"):
                pass
        data = tracer.drain()[0].to_dict()
        assert data["name"] == "outer"
        assert data["status"] == "ok"
        assert data["tags"] == {"n": 2}
        assert [c["name"] for c in data["children"]] == ["inner"]

    def test_spans_to_jsonl_flattens_with_ids(self, tracer):
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
        text = spans_to_jsonl([r.to_dict() for r in tracer.drain()])
        records = [json.loads(line) for line in text.strip().splitlines()]
        assert [r["name"] for r in records] == ["outer", "mid", "leaf"]
        assert [r["depth"] for r in records] == [0, 1, 2]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["id"]
        assert records[2]["parent"] == records[1]["id"]
        assert all("children" not in r for r in records)

    def test_empty_jsonl(self):
        assert spans_to_jsonl([]) == ""
