"""Sampling profiler: collapsed stacks, timeline, Perfetto merge."""

import threading
import time

import pytest

from repro.constants import um
from repro.geometry.primitives import Point3D, RectBar
from repro.peec.hoer_love import bar_self_inductance
from repro.telemetry import (
    PROFILER_SAMPLE,
    SamplingProfiler,
    chrome_trace,
    get_registry,
    get_tracer,
    profiling,
)
from repro.telemetry.profiler import MAX_STACK_DEPTH, _frame_stack


@pytest.fixture(autouse=True)
def clean_state():
    get_registry().reset()
    get_tracer().reset()
    yield
    get_registry().reset()
    get_tracer().reset()


def kernel_burner(stop: threading.Event) -> None:
    """Loop a real extraction kernel so samples name a kernel frame."""
    bar = RectBar(Point3D(0.0, 0.0, 0.0), 1e-3, um(1), um(1), "x")
    while not stop.is_set():
        bar_self_inductance(bar)


def profile_kernel(seconds: float = 0.3) -> SamplingProfiler:
    stop = threading.Event()
    burner = threading.Thread(target=kernel_burner, args=(stop,))
    burner.start()
    try:
        with profiling(interval=0.002) as prof:
            time.sleep(seconds)
    finally:
        stop.set()
        burner.join()
    return prof


class TestFrameStack:
    def test_labels_are_module_dot_function(self):
        import sys

        frame = sys._getframe()
        stack = _frame_stack(frame)
        assert stack[-1].endswith(".test_labels_are_module_dot_function")
        assert all("." in label for label in stack)

    def test_depth_is_bounded(self):
        def recurse(n):
            if n == 0:
                import sys

                return _frame_stack(sys._getframe())
            return recurse(n - 1)

        stack = recurse(MAX_STACK_DEPTH + 40)
        assert len(stack) == MAX_STACK_DEPTH
        # innermost frames are the ones kept
        assert stack[-1].endswith(".recurse")


class TestSampling:
    def test_collapsed_stacks_name_the_kernel(self):
        """Acceptance: non-empty collapsed output whose hottest stacks
        include a real solver frame."""
        prof = profile_kernel()
        assert prof.samples > 0
        collapsed = prof.collapsed()
        assert collapsed.strip()
        for line in collapsed.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack or "." in stack
        assert "repro.peec.hoer_love" in collapsed

    def test_summary_and_counters(self):
        prof = profile_kernel()
        summary = prof.summary()
        assert summary["samples"] == prof.samples > 0
        assert summary["distinct_stacks"] >= 1
        assert summary["timeline_samples"] >= summary["distinct_stacks"]
        assert summary["duration_seconds"] > 0
        assert summary["interval_seconds"] == 0.002
        leaves = [h["leaf"] for h in summary["hottest"]]
        assert any("hoer_love" in leaf for leaf in leaves)
        assert get_registry().counter_value(PROFILER_SAMPLE) >= prof.samples

    def test_profiler_excludes_itself(self):
        prof = profile_kernel(seconds=0.1)
        assert all(
            "profiler._run" not in ";".join(stack) for stack in prof.stacks
        )

    def test_write_collapsed(self, tmp_path):
        prof = profile_kernel(seconds=0.1)
        out = tmp_path / "profile.collapsed"
        prof.write_collapsed(str(out))
        assert out.read_text() == prof.collapsed()

    def test_min_count_filters(self):
        prof = SamplingProfiler()
        prof.stacks[("a.f", "b.g")] = 5
        prof.stacks[("a.f", "c.h")] = 1
        assert "c.h" in prof.collapsed(min_count=1)
        assert "c.h" not in prof.collapsed(min_count=2)
        assert prof.collapsed(min_count=10) == ""


class TestLifecycle:
    def test_double_start_rejected(self):
        prof = SamplingProfiler(interval=0.05)
        prof.start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()
        assert not prof.running

    def test_stop_is_idempotent(self):
        prof = SamplingProfiler(interval=0.05)
        prof.start()
        prof.stop()
        prof.stop()
        assert not prof.running

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_timeline_is_bounded(self):
        prof = SamplingProfiler()
        prof.MAX_TIMELINE = 3
        # simulate the sampler appending past the bound
        for i in range(10):
            stack = (f"m.f{i}",)
            prof.stacks[stack] += 1
            if len(prof.timeline) < prof.MAX_TIMELINE:
                prof._stack_ids[stack] = len(prof._stacks_by_id)
                prof._stacks_by_id.append(stack)
                prof.timeline.append((float(i), prof._stack_ids[stack]))
        assert len(prof.timeline) == 3
        assert sum(prof.stacks.values()) == 10  # aggregation continues


class TestPerfettoMerge:
    def test_timeline_events_resolve_stacks(self):
        prof = profile_kernel(seconds=0.1)
        events = prof.timeline_events()
        assert len(events) == prof.summary()["timeline_samples"]
        for event in events:
            assert event["ts"] > 0
            assert isinstance(event["stack"], tuple)

    def test_chrome_trace_gains_profiler_lane(self):
        tracer = get_tracer()
        with tracer.span("serve.extract"):
            prof = profile_kernel(seconds=0.1)
        spans = [root.to_dict() for root in tracer.drain()]
        trace = chrome_trace(spans, profile=prof.timeline_events())
        instants = [e for e in trace["traceEvents"]
                    if e.get("cat") == "profiler"]
        assert instants
        assert all(e["ph"] == "i" for e in instants)
        assert any("hoer_love" in e["args"]["stack"] for e in instants)
        lanes = [e for e in trace["traceEvents"]
                 if e.get("name") == "thread_name"]
        assert any(
            e["args"]["name"] == "profiler samples" for e in lanes
        )
