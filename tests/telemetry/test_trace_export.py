"""Chrome trace-event export of span trees (PR 5)."""

import json

from repro.telemetry import (
    RunReport,
    Tracer,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)


def _spans():
    """A two-root span forest captured through a real tracer."""
    tracer = Tracer(enabled=True)
    with tracer.span("repro skew", sinks=4):
        with tracer.span("htree.build_netlist", segments=6):
            pass
        with tracer.span("circuit.transient", steps=100):
            with tracer.span("circuit.diagnostics"):
                pass
    with tracer.span("worker chunk"):
        pass
    return [sp.to_dict() for sp in tracer.drain()]


def _complete_events(events):
    return [e for e in events if e.get("ph") == "X"]


class TestChromeTraceEvents:
    def test_every_span_becomes_a_complete_event(self):
        events = chrome_trace_events(_spans())
        xs = _complete_events(events)
        assert [e["name"] for e in xs] == [
            "repro skew", "htree.build_netlist", "circuit.transient",
            "circuit.diagnostics", "worker chunk",
        ]
        for e in xs:
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
            assert isinstance(e["pid"], int)

    def test_children_nest_within_parents(self):
        events = _complete_events(chrome_trace_events(_spans()))
        by_name = {e["name"]: e for e in events}
        parent = by_name["repro skew"]
        for child_name in ("htree.build_netlist", "circuit.transient"):
            child = by_name[child_name]
            assert child["ts"] >= parent["ts"]
            assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]
        grand = by_name["circuit.diagnostics"]
        mid = by_name["circuit.transient"]
        assert grand["ts"] >= mid["ts"]
        assert grand["ts"] + grand["dur"] <= mid["ts"] + mid["dur"]

    def test_clock_skew_is_clamped(self):
        # A child whose epoch start pokes past the parent's end (mixed
        # epoch/monotonic clocks) must be clamped into the parent.
        spans = [{
            "name": "parent", "started_at": 100.0, "duration": 0.001,
            "status": "ok",
            "children": [{
                "name": "child", "started_at": 100.0025, "duration": 0.002,
                "status": "ok",
            }],
        }]
        events = _complete_events(chrome_trace_events(spans))
        parent, child = events
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_roots_get_distinct_lanes(self):
        events = _complete_events(chrome_trace_events(_spans()))
        by_name = {e["name"]: e for e in events}
        assert by_name["repro skew"]["tid"] != by_name["worker chunk"]["tid"]
        # children share the parent's lane
        assert (by_name["circuit.transient"]["tid"]
                == by_name["repro skew"]["tid"])

    def test_tags_counters_and_errors_ride_in_args(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("boom", size=3):
                raise ValueError("exploded")
        except ValueError:
            pass
        events = _complete_events(
            chrome_trace_events([sp.to_dict() for sp in tracer.drain()])
        )
        args = events[0]["args"]
        assert args["size"] == 3
        assert args["status"] == "error"
        assert "exploded" in args["error"]

    def test_metadata_events_name_process_and_lanes(self):
        events = chrome_trace_events(_spans(), process_name="repro skew")
        metas = [e for e in events if e["ph"] == "M"]
        assert metas[0]["name"] == "process_name"
        assert metas[0]["args"]["name"] == "repro skew"
        assert any(e["name"] == "thread_name" for e in metas)

    def test_empty_spans(self):
        events = chrome_trace_events([])
        assert all(e["ph"] == "M" for e in events)


class TestTraceFile:
    def test_report_source_carries_command(self):
        report = RunReport(command="repro skew", duration=1.5,
                           spans=_spans())
        trace = chrome_trace(report)
        assert trace["otherData"]["command"] == "repro skew"
        assert trace["displayTimeUnit"] == "ms"
        assert any(e["name"] == "circuit.transient"
                   for e in trace["traceEvents"])

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        report = RunReport(command="repro skew", spans=_spans())
        path = write_chrome_trace(report, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert len(data["traceEvents"]) >= len(_complete_events(
            data["traceEvents"]))

    def test_plain_span_list_source(self, tmp_path):
        path = write_chrome_trace(_spans(), tmp_path / "t.json",
                                  process_name="adhoc")
        data = json.loads(path.read_text())
        meta = data["traceEvents"][0]
        assert meta["args"]["name"] == "adhoc"
        assert "otherData" not in data
