"""Warm-library zero-solve acceptance, asserted through the registry.

The legacy ``instrumentation.solver_call_meter`` version of this claim
lives in ``tests/library/test_integration.py``; this one goes straight
at the ``repro.telemetry`` registry the shim now delegates to, so the
guarantee survives even if the shim is ever removed.
"""

import pytest

from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.constants import um
from repro.core.extraction import TableBasedExtractor
from repro.core.frequency import significant_frequency
from repro.experiments.htree_skew import default_htree
from repro.library import build_library, standard_clocktree_jobs
from repro.telemetry import (
    FIELD_SOLVE_2D,
    LOOP_SOLVE,
    PARTIAL_SOLVE,
    get_registry,
    metrics_meter,
)


@pytest.fixture(scope="module")
def warm_library(tmp_path_factory):
    """The smallest library that still covers the default H-tree."""
    root = tmp_path_factory.mktemp("kit")
    htree = default_htree()
    frequency = significant_frequency(htree.buffer.rise_time)
    jobs = standard_clocktree_jobs(
        htree.config, frequency=frequency,
        widths=[um(6), um(14)], lengths=[um(400), um(5200)],
        spacings=[um(0.5), um(2)],
        capacitance_grid=(40, 30),
    )
    build_library(root, jobs, parallel=False)
    return root, htree, frequency


class TestWarmPathViaRegistry:
    def test_zero_loop_and_field_solves(self, warm_library):
        root, htree, frequency = warm_library
        extractor = ClocktreeRLCExtractor(
            htree.config, frequency=frequency, library=root)
        assert extractor.inductance_table is not None
        with metrics_meter(get_registry()) as meter:
            for segment in htree.segments:
                rlc = extractor.segment_rlc_for(segment)
                assert rlc.inductance > 0.0
            extractor.build_netlist(htree)
        for counter in (LOOP_SOLVE, PARTIAL_SOLVE, FIELD_SOLVE_2D):
            assert meter.counts.get(counter, 0) == 0, (
                f"warm extraction ran {counter}: {meter.counts}"
            )

    def test_warm_lookups_observe_latency(self, warm_library):
        root, htree, frequency = warm_library
        tbe = TableBasedExtractor.from_library(root, htree.config, frequency)
        with metrics_meter(get_registry()) as meter:
            assert tbe.loop_inductance(um(10), um(2000)) > 0.0
            assert tbe.loop_resistance(um(10), um(2000)) > 0.0
        hist = meter.delta.histogram("lookup_latency_seconds")
        assert hist is not None and hist.count == 2
        assert meter.counts.get(LOOP_SOLVE, 0) == 0

    def test_cold_path_still_counts(self, warm_library):
        _, htree, frequency = warm_library
        cold = ClocktreeRLCExtractor(htree.config, frequency=frequency)
        with metrics_meter(get_registry()) as meter:
            cold.segment_rlc(um(2000))
        assert meter.counts.get(LOOP_SOLVE, 0) >= 1
