"""MetricsRegistry: counters, gauges, histograms, snapshot algebra."""

import pickle
import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    LP_MEMO_HIT,
    LP_MEMO_MISS,
    LP_PAIR_EVAL,
    LP_PAIR_TOTAL,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    metrics_meter,
)


class TestCounters:
    def test_inc_and_read(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 2)
        assert reg.counter_value("a") == 5
        assert reg.counter_value("b") == 2
        assert reg.counter_value() == 7
        assert reg.counter_value("never") == 0

    def test_counters_snapshot_is_copy(self):
        reg = MetricsRegistry()
        reg.inc("a")
        snap = reg.counters_snapshot()
        snap["a"] = 99
        assert reg.counter_value("a") == 1

    def test_reset_zeroes_everything(self):
        reg = MetricsRegistry()
        reg.inc("a", 3)
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.5)
        reg.reset()
        snap = reg.snapshot()
        assert snap.counters == {}
        assert snap.gauges == {}
        assert snap.histograms == {}


class TestKindConflicts:
    def test_counter_name_cannot_become_gauge(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(TelemetryError):
            reg.set_gauge("x", 1.0)

    def test_gauge_name_cannot_become_histogram(self):
        reg = MetricsRegistry()
        reg.set_gauge("y", 2.0)
        with pytest.raises(TelemetryError):
            reg.observe("y", 0.1)

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.1, buckets=(1.0, 2.0))
        with pytest.raises(TelemetryError):
            reg.observe("h", 0.1, buckets=(1.0, 3.0))

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.observe("h", 0.1, buckets=())
        with pytest.raises(TelemetryError):
            reg.observe("h2", 0.1, buckets=(2.0, 1.0))


class TestHistogramBuckets:
    def test_bucket_edges_are_le_inclusive(self):
        """A value equal to a bound lands in that bound's bucket."""
        reg = MetricsRegistry()
        bounds = (1.0, 10.0, 100.0)
        for value in (0.5, 1.0, 1.0001, 10.0, 100.0, 100.0001):
            reg.observe("h", value, buckets=bounds)
        hist = reg.snapshot().histogram("h")
        # <=1: {0.5, 1.0}; <=10: {1.0001, 10.0}; <=100: {100.0}; +Inf: {100.0001}
        assert hist.counts == (2, 2, 1, 1)
        assert hist.count == 6
        assert hist.sum == pytest.approx(0.5 + 1.0 + 1.0001 + 10.0 + 100.0
                                         + 100.0001)

    def test_default_buckets(self):
        reg = MetricsRegistry()
        reg.observe("h", 3e-4)
        hist = reg.snapshot().histogram("h")
        assert hist.buckets == DEFAULT_TIME_BUCKETS
        assert hist.counts[DEFAULT_TIME_BUCKETS.index(1e-3)] == 1

    def test_mean_and_quantile(self):
        reg = MetricsRegistry()
        for v in (0.5, 0.5, 5.0, 50.0):
            reg.observe("h", v, buckets=(1.0, 10.0, 100.0))
        hist = reg.snapshot().histogram("h")
        assert hist.mean == pytest.approx(14.0)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 100.0
        empty = HistogramSnapshot(buckets=(1.0,), counts=(0, 0), sum=0.0,
                                  count=0)
        assert empty.quantile(0.5) == 0.0
        with pytest.raises(TelemetryError):
            hist.quantile(1.5)


class TestQuantileEdgeCases:
    """PR-8 hardening: quantile() on degenerate histograms."""

    def test_empty_histogram_is_zero_everywhere(self):
        empty = HistogramSnapshot(buckets=(1.0, 2.0), counts=(0, 0, 0),
                                  sum=0.0, count=0)
        assert empty.quantile(0.0) == 0.0
        assert empty.quantile(0.5) == 0.0
        assert empty.quantile(1.0) == 0.0

    def test_single_bucket_histogram(self):
        hist = HistogramSnapshot(buckets=(1.0,), counts=(3, 0), sum=1.5,
                                 count=3)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 1.0

    def test_q_zero_skips_empty_leading_buckets(self):
        """q=0 lands on the first bucket that actually holds mass."""
        hist = HistogramSnapshot(buckets=(1.0, 10.0, 100.0),
                                 counts=(0, 4, 0, 0), sum=20.0, count=4)
        assert hist.quantile(0.0) == 10.0
        assert hist.quantile(1.0) == 10.0

    def test_all_overflow_returns_last_finite_bound(self):
        """Every observation above the largest bound: the +Inf bucket
        holds all the mass, and the best finite answer is the last
        bound (a known lower bound on the true quantile)."""
        reg = MetricsRegistry()
        for _ in range(5):
            reg.observe("h", 1e6, buckets=(1.0, 10.0))
        hist = reg.snapshot().histogram("h")
        assert hist.counts == (0, 0, 5)
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(1.0) == 10.0

    def test_quantile_out_of_range_rejected(self):
        hist = HistogramSnapshot(buckets=(1.0,), counts=(1, 0), sum=0.5,
                                 count=1)
        with pytest.raises(TelemetryError):
            hist.quantile(-0.1)
        with pytest.raises(TelemetryError):
            hist.quantile(1.5)


class TestSnapshotAlgebra:
    def test_minus_gives_deltas(self):
        reg = MetricsRegistry()
        reg.inc("a", 5)
        reg.observe("h", 0.5, buckets=(1.0,))
        before = reg.snapshot()
        reg.inc("a", 2)
        reg.inc("b", 1)
        reg.observe("h", 2.0, buckets=(1.0,))
        delta = reg.snapshot().minus(before)
        assert delta.counters == {"a": 2, "b": 1}
        assert delta.histogram("h").count == 1
        assert delta.histogram("h").counts == (0, 1)

    def test_merged_sums_across_processes(self):
        a = MetricsSnapshot(
            counters={"x": 1},
            histograms={"h": HistogramSnapshot((1.0,), (1, 0), 0.5, 1)},
        )
        b = MetricsSnapshot(
            counters={"x": 2, "y": 7},
            histograms={"h": HistogramSnapshot((1.0,), (0, 1), 2.0, 1)},
        )
        merged = a.merged(b)
        assert merged.counters == {"x": 3, "y": 7}
        assert merged.histogram("h").counts == (1, 1)
        assert merged.histogram("h").sum == pytest.approx(2.5)

    def test_mismatched_histogram_buckets_refuse_algebra(self):
        h1 = HistogramSnapshot((1.0,), (1, 0), 0.5, 1)
        h2 = HistogramSnapshot((2.0,), (1, 0), 0.5, 1)
        with pytest.raises(TelemetryError):
            h1.minus(h2)
        with pytest.raises(TelemetryError):
            h1.merged(h2)

    def test_roundtrip_dict_and_pickle(self):
        reg = MetricsRegistry()
        reg.inc("a", 3)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 0.01)
        snap = reg.snapshot()
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestDerivedRates:
    def test_memo_hit_rate_from_single_snapshot(self):
        reg = MetricsRegistry()
        assert reg.snapshot().memo_hit_rate == 0.0
        reg.inc(LP_MEMO_HIT, 3)
        reg.inc(LP_MEMO_MISS, 1)
        assert reg.snapshot().memo_hit_rate == pytest.approx(0.75)

    def test_dedup_factor(self):
        reg = MetricsRegistry()
        assert reg.snapshot().dedup_factor == 1.0
        reg.inc(LP_PAIR_TOTAL, 100)
        reg.inc(LP_PAIR_EVAL, 25)
        assert reg.snapshot().dedup_factor == pytest.approx(4.0)

    def test_concurrent_increments_are_not_lost(self):
        reg = MetricsRegistry()

        def hammer():
            for _ in range(2000):
                reg.inc(LP_MEMO_HIT)
                reg.inc(LP_MEMO_MISS)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap.counter(LP_MEMO_HIT) == 8000
        assert snap.counter(LP_MEMO_MISS) == 8000
        assert snap.memo_hit_rate == pytest.approx(0.5)


class TestMeter:
    def test_meter_measures_only_inside_block(self):
        reg = MetricsRegistry()
        reg.inc("a", 10)
        with metrics_meter(reg) as meter:
            reg.inc("a", 2)
            reg.observe("h", 0.2, buckets=(1.0,))
        reg.inc("a", 100)
        assert meter.counts == {"a": 2}
        assert meter.total == 2
        assert meter.delta.histogram("h").count == 1

    def test_meters_nest(self):
        reg = MetricsRegistry()
        with metrics_meter(reg) as outer:
            reg.inc("a")
            with metrics_meter(reg) as inner:
                reg.inc("a")
        assert inner.counts == {"a": 1}
        assert outer.counts == {"a": 2}
