"""Sweep campaigns: spec, runner, campaign records, observability."""

import json
import multiprocessing
import random

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    CampaignReport,
    MonteCarloAxis,
    RunLedger,
    Scenario,
    SweepSpec,
    diff_campaigns,
    get_scenario,
    register,
    render_campaign,
    render_campaign_entries,
    run_sweep,
    unregister,
)
from repro.telemetry.registry import get_registry

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"


def _toy_run(params, session):
    """Module-level (picklable) toy scenario body."""
    get_registry().inc("loop_solve")
    if params["EXPLODE"]:
        raise RuntimeError("injected point failure")
    return {
        "delay_seconds": params["X"] * 2.0 + params["N"],
        "count": params["N"],
    }


@pytest.fixture
def toy_scenario():
    scenario = Scenario(
        name="test-sweep-toy",
        figure="test",
        description="toy sweep scenario",
        defaults={"X": 1.0, "N": 3, "EXPLODE": False, "SIGMA": 0.5},
        run=_toy_run,
    )
    register(scenario)
    try:
        yield scenario
    finally:
        unregister("test-sweep-toy")


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(tmp_path / "runs")


# ----------------------------------------------------------------------
# spec: axes, points, identity
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_grid_cartesian_product_in_stable_order(self):
        spec = SweepSpec("s", grid={"X": [1.0, 2.0], "N": [3, 4]})
        points = spec.points()
        # Axes iterate sorted by name: N is the outer loop.
        assert points == [
            {"N": 3, "X": 1.0}, {"N": 3, "X": 2.0},
            {"N": 4, "X": 1.0}, {"N": 4, "X": 2.0},
        ]

    def test_base_and_explicit_points_compose(self):
        spec = SweepSpec("s", explicit=[{"X": 1.0}, {"X": 9.0}],
                         grid={"N": [3, 4]}, base={"SIGMA": 0.25})
        points = spec.points()
        assert len(points) == 4
        assert all(p["SIGMA"] == 0.25 for p in points)
        assert {p["X"] for p in points} == {1.0, 9.0}

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ScenarioError, match="no values"):
            SweepSpec("s", grid={"X": []})

    def test_grid_mc_overlap_rejected(self):
        with pytest.raises(ScenarioError, match="both grid"):
            SweepSpec("s", grid={"X": [1.0]},
                      mc={"X": MonteCarloAxis("normal", 1.0, 0.1)})

    def test_mc_draws_are_seed_deterministic(self):
        axis = MonteCarloAxis("normal", 1.0, 0.1)
        a = SweepSpec("s", mc={"SIGMA": axis}, samples=5, seed=7).points()
        b = SweepSpec("s", mc={"SIGMA": axis}, samples=5, seed=7).points()
        c = SweepSpec("s", mc={"SIGMA": axis}, samples=5, seed=8).points()
        assert a == b
        assert a != c
        assert len({p["SIGMA"] for p in a}) == 5

    def test_mc_samples_multiply_grid_points(self):
        spec = SweepSpec("s", grid={"X": [1.0, 2.0]},
                         mc={"SIGMA": MonteCarloAxis("uniform", 0.0, 1.0)},
                         samples=3, seed=1)
        points = spec.points()
        assert len(points) == 6
        # Sample s draws the same value at every grid point -- the MC
        # stream depends only on (seed, sample index).
        sigmas = sorted({p["SIGMA"] for p in points})
        assert len(sigmas) == 3

    def test_samples_ignored_without_mc_axes(self):
        spec = SweepSpec("s", grid={"X": [1.0]}, samples=10)
        assert len(spec.points()) == 1

    def test_resolved_makes_sweep_id_spelling_independent(self, toy_scenario):
        scenario = get_scenario("test-sweep-toy")
        a = SweepSpec("test-sweep-toy",
                      grid={"X": ["4e-3", 2.0], "N": ["3", 4]})
        b = SweepSpec("test-sweep-toy",
                      grid={"X": [0.004, "2.0"], "N": [3, "4"]})
        assert a.resolved(scenario).sweep_id == b.resolved(scenario).sweep_id

    def test_resolved_rejects_unknown_and_non_float_mc(self, toy_scenario):
        scenario = get_scenario("test-sweep-toy")
        with pytest.raises(ScenarioError, match="no parameter"):
            SweepSpec("test-sweep-toy",
                      grid={"BOGUS": [1]}).resolved(scenario)
        with pytest.raises(ScenarioError, match="float"):
            SweepSpec("test-sweep-toy",
                      mc={"N": MonteCarloAxis("normal", 3.0, 1.0)}
                      ).resolved(scenario)

    def test_varying_params(self):
        spec = SweepSpec("s", grid={"X": [1.0, 2.0]},
                         mc={"SIGMA": MonteCarloAxis("normal", 0.5, 0.1)},
                         explicit=[{"N": 3, "EXPLODE": False},
                                   {"N": 4, "EXPLODE": False}])
        assert spec.varying_params() == ["N", "SIGMA", "X"]


class TestMonteCarloAxis:
    def test_parse_accepts_all_shapes(self):
        assert MonteCarloAxis.parse("normal(1.5, 0.1)").dist == "normal"
        assert MonteCarloAxis.parse(" Uniform(0, 2) ").dist == "uniform"
        axis = MonteCarloAxis.parse("lognormal(0.0,0.25)")
        assert axis.describe() == "lognormal(0,0.25)"

    def test_parse_rejects_garbage(self):
        for bad in ("normal(1.5)", "triangle(1,2)", "normal(a,b)",
                    "uniform(2,1)", "normal(1,-0.5)", "X=normal(1,2)"):
            with pytest.raises(ScenarioError):
                MonteCarloAxis.parse(bad)

    def test_sampling_matches_random_module(self):
        axis = MonteCarloAxis("normal", 1.0, 0.5)
        assert axis.sample(random.Random(3)) == \
            random.Random(3).gauss(1.0, 0.5)


# ----------------------------------------------------------------------
# runner: execution, resume, parallelism, failures
# ----------------------------------------------------------------------
class TestSweepRunner:
    GRID = {"X": [1.0, 2.0], "N": [3, 4]}

    def test_serial_sweep_records_one_run_per_point(self, toy_scenario,
                                                    ledger):
        spec = SweepSpec("test-sweep-toy", grid=self.GRID)
        report = run_sweep(spec, ledger=ledger)
        assert report.total == 4
        assert report.completed == 4
        assert report.failed_count == 0
        assert report.skipped_count == 0
        assert report.solver_call_count == 4  # one loop_solve per point
        assert len(ledger.entries()) == 4
        assert len({row["run_id"] for row in report.points}) == 4
        assert report.campaign_id  # persisted in the ledger
        assert ledger.load_campaign(report.campaign_id)["sweep_id"] == \
            report.sweep_id

    def test_identical_rerun_replays_with_zero_solver_calls(
            self, toy_scenario, ledger):
        spec = SweepSpec("test-sweep-toy", grid=self.GRID)
        run_sweep(spec, ledger=ledger)
        again = run_sweep(spec, ledger=ledger)
        assert again.skipped_count == 4
        assert again.solver_call_count == 0
        assert len(ledger.entries()) == 4  # no new runs
        # Both campaigns persist separately for diffing.
        assert len(ledger.campaign_entries()) == 2

    def test_force_reexecutes(self, toy_scenario, ledger):
        spec = SweepSpec("test-sweep-toy", grid={"X": [1.0]})
        run_sweep(spec, ledger=ledger)
        forced = run_sweep(spec, ledger=ledger, force=True)
        assert forced.skipped_count == 0
        assert forced.solver_call_count == 1
        assert len(ledger.entries()) == 2

    @pytest.mark.skipif(not _FORK, reason="needs fork start method for "
                        "runtime-registered scenarios in pool workers")
    def test_parallel_sweep_matches_serial(self, toy_scenario, ledger):
        spec = SweepSpec("test-sweep-toy", grid=self.GRID)
        before = get_registry().snapshot()
        report = run_sweep(spec, ledger=ledger, workers=2)
        assert report.workers == 2
        assert report.completed == 4
        assert report.solver_call_count == 4
        # Parent registry never absorbs worker solver counters.
        delta = get_registry().snapshot().minus(before)
        assert delta.counters.get("loop_solve", 0) == 0
        resumed = run_sweep(spec, ledger=ledger, workers=2)
        assert resumed.skipped_count == 4
        assert resumed.solver_call_count == 0

    def test_point_failure_rosters_without_killing_campaign(
            self, toy_scenario, ledger):
        spec = SweepSpec("test-sweep-toy",
                         grid={"EXPLODE": [False, True], "X": [1.0]})
        report = run_sweep(spec, ledger=ledger)
        assert report.completed == 1
        assert report.failed_count == 1
        failures = report.failures()
        assert len(failures) == 1
        assert "injected point failure" in failures[0]["error"]
        # The failed run is in the ledger too (provenance preserved).
        assert failures[0]["run_id"]
        statuses = {e.status for e in ledger.entries()}
        assert statuses == {"completed", "failed"}

    def test_invalid_point_fails_before_running_anything(
            self, toy_scenario, ledger):
        spec = SweepSpec("test-sweep-toy", grid={"N": ["2.5"]})
        with pytest.raises(ScenarioError):
            run_sweep(spec, ledger=ledger)
        assert len(ledger.entries()) == 0

    def test_empty_sweep_rejected(self, toy_scenario, ledger):
        with pytest.raises(ScenarioError, match="no points"):
            run_sweep(SweepSpec("test-sweep-toy"), ledger=ledger)

    def test_unknown_scenario_rejected(self, ledger):
        with pytest.raises(ScenarioError):
            run_sweep(SweepSpec("no-such-scenario", grid={"X": [1.0]}),
                      ledger=ledger)


# ----------------------------------------------------------------------
# observability: progress callback + gauges + correlation
# ----------------------------------------------------------------------
class TestSweepObservability:
    def test_progress_ticks_and_gauges(self, toy_scenario, ledger):
        from repro.telemetry.export import prometheus_text

        ticks = []
        spec = SweepSpec("test-sweep-toy", grid={"X": [1.0, 2.0]})
        run_sweep(spec, ledger=ledger, progress=ticks.append)
        assert [t.done for t in ticks] == [1, 2]
        last = ticks[-1]
        assert last.total == 2
        assert last.failed == 0
        assert last.points_per_second > 0
        assert last.solver_calls == 2
        assert last.eta_seconds == 0.0
        snap = get_registry().snapshot()
        assert snap.gauges["sweep_points_done"] == 2.0
        assert snap.gauges["sweep_running"] == 0.0
        assert snap.gauges["sweep_solver_calls"] == 2.0
        text = prometheus_text(snap)
        assert "repro_sweep_points_done 2" in text
        assert "repro_sweep_points_per_second" in text

    def test_sweep_counters_are_observational(self):
        from repro.telemetry.registry import is_solver_counter

        assert not is_solver_counter("sweep_points_done")
        assert is_solver_counter("loop_solve")

    def test_logs_carry_sweep_correlation(self, toy_scenario, ledger):
        from repro.telemetry.logs import get_log_ring

        spec = SweepSpec("test-sweep-toy", grid={"X": [7.0]})
        report = run_sweep(spec, ledger=ledger)
        records = [r for r in get_log_ring().records()
                   if r.get("event") in ("sweep_start", "sweep_done")]
        assert len(records) >= 2
        for record in records[-2:]:
            assert record["sweep_id"] == report.sweep_id[:12]


# ----------------------------------------------------------------------
# campaign records: persistence, rendering, diff
# ----------------------------------------------------------------------
class TestCampaignReport:
    def _report(self, toy, ledger, grid=None):
        spec = SweepSpec("test-sweep-toy",
                         grid=grid or {"X": [1.0, 2.0], "N": [3, 4]})
        return run_sweep(spec, ledger=ledger)

    def test_roundtrip(self, toy_scenario, ledger):
        report = self._report(toy_scenario, ledger)
        clone = CampaignReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert clone.sweep_id == report.sweep_id
        assert clone.completed == 4
        assert clone.solver_call_count == report.solver_call_count
        assert clone.summary() == report.summary()

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            CampaignReport.from_dict({"schema_version": 99})

    def test_axis_summaries_marginalize_grid(self, toy_scenario, ledger):
        report = self._report(toy_scenario, ledger)
        summaries = report.axis_summaries()
        assert set(summaries) == {"N", "X"}
        by_level = {row["level"]: row for row in summaries["X"]}
        assert by_level[1.0]["count"] == 2
        # delay = X*2 + N averaged over N in {3,4} -> X*2 + 3.5
        assert by_level[1.0]["metrics"]["delay_seconds"]["mean"] == \
            pytest.approx(5.5)
        assert by_level[2.0]["metrics"]["delay_seconds"]["mean"] == \
            pytest.approx(7.5)

    def test_extremes_follow_metric_direction(self, toy_scenario, ledger):
        report = self._report(toy_scenario, ledger)
        ends = report.extremes()["delay_seconds"]
        assert ends["best"]["value"] == pytest.approx(5.0)   # lower better
        assert ends["worst"]["value"] == pytest.approx(8.0)
        assert "X=2" in ends["worst"]["label"]

    def test_render_contains_per_axis_and_points(self, toy_scenario,
                                                 ledger):
        report = self._report(toy_scenario, ledger)
        text = render_campaign(report)
        assert "per-axis" in text
        assert "best/worst" in text
        assert report.campaign_id in text
        assert text.count("completed") >= 4

    def test_render_entries_table(self, toy_scenario, ledger):
        self._report(toy_scenario, ledger)
        rows = ledger.campaign_entries()
        text = render_campaign_entries(rows)
        assert rows[0]["campaign_id"] in text
        assert render_campaign_entries([]) == "no campaigns recorded\n"

    def test_diff_identical_campaigns_passes(self, toy_scenario, ledger):
        a = self._report(toy_scenario, ledger)
        b = self._report(toy_scenario, ledger)  # ledger replay
        diff = diff_campaigns(a, b)
        assert diff.passed
        assert not diff.nothing_compared

    def test_diff_disjoint_grids_is_nothing_compared(self, toy_scenario,
                                                     ledger):
        a = self._report(toy_scenario, ledger, grid={"X": [1.0]})
        b = self._report(toy_scenario, ledger, grid={"X": [9.0]})
        diff = diff_campaigns(a, b)
        assert diff.nothing_compared
        assert "NOTHING COMPARED" in diff.render()

    def test_resolve_campaign_selectors(self, toy_scenario, ledger):
        a = self._report(toy_scenario, ledger)
        b = self._report(toy_scenario, ledger)
        # By scenario name: latest campaign.
        assert ledger.resolve_campaign("test-sweep-toy")["campaign_id"] \
            == b.campaign_id
        # By full campaign id; prefixes shared by both are ambiguous.
        assert ledger.resolve_campaign(a.campaign_id)["campaign_id"] == \
            a.campaign_id
        with pytest.raises(ScenarioError, match="ambiguous"):
            ledger.resolve_campaign(a.sweep_id[:8])
        with pytest.raises(ScenarioError, match="no campaign"):
            ledger.resolve_campaign("zzzzzz")
