#!/usr/bin/env python
"""Shielding and linear cascading (paper Secs. II and IV).

Three studies on guarded interconnect:

1. the Fig. 5 loop-inductance matrix of a trace array over a ground
   plane, verifying Foundations 1 and 2 numerically,
2. the Table I linear-cascading comparison on the Fig. 6 trees, and
3. how the cascading error grows as the guard spacing loosens -- the
   knob behind the paper's "at least equal width" guard rule.

Run:  python examples/shielding_cascading.py
"""

from repro.cascade import cascading_comparison
from repro.cascade.tree import figure6a_tree, figure6b_tree
from repro.constants import GHz, to_nH, um
from repro.experiments import run_fig5, run_table1


def main() -> None:
    # --- Fig. 5: the extended Foundations over a ground plane ----------
    fig5 = run_fig5()
    print("Fig. 5 loop-L matrix [nH] (5 traces over a local ground plane)")
    for name, row in zip(fig5.trace_names, fig5.loop_matrix):
        print("   " + name + "  " + "  ".join(f"{to_nH(v):7.4f}" for v in row))
    print(f"  Foundation 1 error: {fig5.foundation1.relative_error * 100:.2f} % "
          "(1-trace subproblem reproduces the in-array self loop L)")
    print(f"  Foundation 2 error: {fig5.foundation2.relative_error * 100:.2f} % "
          "(2-trace subproblem reproduces the in-array mutual loop L)")

    # --- Table I: linear cascading --------------------------------------
    table1 = run_table1()
    print()
    print("Table I: full-structure loop L vs series/parallel combination")
    for row in table1.rows:
        cmp_ = row.comparison
        print(f"  {row.name}: full {to_nH(cmp_.full_inductance):.4f} nH, "
              f"combined {to_nH(cmp_.combined_inductance):.4f} nH, "
              f"error {row.error_percent:.2f} % "
              "(paper: 3.57 % / 1.55 %)")

    # --- guard-spacing ablation ------------------------------------------
    print()
    print("cascading error vs guard spacing (Fig. 6(a) tree):")
    for spacing_um in (1.2, 3.0, 6.0, 12.0, 24.0):
        tree = figure6a_tree(spacing=um(spacing_um))
        comparison = cascading_comparison(tree, GHz(3.0))
        print(f"  spacing {spacing_um:5.1f} um: "
              f"L = {to_nH(comparison.full_inductance):.4f} nH, "
              f"error {comparison.inductance_error * 100:.2f} %")
    print()
    print("tight guards confine the return current, so independently")
    print("extracted segments cascade with negligible error -- the basis")
    print("of the paper's segment-table clocktree flow.")


if __name__ == "__main__":
    main()
