#!/usr/bin/env python
"""Bus crosstalk: capacitive coupling is short-range, inductive is long-range.

Extracts a 7-trace bus block (outer traces are shields, paper Fig. 4)
with the table-based reduction -- self L from 1-trace closed forms,
mutual L from 2-trace closed forms, short-range Maxwell capacitance --
formulates the coupled RLC netlist, switches the centre trace and
measures the noise induced on every victim, with and without the mutual
inductances.  The contrast demonstrates the paper's Sec. II point about
coupling ranges.

Run:  python examples/bus_crosstalk.py
"""

from repro import BusRLCExtractor, crosstalk_analysis, um
from repro.constants import GHz, to_nH
from repro.geometry import TraceBlock
from repro.rc.capacitance import CapacitanceModel


def main() -> None:
    block = TraceBlock.from_widths_and_spacings(
        widths=[um(2)] * 7,
        spacings=[um(2)] * 6,
        length=um(2000),
        thickness=um(1),
    )
    extractor = BusRLCExtractor(
        frequency=GHz(6.4),
        capacitance_model=CapacitanceModel(height_below=um(2)),
    )
    bus = extractor.extract(block)

    print("7-trace bus (outer traces are shields), 2 mm long")
    print(f"self L per trace: {to_nH(bus.inductance_matrix[1, 1]):.3f} nH")
    print("inductive coupling coefficients from T4:")
    centre = bus.names.index("T4")
    for j, name in enumerate(bus.names):
        if j != centre:
            print(f"  k(T4, {name}) = {bus.coupling_coefficient(centre, j):.3f}")
    print("note how slowly k decays with distance -- the long-range effect.")

    full = crosstalk_analysis(extractor, bus, aggressor="T4")
    cap_only = crosstalk_analysis(extractor, bus, aggressor="T4",
                                  include_mutual=False)

    print()
    print(f"  {'victim':>7} {'full RLC noise':>15} {'cap-only noise':>15}")
    for victim in sorted(full.victim_noise_peak):
        print(f"  {victim:>7} {full.noise_of(victim) * 1e3:12.1f} mV "
              f"{cap_only.noise_of(victim) * 1e3:12.1f} mV")

    print()
    print("capacitive-only coupling collapses two traces away; the mutual")
    print("inductances keep injecting noise far across the bus -- ignoring")
    print("them underestimates far-victim noise severely.")


if __name__ == "__main__":
    main()
