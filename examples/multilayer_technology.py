#!/usr/bin/env python
"""Per-layer technology characterization and a two-layer H-tree.

The paper: "We assume that each layer has a nominal thickness, and
build tables for different layers."  This example builds a 6-metal
stackup, characterizes loop tables for the two thick top layers the
clock routes on, generates an H-tree that alternates M6 (horizontal)
and M5 (vertical) per level -- which is also why same-layer-only
inductive coupling is exact: orthogonal layers don't couple -- and
extracts/simulates the whole tree through the per-layer tables.

Run:  python examples/multilayer_technology.py
"""

from repro import ClockBuffer, CoplanarWaveguideConfig, HTree, um
from repro.clocktree.multilayer import MultiLayerClocktreeExtractor
from repro.clocktree.skew import simulate_clocktree
from repro.constants import GHz, fF, ps, to_nH, to_ps
from repro.core.technology import TechnologyTables
from repro.geometry.stackup import default_stackup


def config_for_layer(layer):
    """The clock routing rules, instantiated with the layer's metal."""
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=layer.thickness, height_below=um(2),
        resistivity=layer.resistivity,
    )


def main() -> None:
    stackup = default_stackup(6)
    print("stackup:", ", ".join(
        f"{l.name}({l.thickness * 1e6:.1f}um)" for l in stackup
    ))

    technology = TechnologyTables.for_stackup(
        stackup, config_for_layer, frequency=GHz(6.4),
        widths=[um(5), um(10), um(15)],
        lengths=[um(500), um(1000), um(2000), um(4000)],
        layers=("M5", "M6"),
    )
    print(f"characterized layers: {technology.layer_names()}")
    for layer in technology.layer_names():
        l_val = technology.extractor_for(layer).loop_inductance(um(10), um(2000))
        print(f"  {layer}: loop L(10um, 2mm) = {to_nH(l_val):.4f} nH")

    buffer = ClockBuffer(drive_resistance=15.0, input_capacitance=fF(30),
                         supply=1.8, rise_time=ps(50))
    htree = HTree.generate(
        levels=2, root_length=um(3000),
        config=config_for_layer(stackup.layer("M6")),
        buffer=buffer, sink_capacitance=fF(50),
        layers_by_level=("M6", "M5"),
    )
    print()
    print("H-tree routing plan:")
    for segment in htree.segments:
        print(f"  {segment.name}: level {segment.level}, axis {segment.axis}, "
              f"layer {segment.layer}, {segment.length * 1e6:.0f} um")

    extractor = MultiLayerClocktreeExtractor(technology, default_layer="M6")
    netlist = extractor.build_netlist(htree)
    result = simulate_clocktree(netlist, supply=1.8,
                                t_stop=ps(3000), dt=ps(0.5))
    print()
    for sink, delay in sorted(result.delays.items()):
        print(f"  {sink}: insertion delay {to_ps(delay):.2f} ps")
    print(f"  skew: {to_ps(result.skew):.2f} ps")


if __name__ == "__main__":
    main()
