#!/usr/bin/env python
"""Clocktree wire-width optimization on extraction tables.

The point of the table methodology is that extraction becomes cheap
enough to sit inside an optimization loop ("clocktree RLC extraction
and optimization", the paper's abstract).  This example characterizes a
CPW family once, then sweeps candidate clock wire widths, estimating
the root-to-sink delay per candidate with the Ismail-Friedman RLC
closed form fed from table lookups -- thousands of candidates per
second instead of one field solve each.  The chosen width is then
validated with a full transient simulation and the netlist is exported
as a SPICE deck.

Run:  python examples/wire_width_optimization.py
"""

import tempfile
import time
from pathlib import Path

from repro import ClockBuffer, CoplanarWaveguideConfig, HTree, um
from repro.circuit.spice_export import write_spice
from repro.clocktree.optimize import WidthOptimizer
from repro.clocktree.skew import simulate_clocktree
from repro.constants import GHz, fF, ps, to_ps
from repro.core.extraction import TableBasedExtractor


def main() -> None:
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    buffer = ClockBuffer(drive_resistance=25.0, input_capacitance=fF(30),
                         supply=1.8, rise_time=ps(50))
    htree = HTree.generate(levels=2, root_length=um(3000), config=config,
                           buffer=buffer, sink_capacitance=fF(50))

    print("characterizing the width/length space once ...")
    t0 = time.perf_counter()
    tables = TableBasedExtractor.characterize(
        config, frequency=GHz(6.4),
        widths=[um(2), um(5), um(9), um(14), um(20)],
        lengths=[um(400), um(800), um(1600), um(3200)],
    )
    print(f"  {time.perf_counter() - t0:.1f} s for 20 field solves")

    optimizer = WidthOptimizer(tables)
    t0 = time.perf_counter()
    result = optimizer.optimize(htree)
    sweep_time = time.perf_counter() - t0
    print(f"  swept {len(result.candidates)} widths in "
          f"{sweep_time * 1e3:.1f} ms (table lookups + closed forms)")

    print()
    print(f"  {'width [um]':>11} {'path delay [ps]':>16} {'rings?':>7}")
    for cand in result.candidates:
        marker = " <-- best" if cand is result.best else ""
        print(f"  {cand.width * 1e6:11.1f} {to_ps(cand.path_delay):16.2f} "
              f"{'yes' if cand.rings else 'no':>7}{marker}")

    # validate the chosen width with a full transient simulation
    best_width = result.best.width
    extractor = tables.as_clocktree_extractor()
    sized = HTree.generate(
        levels=2, root_length=um(3000),
        config=config.with_signal_width(best_width),
        buffer=buffer, sink_capacitance=fF(50),
    )
    netlist = extractor.build_netlist(sized)
    sim = simulate_clocktree(netlist, supply=1.8, t_stop=ps(3000), dt=ps(0.5))
    print()
    print(f"chosen width {best_width * 1e6:.1f} um: analytic "
          f"{to_ps(result.best.path_delay):.1f} ps vs simulated max delay "
          f"{to_ps(sim.max_delay):.1f} ps")

    with tempfile.TemporaryDirectory() as tmp:
        deck = write_spice(netlist.circuit, Path(tmp) / "clocktree.sp",
                           title="optimized clocktree",
                           analyses=("tran 0.5p 3n",))
        n_lines = deck.read_text().count("\n")
        print(f"exported SPICE deck ({n_lines} cards) for external "
              "cross-validation")


if __name__ == "__main__":
    main()
