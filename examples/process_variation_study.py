#!/usr/bin/env python
"""Statistical RC with nominal inductance (paper Sec. V, ref [4]).

Monte-Carlo-samples the interconnect process (width, thickness, ILD,
resistivity), re-extracts R and C analytically per sample, re-extracts
loop L with the field solver for a subset, and shows that L is far less
sensitive than R and C -- the premise that lets the paper combine
statistically generated RC with a single nominal L.  Also prints the
deterministic +/-3-sigma worst-case RC corners of ref [4].

Run:  python examples/process_variation_study.py
"""

import numpy as np

from repro import CoplanarWaveguideConfig, um
from repro.constants import to_fF, to_nH
from repro.experiments import run_process_variation
from repro.rc.statistical import ProcessVariation, worst_case_corners


def main() -> None:
    variation = ProcessVariation(
        sigma_width=0.01,        # etch bias is absolute; small on wide wires
        sigma_thickness=0.05,
        sigma_ild=0.07,
        sigma_resistivity=0.03,
    )
    result = run_process_variation(variation=variation, n_rc_samples=300,
                                   n_l_samples=25)

    stats = result.statistical_rc
    print("Monte-Carlo population (300 samples, Fig. 1 CPW, 2000 um):")
    print(f"  R: mean {stats.resistance_mean:7.3f} ohm, "
          f"sigma/mean {result.r_spread * 100:5.2f} %")
    print(f"  C: mean {to_fF(stats.capacitance_mean):7.1f} fF,  "
          f"sigma/mean {result.c_spread * 100:5.2f} %")
    print(f"  L: mean {to_nH(result.loop_inductances.mean()):7.4f} nH, "
          f"sigma/mean {result.l_spread * 100:5.2f} %")
    print(f"  -> L is {result.l_insensitivity_factor:.1f}x steadier than R/C;")
    print("     combining statistical RC with nominal L is justified.")

    # Deterministic worst-case corners (the ref [4] flow).
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    block = config.trace_block(um(2000))
    corners = worst_case_corners(
        block, config.capacitance_model(), variation, k_sigma=3.0
    )
    print()
    print("+/-3-sigma worst-case corners:")
    print(f"  R in [{corners.r_min:.3f}, {corners.r_max:.3f}] ohm")
    print(f"  C in [{to_fF(corners.c_min):.1f}, {to_fF(corners.c_max):.1f}] fF")
    print(f"  RC-product spread: {corners.rc_spread * 100:.1f} %")


if __name__ == "__main__":
    main()
