#!/usr/bin/env python
"""Table-based extraction: characterize once, look up everywhere (Sec. III).

Characterizes a co-planar-waveguide family over a (width, length) grid
with the PEEC field solver, saves the tables to JSON, reloads them, and
compares bicubic-spline lookups against fresh direct field solves at
off-grid query points -- reproducing the paper's accuracy and efficiency
claims.

Run:  python examples/inductance_tables.py
"""

import tempfile
import time
from pathlib import Path

from repro import CoplanarWaveguideConfig, TableBasedExtractor, um
from repro.constants import GHz, to_nH

WIDTHS = [um(4), um(8), um(12), um(16)]
LENGTHS = [um(500), um(1500), um(3000), um(6000)]
FREQUENCY = GHz(3.2)


def main() -> None:
    cpw = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )

    print(f"characterizing {len(WIDTHS)}x{len(LENGTHS)} grid at "
          f"{FREQUENCY / 1e9:.1f} GHz ...")
    t0 = time.perf_counter()
    extractor = TableBasedExtractor.characterize(
        cpw, frequency=FREQUENCY, widths=WIDTHS, lengths=LENGTHS,
    )
    print(f"  done in {time.perf_counter() - t0:.2f} s "
          f"({len(WIDTHS) * len(LENGTHS)} field solves)")

    # Tables are plain JSON -- a characterized technology ships as files.
    with tempfile.TemporaryDirectory() as tmp:
        extractor.save(tmp)
        files = sorted(p.name for p in Path(tmp).iterdir())
        print(f"  saved tables: {files}")
        reloaded = TableBasedExtractor.load(tmp, cpw, FREQUENCY)

    print()
    print("off-grid lookups vs fresh field solves:")
    print(f"  {'width':>8} {'length':>9} {'table':>10} {'direct':>10} "
          f"{'error':>8} {'speedup':>9}")
    for width, length in [
        (um(6), um(1000)),
        (um(10), um(2200)),
        (um(14), um(4500)),
        (um(5), um(5500)),
    ]:
        probe = reloaded.accuracy_probe(width, length)
        print(f"  {width * 1e6:6.0f}um {length * 1e6:7.0f}um "
              f"{to_nH(probe.table_inductance):8.4f}nH "
              f"{to_nH(probe.direct_inductance):8.4f}nH "
              f"{probe.relative_error * 100:7.2f}% "
              f"{probe.speedup:8.0f}x")
    print()
    print("interpolation stays within a fraction of a percent of the")
    print("field solver while answering orders of magnitude faster.")


if __name__ == "__main__":
    main()
