#!/usr/bin/env python
"""Quickstart: extract RLC for a clock net and see why inductance matters.

Builds the paper's Fig. 1 co-planar waveguide (6000 um long, 10 um
signal, 5 um shields, 1 um gaps, 2 um thick copper), extracts R, L and C
with the repro flow, then simulates the net with and without inductance
and prints the delay and ringing metrics.

Run:  python examples/quickstart.py
"""

from repro import CoplanarWaveguideConfig, um, significant_frequency
from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.constants import ps, to_nH, to_pF, to_ps
from repro.experiments import run_fig1

RISE_TIME = ps(50)


def main() -> None:
    # 1. Describe the routing structure (paper Fig. 1 / Fig. 8).
    cpw = CoplanarWaveguideConfig(
        signal_width=um(10),
        ground_width=um(5),
        spacing=um(1),
        thickness=um(2),
        height_below=um(2),   # orthogonal signal layer below
    )

    # 2. Extract one segment at the significant frequency 0.32 / t_r.
    frequency = significant_frequency(RISE_TIME)
    extractor = ClocktreeRLCExtractor(cpw, frequency=frequency)
    rlc = extractor.segment_rlc(um(6000))
    print(f"significant frequency: {frequency / 1e9:.2f} GHz")
    print(f"extracted R = {rlc.resistance:.2f} ohm")
    print(f"extracted L = {to_nH(rlc.inductance):.3f} nH "
          f"(loop, shields carry the return)")
    print(f"extracted C = {to_pF(rlc.capacitance):.3f} pF")
    z0 = (rlc.inductance / rlc.capacitance) ** 0.5
    print(f"characteristic impedance ~ {z0:.1f} ohm")

    # 3. Simulate the net with and without L (Figs. 2 and 3).
    result = run_fig1(extractor=extractor, rise_time=RISE_TIME)
    print()
    print(f"delay without inductance (RC):  {to_ps(result.delay_rc):6.2f} ps")
    print(f"delay with inductance   (RLC):  {to_ps(result.delay_rlc):6.2f} ps")
    print(f"ratio: {result.delay_ratio:.2f}  "
          "(the paper's example: 28.01 ps -> 47.60 ps)")
    print(f"overshoot with L:  {result.overshoot_rlc * 100:.1f} % "
          f"(RC netlist: {result.overshoot_rc * 100:.1f} %)")
    print(f"undershoot with L: {result.undershoot_rlc * 100:.1f} %")
    print()
    print("RC-only simulation misses both the extra delay and the ringing --")
    print("which is exactly why clocktree extraction needs the L.")


if __name__ == "__main__":
    main()
