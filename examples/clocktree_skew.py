#!/usr/bin/env python
"""Clock skew study on a buffered H-tree, with and without inductance.

Generates an asymmetric two-level buffered H-tree (one branch stretched
1.5x by a floorplan obstruction), characterizes the routing family into
loop-inductance tables, extracts the full cascaded RLC netlist through
table lookups, and simulates the RC-only and RLC versions to compare
sink arrivals -- the paper's Sec. V application.

The whole run executes inside a telemetry session: it writes a schema-v3
run report (including the per-netlist ``simulation`` section -- transient
diagnostics plus netlist health) and a Chrome trace-event timeline you
can open in chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/clocktree_skew.py
"""

from pathlib import Path

from repro import ClockBuffer, CoplanarWaveguideConfig, HTree, um
from repro.clocktree.skew import compare_rc_vs_rlc
from repro.constants import fF, ps, to_ps
from repro.core.extraction import TableBasedExtractor
from repro.core.frequency import significant_frequency
from repro.telemetry import telemetry_session, write_chrome_trace

OUT_DIR = Path("skew_telemetry")


def run_study() -> None:
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    buffer = ClockBuffer(
        drive_resistance=15.0, input_capacitance=fF(30),
        supply=1.8, rise_time=ps(50),
    )
    htree = HTree.generate(
        levels=2,
        root_length=um(4000),
        config=config,
        buffer=buffer,
        sink_capacitance=fF(50),
        branch_scale={"s_LL": 1.5},   # obstruction detour on one branch
    )
    print(f"H-tree: {htree.num_levels} levels, {htree.num_sinks} sinks, "
          f"{htree.total_wire_length() * 1e3:.1f} mm of wire")

    # Characterize the routing family once; every segment is then a lookup.
    frequency = significant_frequency(buffer.rise_time)
    lengths = sorted({s.length for s in htree.segments} | {um(500), um(6000)})
    tables = TableBasedExtractor.characterize(
        config, frequency=frequency,
        widths=[um(6), um(10), um(14)],
        lengths=lengths,
    )
    extractor = tables.as_clocktree_extractor(sections_per_segment=4)

    comparison = compare_rc_vs_rlc(
        extractor, htree, t_stop=ps(4000), dt=ps(0.5)
    )

    print()
    print(f"  {'sink':>8} {'RC delay':>10} {'RLC delay':>10} {'error':>8}")
    rc_delays = comparison.rc.delays
    for sink, rlc_delay in sorted(comparison.rlc.delays.items()):
        rc_delay = rc_delays[sink]
        error = abs(rlc_delay - rc_delay) / rlc_delay * 100
        print(f"  {sink:>8} {to_ps(rc_delay):8.2f}ps {to_ps(rlc_delay):8.2f}ps "
              f"{error:7.1f}%")

    print()
    print(f"skew (RC netlist):  {to_ps(comparison.rc.skew):6.2f} ps")
    print(f"skew (RLC netlist): {to_ps(comparison.rlc.skew):6.2f} ps")
    print(f"skew error from omitting L: "
          f"{comparison.skew_discrepancy * 100:.1f} % "
          "(the paper: 'can be more than 10%')")

    # Simulation observability: did the runs earn trust?
    print()
    for label, sections in comparison.simulation_reports().items():
        health = sections["netlist_health"]
        diag = sections["diagnostics"]
        state = "clean" if not health["findings"] else "FINDINGS"
        print(f"{label}: netlist {state}, LTE p95={diag['lte_p95']:.2e}, "
              f"energy residual={diag['energy_residual']:.2e}, "
              f"dt {'ok' if diag['dt_adequate'] else 'UNDERSAMPLED'}")
    return comparison


def main() -> None:
    with telemetry_session("examples/clocktree_skew") as session:
        comparison = run_study()
        session.add_simulation(comparison.simulation_reports())
    report = session.report
    OUT_DIR.mkdir(exist_ok=True)
    report_path = report.save(OUT_DIR / "skew_report.json")
    trace_path = write_chrome_trace(report, OUT_DIR / "skew_trace.json")
    print()
    print(f"run report   -> {report_path}  (render: repro report {report_path})")
    print(f"chrome trace -> {trace_path}  (open in ui.perfetto.dev)")


if __name__ == "__main__":
    main()
